"""Differential and regression suite for the bounded-radius certification
engine (repro.analysis.certify) and the certifier bugfix sweep.

The anchor is ``_legacy_max_edge_stretch`` — a verbatim copy of the
pre-engine certifier (one full SSSP in H per vertex).  Every exact engine
mode (plain, bounded, process-parallel) must agree with it to 1e-9 on
every smoke-tier spanner profile; sampling must lower-bound it.  CI's
``certify-smoke`` job runs exactly this file.
"""

import json
import random

import pytest

from repro.analysis import (
    average_stretch,
    certify_edge_stretch,
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
    verify_slt,
    verify_spanner,
)
from repro.analysis.validation import ValidationError
from repro.graphs import (
    WeightedGraph,
    bounded_dijkstra,
    dijkstra,
    erdos_renyi_graph,
    path_graph,
)
from repro.harness import TIERS, get_profile, run_profile
from repro.harness.profiles import Profile
from repro.harness.runner import ALGORITHMS, SPANNER_CERTIFIED_ALGORITHMS
from repro.mst import kruskal_mst

INF = float("inf")


def _legacy_max_edge_stretch(graph, spanner):
    """The pre-engine certifier, kept verbatim as the differential anchor."""
    worst = 1.0
    for u in graph.vertices():
        incident = list(graph.neighbor_items(u))
        if not incident:
            continue
        dist, _ = dijkstra(spanner, u)
        for v, w in incident:
            d = dist.get(v, INF)
            if d == INF:
                return INF
            worst = max(worst, d / w)
    return worst


#: smoke-tier profiles whose certification runs the stretch engine, with
#: an extractor from the build artifact to (spanner, stretch bound)
SPANNER_PROFILES = {
    "spanner-er": lambda res, params: (res.spanner, res.stretch_bound),
    "spanner-geometric": lambda res, params: (res.spanner, res.stretch_bound),
    "spanner-power-law": lambda res, params: (res.spanner, res.stretch_bound),
    "doubling-geometric": lambda res, params: (res.spanner, res.stretch_bound),
    "doubling-grid": lambda res, params: (res.spanner, res.stretch_bound),
    "baswana-sen-er": lambda art, params: (art[0], 2 * params["k"] - 1),
    "elkin-neiman-hypercube": lambda art, params: (art[1], 2 * params["k"] - 1),
    "greedy-spanner-er": lambda art, params: (art, 2 * params["k"] - 1),
}


def _smoke_spanner(profile_name):
    """Build the profile's smoke workload and its spanner artifact."""
    profile = get_profile(profile_name)
    build, _ = ALGORITHMS[profile.algorithm]
    params = profile.algo_params("smoke")
    graph = profile.build_graph("smoke")
    built = build(graph, params, random.Random(profile.seed))
    spanner, bound = SPANNER_PROFILES[profile_name](built[0], params)
    return graph, spanner, float(bound)


class TestDifferentialSmokeSuite:
    """Exact vs bounded vs parallel vs legacy, per smoke-tier profile."""

    def test_extractors_cover_every_spanner_algorithm(self):
        covered = {get_profile(n).algorithm for n in SPANNER_PROFILES}
        assert covered == set(SPANNER_CERTIFIED_ALGORITHMS)

    @pytest.mark.parametrize("name", sorted(SPANNER_PROFILES))
    def test_exact_modes_agree_with_legacy(self, name):
        graph, spanner, bound = _smoke_spanner(name)
        reference = _legacy_max_edge_stretch(graph, spanner)
        exact = certify_edge_stretch(graph, spanner)
        bounded = certify_edge_stretch(graph, spanner, bound=bound)
        parallel = certify_edge_stretch(graph, spanner, bound=bound, workers=2)
        assert exact.max_stretch == pytest.approx(reference, abs=1e-9)
        assert bounded.max_stretch == pytest.approx(reference, abs=1e-9)
        assert parallel.max_stretch == pytest.approx(reference, abs=1e-9)
        assert exact.mode == "exact"
        assert bounded.mode == "bounded"
        assert parallel.workers == 2

    @pytest.mark.parametrize("name", sorted(SPANNER_PROFILES))
    def test_sampled_mode_lower_bounds_exact(self, name):
        graph, spanner, _ = _smoke_spanner(name)
        reference = _legacy_max_edge_stretch(graph, spanner)
        full = certify_edge_stretch(graph, spanner, sample=1.0, seed=3)
        half = certify_edge_stretch(graph, spanner, sample=0.5, seed=3)
        assert full.max_stretch == pytest.approx(reference, abs=1e-9)
        assert full.mode == "sampled" and full.sampled_edges == full.edges_checked
        assert half.max_stretch <= reference + 1e-9
        assert half.sampled_edges <= full.sampled_edges

    @pytest.mark.parametrize("name", sorted(SPANNER_PROFILES))
    def test_accounting_is_consistent(self, name):
        graph, spanner, bound = _smoke_spanner(name)
        cert = certify_edge_stretch(graph, spanner, bound=bound)
        assert cert.edges_total == graph.m
        assert cert.edges_in_spanner + cert.edges_checked <= cert.edges_total
        assert cert.ok is (cert.max_stretch <= bound + 1e-9)
        as_json = json.dumps(cert.to_dict())
        assert json.loads(as_json)["mode"] == "bounded"


class TestEngineEdgeCases:
    def test_pool_path_agrees_on_adversarial_spanner(self):
        # the MST maximises the per-source work list, forcing the real
        # multiprocessing pool (small work lists fall back to in-process)
        g = erdos_renyi_graph(120, 0.1, seed=4)
        mst = kruskal_mst(g)
        reference = _legacy_max_edge_stretch(g, mst)
        par = certify_edge_stretch(g, mst, bound=2.0, workers=2)
        assert par.max_stretch == pytest.approx(reference, abs=1e-9)
        assert par.fallbacks > 0  # the radius truncation fired and was lifted

    def test_fail_fast_detects_violation_without_exact_value(self):
        g = erdos_renyi_graph(60, 0.2, seed=1)
        mst = kruskal_mst(g)
        exact = certify_edge_stretch(g, mst).max_stretch
        assert exact > 1.5
        cert = certify_edge_stretch(g, mst, bound=1.5, fail_fast=True)
        assert cert.bound_exceeded and not cert.ok
        assert cert.max_stretch == INF

    def test_fail_fast_passes_valid_spanner(self):
        g = erdos_renyi_graph(60, 0.2, seed=1)
        cert = certify_edge_stretch(g, g, bound=1.0, fail_fast=True)
        assert cert.ok and not cert.bound_exceeded
        assert cert.max_stretch == 1.0
        assert cert.edges_in_spanner == g.m  # everything short-circuits

    def test_identity_spanner_short_circuits_every_source(self):
        g = erdos_renyi_graph(40, 0.2, seed=9)
        cert = certify_edge_stretch(g, g)
        assert cert.max_stretch == 1.0
        assert cert.sources_explored == 0
        assert cert.edges_checked == 0

    def test_spanner_missing_vertices_is_infinite(self):
        g = path_graph(4)
        h = WeightedGraph([0, 1])  # vertices 2, 3 missing entirely
        h.add_edge(0, 1, 1.0)
        assert certify_edge_stretch(g, h).max_stretch == INF
        assert _legacy_max_edge_stretch(g, h) == INF

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="workers"):
            certify_edge_stretch(g, g, workers=0)
        with pytest.raises(ValueError, match="sample"):
            certify_edge_stretch(g, g, sample=0.0)
        with pytest.raises(ValueError, match="sample"):
            certify_edge_stretch(g, g, sample=1.5)
        with pytest.raises(ValueError, match="fail_fast"):
            certify_edge_stretch(g, g, fail_fast=True)

    def test_sampling_is_seed_deterministic(self):
        g = erdos_renyi_graph(80, 0.15, seed=2)
        mst = kruskal_mst(g)
        a = certify_edge_stretch(g, mst, sample=0.3, seed=5)
        b = certify_edge_stretch(g, mst, sample=0.3, seed=5)
        c = certify_edge_stretch(g, mst, sample=0.3, seed=6)
        assert a.max_stretch == b.max_stretch
        assert a.sampled_edges == b.sampled_edges
        assert (c.sampled_edges, c.max_stretch) != (a.sampled_edges, a.max_stretch)


class TestDisconnectedContract:
    """All isolated-component behaviours pinned in one place."""

    @staticmethod
    def _two_triangles():
        g = WeightedGraph(range(6))
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            g.add_edge(a, b, 1.0 if a < 3 else 2.0)
        return g

    def test_component_preserving_spanner_is_finite(self):
        g = self._two_triangles()
        g.add_vertex(6)  # isolated vertex: no constraint at all
        h = g.copy()
        h.remove_edge(0, 2)  # detour 0-1-2 exists inside the component
        assert max_edge_stretch(g, h) == pytest.approx(2.0)
        assert certify_edge_stretch(g, h, bound=3.0).max_stretch == pytest.approx(2.0)
        assert max_pairwise_stretch(g, h) == pytest.approx(2.0)
        assert average_stretch(g, h) < INF

    def test_component_breaking_spanner_is_infinite_for_all_three(self):
        g = self._two_triangles()
        h = g.copy()
        h.remove_edge(3, 4)
        h.remove_edge(3, 5)  # vertex 3 cut off from its own component
        assert max_edge_stretch(g, h) == INF
        assert max_pairwise_stretch(g, h) == INF
        assert average_stretch(g, h) == INF
        for kwargs in ({}, {"bound": 9.0}, {"bound": 9.0, "workers": 2},
                       {"sample": 1.0}):
            assert certify_edge_stretch(g, h, **kwargs).max_stretch == INF

    def test_root_stretch_infinite_when_tree_misses_component(self):
        g = path_graph(3)
        t = WeightedGraph(range(3))
        t.add_edge(0, 1, 1.0)
        assert root_stretch(g, t, 0) == INF
        assert root_stretch(g, t, 0, bound=10.0) == INF


class TestRootStretchBounded:
    def test_bounded_matches_unbounded(self):
        g = erdos_renyi_graph(50, 0.2, seed=8)
        mst = kruskal_mst(g)
        expected = root_stretch(g, mst, 0)
        assert root_stretch(g, mst, 0, bound=expected + 1.0) == pytest.approx(expected)
        # a violated bound falls back to the full search: still exact
        assert root_stretch(g, mst, 0, bound=1.0) == pytest.approx(expected)


class TestVerifierFixes:
    def test_verify_spanner_bounded_rejection_and_pass(self):
        g = erdos_renyi_graph(40, 0.3, seed=12)
        mst = kruskal_mst(g)
        exact = max_edge_stretch(g, mst)
        with pytest.raises(ValidationError, match="stretch violated"):
            verify_spanner(g, mst, exact / 2.0)
        verify_spanner(g, mst, exact)  # exactly the measured value passes
        verify_spanner(g, mst, exact, workers=2)

    def test_verify_slt_zero_weight_mst_no_zero_division(self):
        # a single-vertex graph has a zero-weight MST; the old code divided
        # by it and raised ZeroDivisionError instead of validating
        g = WeightedGraph([0])
        t = WeightedGraph([0])
        verify_slt(g, t, 0, alpha=2.0, beta=5.0)  # lightness 0/0 -> 1.0

    def test_verify_slt_accepts_precomputed_mst(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        mst = kruskal_mst(g)  # the two unit edges, weight 2
        verify_slt(g, mst, 0, alpha=1e9, beta=1.0, mst=mst)
        heavy = g.edge_subgraph([(0, 1), (0, 2)])  # weight 6, lightness 3
        with pytest.raises(ValidationError, match="lightness"):
            verify_slt(g, heavy, 0, alpha=1e9, beta=1.0, mst=mst)


class TestDijkstraRegressions:
    def test_empty_weight_override_takes_csr_fast_path(self):
        g = path_graph(5, [1.0, 2.0, 3.0, 4.0])
        with_none, _ = dijkstra(g, 0, weight_override=None)
        with_empty, _ = dijkstra(g, 0, weight_override={})
        assert with_none == with_empty
        assert g._csr_cache is not None  # the empty dict froze the graph too

    def test_empty_sources_raise(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="at least one source"):
            dijkstra(g, [])
        with pytest.raises(ValueError, match="at least one source"):
            dijkstra(g.freeze(), iter(()))
        with pytest.raises(ValueError, match="at least one source"):
            dijkstra(g, [], weight_override={(0, 1): 5.0})
        with pytest.raises(ValueError, match="at least one source"):
            bounded_dijkstra(g, [], 2.0)

    def test_non_vertex_string_source_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="not a vertex"):
            dijkstra(g, "abc")
        with pytest.raises(ValueError, match="not a vertex"):
            bounded_dijkstra(g, "abc", 2.0)

    def test_string_vertices_still_work(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 2.0)
        dist, _ = dijkstra(g, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 3.0}
        dist, _ = dijkstra(g, ["a", "c"])  # iterables of strings stay legal
        assert dist["b"] == 1.0

    def test_bounded_dijkstra_multi_source(self):
        g = path_graph(9)
        dist, _ = bounded_dijkstra(g, [0, 8], 2.0)
        assert set(dist) == {0, 1, 2, 6, 7, 8}
        assert dist[2] == 2.0 and dist[6] == 2.0


class TestHarnessCertification:
    def test_record_carries_certification_block(self):
        record = run_profile(get_profile("spanner-er"), "smoke",
                             measure_memory=False)
        assert record.certification is not None
        assert record.certification["mode"] == "bounded"
        assert record.certification["workers"] == 1
        round_trip = type(record).from_dict(record.to_dict())
        assert round_trip.certification == record.certification

    def test_sampled_run_records_sampled_edges(self):
        record = run_profile(get_profile("baswana-sen-er"), "smoke",
                             measure_memory=False, certify_sample=0.5)
        assert record.certification["mode"] == "sampled"
        assert record.certification["sampled_edges"] is not None
        assert record.params["certify_sample"] == 0.5

    def test_congest_profiles_have_no_certification_block(self):
        record = run_profile(get_profile("congest-bfs-grid"), "smoke",
                             measure_memory=False)
        assert record.certification is None
        assert "certify_workers" not in record.params

    def test_schema_v2_record_loads_without_certification(self):
        record = run_profile(get_profile("spanner-er"), "smoke",
                             measure_memory=False)
        data = record.to_dict()
        del data["certification"]  # a schema-v2 document lacks the block
        assert type(record).from_dict(data).certification is None

    def test_run_profile_validates_certify_params(self):
        profile = get_profile("spanner-er")
        with pytest.raises(ValueError, match="certify_workers"):
            run_profile(profile, "smoke", certify_workers=0)
        with pytest.raises(ValueError, match="certify_sample"):
            run_profile(profile, "smoke", certify_sample=2.0)

    def test_uncertifiable_profile_skips_stress_certification_only(self):
        tiny = {t: {"n": 10, "p": 0.4} for t in TIERS}
        profile = Profile(
            name="test-uncertifiable", description="", section="test",
            family="er", algorithm="greedy-spanner", params={"k": 2},
            tiers=tiny, certifiable=False,
        )
        stress = run_profile(profile, "stress", measure_memory=False)
        assert stress.metrics == {} and stress.certification is None
        smoke = run_profile(profile, "smoke", measure_memory=False)
        assert smoke.metrics != {} and smoke.certification is not None
