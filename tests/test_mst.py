"""Tests for Kruskal, Borůvka and the fragment decomposition."""

import math

import pytest

from repro.graphs import (
    WeightedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_tree,
    ring_of_cliques,
)
from repro.mst import (
    UnionFind,
    boruvka_mst,
    decompose_fragments,
    kruskal_mst,
)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        for v in range(4):
            uf.add(v)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert not uf.same(0, 2)
        assert uf.union(1, 3)
        assert uf.same(0, 2)

    def test_union_already_merged(self):
        uf = UnionFind()
        uf.add(0)
        uf.add(1)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(0)
        uf.union(0, 0) if False else None
        uf.add(0)
        assert uf.find(0) == 0


class TestKruskal:
    def test_path_graph_mst_is_itself(self):
        g = path_graph(6)
        assert kruskal_mst(g) == g

    def test_cycle_drops_heaviest(self):
        g = cycle_graph(4, weight=1.0)
        g.remove_edge(3, 0)
        g.add_edge(3, 0, 9.0)
        t = kruskal_mst(g)
        assert not t.has_edge(3, 0)
        assert t.is_tree()

    def test_matches_networkx(self, medium_er):
        import networkx as nx

        t = kruskal_mst(medium_er)
        nxt = nx.minimum_spanning_tree(medium_er.to_networkx())
        assert t.total_weight() == pytest.approx(
            sum(d["weight"] for _, _, d in nxt.edges(data=True))
        )

    def test_deterministic_with_ties(self):
        g = complete_graph(8, min_weight=1.0, max_weight=1.0)  # all ties
        assert kruskal_mst(g) == kruskal_mst(g.copy())

    def test_disconnected_raises(self):
        g = WeightedGraph(range(4))
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            kruskal_mst(g)

    def test_spans_all_vertices(self, heavy_ring):
        t = kruskal_mst(heavy_ring)
        assert set(t.vertices()) == set(heavy_ring.vertices())
        assert t.is_tree()


class TestBoruvka:
    def test_agrees_with_kruskal(self, medium_er):
        res = boruvka_mst(medium_er)
        assert res.tree == kruskal_mst(medium_er)

    def test_agrees_on_tied_weights(self):
        g = ring_of_cliques(3, 4, intra_weight=1.0, inter_weight=1.0)
        assert boruvka_mst(g).tree == kruskal_mst(g)

    def test_phase_count_logarithmic(self, medium_er):
        res = boruvka_mst(medium_er)
        assert res.phases <= math.ceil(math.log2(medium_er.n)) + 1

    def test_rounds_ledger_populated(self, small_er):
        res = boruvka_mst(small_er, bfs_height=4)
        assert res.rounds > 0
        assert any("moe-convergecast" in p for p in res.ledger.by_phase())

    def test_disconnected_raises(self):
        g = WeightedGraph(range(4))
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            boruvka_mst(g)

    def test_single_vertex(self):
        g = WeightedGraph([0])
        res = boruvka_mst(g)
        assert res.tree.n == 1
        assert res.phases == 0


class TestFragments:
    def test_partition_covers_all_vertices(self):
        t = random_tree(50, seed=1)
        decomp = decompose_fragments(t, 0)
        all_members = set()
        for frag in decomp.fragments:
            assert not (all_members & frag.members), "fragments must be disjoint"
            all_members |= frag.members
        assert all_members == set(t.vertices())

    def test_fragment_count_is_o_sqrt_n(self):
        t = random_tree(100, seed=2)
        decomp = decompose_fragments(t, 0)
        s = math.isqrt(99) + 1
        assert decomp.num_fragments <= 100 // s + 1

    def test_fragments_are_connected_subtrees(self):
        t = random_tree(60, seed=3)
        decomp = decompose_fragments(t, 0)
        for frag in decomp.fragments:
            sub = t.subgraph(frag.members)
            assert sub.is_connected()
            assert sub.m == len(frag.members) - 1  # subtree

    def test_hop_diameter_bounded(self):
        t = random_tree(100, seed=4)
        s = math.isqrt(99) + 1
        decomp = decompose_fragments(t, 0, target_size=s)
        assert decomp.max_hop_diameter() <= 2 * s

    def test_root_fragment_is_index_zero(self):
        t = random_tree(40, seed=5)
        decomp = decompose_fragments(t, 7)
        assert 7 in decomp.fragments[0].members
        assert decomp.fragment_parent[0] is None

    def test_external_edges_connect_fragment_tree(self):
        t = random_tree(80, seed=6)
        decomp = decompose_fragments(t, 0)
        assert len(decomp.external_edges) == decomp.num_fragments - 1
        for child_root, parent_vertex, w in decomp.external_edges:
            assert t.has_edge(child_root, parent_vertex)
            assert t.weight(child_root, parent_vertex) == w
            assert (
                decomp.fragment_of[child_root] != decomp.fragment_of[parent_vertex]
            )

    def test_fragment_parent_consistent(self):
        t = random_tree(80, seed=7)
        decomp = decompose_fragments(t, 0)
        for frag in decomp.fragments:
            parent_idx = decomp.fragment_parent[frag.index]
            if parent_idx is None:
                assert frag.index == 0
            else:
                assert 0 <= parent_idx < decomp.num_fragments

    def test_path_tree_single_fragment_chain(self):
        t = path_graph(16)
        decomp = decompose_fragments(t, 0, target_size=4)
        assert decomp.num_fragments == 4
        assert decomp.max_hop_diameter() <= 8

    def test_non_tree_rejected(self, triangle):
        with pytest.raises(ValueError):
            decompose_fragments(triangle, 0)

    def test_bad_root_rejected(self):
        t = random_tree(10, seed=8)
        with pytest.raises(ValueError):
            decompose_fragments(t, 999)

    def test_star_tree_high_degree_root(self):
        from repro.graphs import star_graph

        t = star_graph(50)  # star is already a tree
        decomp = decompose_fragments(t, 0)
        assert decomp.max_hop_diameter() <= 2 * (math.isqrt(49) + 1)
        members = set()
        for f in decomp.fragments:
            members |= f.members
        assert members == set(t.vertices())
