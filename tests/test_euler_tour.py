"""Tests for the §3 Euler tour (Lemma 2)."""

import pytest

from repro.graphs import WeightedGraph, path_graph, random_tree, star_graph
from repro.mst import decompose_fragments
from repro.traversal import compute_euler_tour


@pytest.fixture
def paper_tree():
    """The example tree from §3's figure: rt=a with the given weights."""
    g = WeightedGraph()
    g.add_edge("a", "b", 2.0)
    g.add_edge("a", "g", 2.0)
    g.add_edge("b", "c", 1.0)
    g.add_edge("b", "d", 3.0)
    g.add_edge("d", "e", 3.0)
    g.add_edge("d", "f", 4.0)
    return g


class TestTourStructure:
    def test_size_is_2n_minus_1(self):
        t = random_tree(30, seed=1)
        tour = compute_euler_tour(t, 0)
        assert tour.size == 2 * 30 - 1

    def test_total_length_is_twice_tree_weight(self):
        t = random_tree(30, seed=2)
        tour = compute_euler_tour(t, 0)
        assert tour.length == pytest.approx(2 * t.total_weight())

    def test_appearance_counts_match_degree(self):
        """§3: appearances = deg_T(v), root gets deg(rt) + 1."""
        t = random_tree(40, seed=3)
        tour = compute_euler_tour(t, 0)
        for v in t.vertices():
            expected = t.degree(v) + (1 if v == 0 else 0)
            assert len(tour.appearances[v]) == expected

    def test_consecutive_positions_are_tree_edges(self):
        t = random_tree(25, seed=4)
        tour = compute_euler_tour(t, 0)
        for i in range(tour.size - 1):
            u, v = tour.order[i], tour.order[i + 1]
            assert t.has_edge(u, v)
            assert tour.times[i + 1] - tour.times[i] == pytest.approx(t.weight(u, v))

    def test_starts_and_ends_at_root(self):
        t = random_tree(25, seed=5)
        tour = compute_euler_tour(t, 3)
        assert tour.order[0] == 3
        assert tour.order[-1] == 3
        assert tour.times[0] == 0.0

    def test_children_visited_in_id_order(self, paper_tree):
        tour = compute_euler_tour(paper_tree, "a")
        # preorder with id order: a b c b d e d f d b a g a
        assert tour.order == list("abcbdedfdbaga")

    def test_paper_example_visit_times(self, paper_tree):
        tour = compute_euler_tour(paper_tree, "a")
        # cumulative weights along a-b(2) b-c(1) c-b(1) b-d(3) d-e(3) ...
        assert tour.times[:6] == pytest.approx([0, 2, 3, 4, 7, 10])
        assert tour.length == pytest.approx(2 * paper_tree.total_weight())

    def test_tour_distance(self):
        t = path_graph(4, [1.0, 2.0, 3.0])
        tour = compute_euler_tour(t, 0)
        assert tour.tour_distance(0, tour.size - 1) == pytest.approx(2 * 6.0)


class TestIntervals:
    def test_interval_length_is_subtree_tour(self):
        t = random_tree(30, seed=6)
        tour = compute_euler_tour(t, 0)
        entry, exit_ = tour.intervals[0]
        assert entry == 0.0
        assert exit_ == pytest.approx(tour.length)

    def test_child_interval_nested_in_parent(self):
        t = random_tree(30, seed=7)
        tour = compute_euler_tour(t, 0)
        from repro.mst.fragments import _rooted_children

        parent, _ = _rooted_children(t, 0)
        for v, p in parent.items():
            if p is None:
                continue
            a, b = tour.intervals[v]
            pa, pb = tour.intervals[p]
            assert pa <= a <= b <= pb

    def test_leaf_interval_is_degenerate(self):
        t = star_graph(6)
        tour = compute_euler_tour(t, 0)
        for leaf in range(1, 6):
            a, b = tour.intervals[leaf]
            assert a == pytest.approx(b)


class TestRoundAccounting:
    def test_rounds_positive_and_itemized(self):
        t = random_tree(50, seed=8)
        tour = compute_euler_tour(t, 0)
        phases = tour.ledger.by_phase()
        assert tour.rounds > 0
        for expected in (
            "broadcast-fragment-tree",
            "local-tour-lengths",
            "broadcast-root-lengths",
            "global-tour-lengths",
            "local-dfs-intervals",
            "convergecast-root-intervals",
            "broadcast-shifts",
            "unweighted-index-pass",
        ):
            assert expected in phases

    def test_rounds_scale_sublinearly(self):
        """Lemma 2: Õ(√n + D) — so rounds(4n) should be about 2x rounds(n)."""
        small = compute_euler_tour(path_graph(64), 0).rounds
        large = compute_euler_tour(path_graph(256), 0).rounds
        assert large < 3.5 * small  # 2x expected, generous slack

    def test_precomputed_decomposition_reused(self):
        t = random_tree(40, seed=9)
        decomp = decompose_fragments(t, 0)
        tour = compute_euler_tour(t, 0, decomposition=decomp)
        assert tour.size == 2 * 40 - 1


class TestValidation:
    def test_non_tree_rejected(self, triangle):
        with pytest.raises(ValueError):
            compute_euler_tour(triangle, 0)

    def test_single_vertex_tree(self):
        g = WeightedGraph([0])
        tour = compute_euler_tour(g, 0)
        assert tour.order == [0]
        assert tour.length == 0.0
