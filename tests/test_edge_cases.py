"""Cross-cutting edge cases: degenerate graphs, extreme parameters,
adversarial weights — every construction must hold its guarantees or
fail loudly."""
import random

import pytest

from repro.analysis import (
    lightness,
    max_edge_stretch,
    root_stretch,
    verify_net,
    verify_slt,
    verify_spanner,
)
from repro.core import (
    build_net,
    doubling_spanner,
    light_spanner,
    shallow_light_tree,
    slt_base,
)
from repro.graphs import (
    WeightedGraph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.mst import decompose_fragments
from repro.traversal import compute_euler_tour


class TestTreeInputs:
    """On a tree, every construction must return (essentially) the tree."""

    @pytest.fixture
    def tree(self):
        return random_tree(25, seed=1)

    def test_light_spanner_of_tree_is_tree(self, tree):
        res = light_spanner(tree, 2, 0.25, random.Random(0))
        assert res.spanner.edge_set() == tree.edge_set()
        assert lightness(tree, res.spanner) == pytest.approx(1.0)

    def test_slt_of_tree_spans(self, tree):
        res = slt_base(tree, 0, 0.5)
        verify_slt(tree, res.tree, 0, res.stretch_bound, res.lightness_bound)
        # the only spanning tree of a tree is itself
        assert res.tree.edge_set() == tree.edge_set()

    def test_net_on_tree(self, tree):
        res = build_net(tree, 10.0, 0.5, random.Random(1))
        verify_net(tree, res.points, res.alpha, res.beta)


class TestPathGraphs:
    """Paths: ddim 1, hop-diameter n−1 — the D-dominated regime."""

    def test_slt_on_path_rooted_at_end(self):
        g = path_graph(40)
        res = slt_base(g, 0, 0.5)
        # on a path the SPT = MST = the path: stretch exactly 1
        assert root_stretch(g, res.tree, 0) == pytest.approx(1.0)
        assert lightness(g, res.tree) == pytest.approx(1.0)

    def test_doubling_spanner_on_path(self):
        g = path_graph(20)
        res = doubling_spanner(g, 0.1, random.Random(2), net_method="greedy")
        assert res.spanner.edge_set() == g.edge_set()

    def test_net_on_path_extremes(self):
        g = path_graph(30)
        everything = build_net(g, 0.4, 0.5, random.Random(3))
        assert everything.points == set(g.vertices())
        singleton = build_net(g, 100.0, 0.5, random.Random(3))
        assert len(singleton.points) == 1


class TestExtremeWeights:
    def test_spanner_with_huge_aspect_ratio(self):
        g = cycle_graph(12, weight=1.0)
        g.add_edge(0, 6, 1e6)  # a uselessly heavy chord
        res = light_spanner(g, 2, 0.25, random.Random(4))
        verify_spanner(g, res.spanner, res.stretch_bound)
        # the chord exceeds L = 2 w(MST): the MST path covers it
        assert max_edge_stretch(g, res.spanner) <= res.stretch_bound

    def test_slt_with_near_identical_weights(self):
        g = complete_graph(15, min_weight=1.0, max_weight=1.0 + 1e-12, seed=5)
        res = slt_base(g, 0, 0.5)
        verify_slt(g, res.tree, 0, res.stretch_bound, res.lightness_bound)

    def test_net_with_tied_distances(self):
        g = cycle_graph(16, weight=1.0)  # fully symmetric
        res = build_net(g, 3.0, 0.5, random.Random(6))
        verify_net(g, res.points, res.alpha, res.beta)


class TestExtremeParameters:
    def test_spanner_k_exceeding_log_n(self):
        g = complete_graph(20, min_weight=1.0, max_weight=9.0, seed=7)
        k = 10  # way beyond log2(20)
        res = light_spanner(g, k, 0.25, random.Random(7))
        verify_spanner(g, res.spanner, res.stretch_bound)

    def test_slt_alpha_barely_above_one(self):
        g = complete_graph(15, min_weight=1.0, max_weight=30.0, seed=8)
        res = shallow_light_tree(g, 0, 1.01)
        assert lightness(g, res.tree) <= 1.01 + 1e-9

    def test_slt_alpha_enormous(self):
        g = complete_graph(15, min_weight=1.0, max_weight=30.0, seed=9)
        res = shallow_light_tree(g, 0, 1e6)
        # with unlimited lightness budget, the tree can be the MST itself
        verify_slt(g, res.tree, 0, res.stretch_bound, 1e6)

    def test_net_delta_near_one(self):
        g = cycle_graph(12)
        res = build_net(g, 3.0, 0.99, random.Random(10))
        verify_net(g, res.points, res.alpha, res.beta)


class TestTinyGraphs:
    @pytest.mark.parametrize("n", [2, 3])
    def test_all_constructions_on_tiny_graphs(self, n):
        g = complete_graph(n, min_weight=1.0, max_weight=3.0, seed=n)
        rng = random.Random(n)
        verify_spanner(
            g, light_spanner(g, 2, 0.25, rng).spanner, 3 * 1.25 * 2
        )
        res = slt_base(g, 0, 0.5)
        verify_slt(g, res.tree, 0, res.stretch_bound, res.lightness_bound + 1)
        net = build_net(g, 2.0, 0.5, rng)
        verify_net(g, net.points, net.alpha, net.beta)

    def test_single_vertex(self):
        g = WeightedGraph([0])
        tour = compute_euler_tour(g, 0)
        assert tour.size == 1
        net = build_net(g, 1.0, 0.5, random.Random(0))
        assert net.points == {0}


class TestDeterminism:
    """Same seed → identical output, across every randomized construction."""

    def test_light_spanner_deterministic(self, small_er):
        a = light_spanner(small_er, 2, 0.25, random.Random(99))
        b = light_spanner(small_er, 2, 0.25, random.Random(99))
        assert a.spanner == b.spanner
        assert a.rounds == b.rounds

    def test_slt_deterministic(self, small_er):
        a = shallow_light_tree(small_er, 0, 5.0)
        b = shallow_light_tree(small_er, 0, 5.0)
        assert a.tree == b.tree

    def test_doubling_deterministic(self):
        from repro.graphs import random_geometric_graph

        g = random_geometric_graph(20, seed=3)
        a = doubling_spanner(g, 0.1, random.Random(5), net_method="greedy")
        b = doubling_spanner(g, 0.1, random.Random(5), net_method="greedy")
        assert a.spanner == b.spanner

    def test_euler_tour_deterministic(self):
        t = random_tree(30, seed=4)
        assert compute_euler_tour(t, 0).order == compute_euler_tour(t, 0).order


class TestFragmentExtremes:
    def test_target_size_one(self):
        t = random_tree(15, seed=5)
        decomp = decompose_fragments(t, 0, target_size=1)
        assert decomp.num_fragments == 15  # every vertex its own fragment
        assert decomp.max_hop_diameter() == 0

    def test_target_size_n(self):
        t = random_tree(15, seed=6)
        decomp = decompose_fragments(t, 0, target_size=15)
        assert decomp.num_fragments == 1

    def test_star_center_root_vs_leaf_root(self):
        t = star_graph(20)
        for root in (0, 7):
            decomp = decompose_fragments(t, root)
            members = set()
            for f in decomp.fragments:
                members |= f.members
            assert members == set(t.vertices())
