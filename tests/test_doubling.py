"""Tests for the doubling-dimension utilities (§1.3 / Lemma 6)."""

import math

from repro.graphs import (
    ball,
    complete_graph,
    doubling_dimension_estimate,
    grid_graph,
    packing_number,
    path_graph,
    random_geometric_graph,
    star_graph,
)


class TestBall:
    def test_ball_on_path(self):
        g = path_graph(9)
        assert ball(g, 4, 2.0) == {2, 3, 4, 5, 6}

    def test_ball_radius_zero_is_center(self):
        g = path_graph(5)
        assert ball(g, 2, 0.0) == {2}

    def test_ball_monotone_in_radius(self, small_er):
        b1 = ball(small_er, 0, 10.0)
        b2 = ball(small_er, 0, 30.0)
        assert b1 <= b2


class TestPackingNumber:
    def test_path_packing(self):
        g = path_graph(21)
        # radius-10 ball around the middle = everything; 5-separated subset
        count = packing_number(g, 10, 10.0, 5.0)
        assert 3 <= count <= 5

    def test_lemma6_shape_on_grid(self):
        """Packing number <= (2R/r)^{O(ddim)} with ddim ≈ 2 for grids."""
        g = grid_graph(9, 9)
        count = packing_number(g, 40, 8.0, 2.0)
        assert count <= (2 * 8.0 / 2.0) ** 3

    def test_star_is_low_dimensional_at_large_radius(self):
        g = star_graph(30)
        # every leaf is within 2 of every other: 3-separated packing = 1
        assert packing_number(g, 0, 2.0, 3.0) == 1


class TestDoublingDimensionEstimate:
    def test_path_is_one_dimensional(self):
        g = path_graph(40)
        assert doubling_dimension_estimate(g) <= 3.0

    def test_grid_is_two_dimensionalish(self):
        g = grid_graph(8, 8)
        d = doubling_dimension_estimate(g)
        assert 1.0 <= d <= 5.0

    def test_geometric_graph_low_dimension(self):
        g = random_geometric_graph(60, seed=1)
        assert doubling_dimension_estimate(g) <= 6.0

    def test_complete_graph_bounded_by_log_n(self):
        g = complete_graph(32, min_weight=1.0, max_weight=1.0)
        assert doubling_dimension_estimate(g) <= math.log2(32) + 1

    def test_single_vertex(self):
        from repro.graphs import WeightedGraph

        assert doubling_dimension_estimate(WeightedGraph([0])) == 0.0
