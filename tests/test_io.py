"""Tests for graph serialization."""

import pytest

from repro import io as graph_io
from repro.graphs import WeightedGraph, erdos_renyi_graph


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(small_er, path)
        back = graph_io.read_edge_list(path)
        assert back == small_er

    def test_isolated_vertices_preserved(self, tmp_path):
        g = WeightedGraph([0, 1, 2])
        g.add_edge(0, 1, 2.5)
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(g, path)
        back = graph_io.read_edge_list(path)
        assert back == g
        assert back.has_vertex(2)

    def test_string_vertex_ids(self, tmp_path):
        g = WeightedGraph()
        g.add_edge("alpha", "beta", 1.5)
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(g, path)
        back = graph_io.read_edge_list(path)
        assert back.weight("alpha", "beta") == 1.5

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 2.0  # trailing comment\n")
        g = graph_io.read_edge_list(path)
        assert g.weight(0, 1) == 2.0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            graph_io.read_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(ValueError):
            graph_io.read_edge_list(path)


class TestJson:
    def test_roundtrip(self, tmp_path, small_er):
        path = tmp_path / "g.json"
        graph_io.write_json(small_er, path)
        assert graph_io.read_json(path) == small_er

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            graph_io.read_json(path)

    def test_weights_are_floats(self, tmp_path):
        g = WeightedGraph()
        g.add_edge(0, 1, 3)
        path = tmp_path / "g.json"
        graph_io.write_json(g, path)
        back = graph_io.read_json(path)
        assert isinstance(back.weight(0, 1), float)
