"""Tests for graph serialization."""

import pytest

from repro import io as graph_io
from repro.graphs import WeightedGraph


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(small_er, path)
        back = graph_io.read_edge_list(path)
        assert back == small_er

    def test_isolated_vertices_preserved(self, tmp_path):
        g = WeightedGraph([0, 1, 2])
        g.add_edge(0, 1, 2.5)
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(g, path)
        back = graph_io.read_edge_list(path)
        assert back == g
        assert back.has_vertex(2)

    def test_string_vertex_ids(self, tmp_path):
        g = WeightedGraph()
        g.add_edge("alpha", "beta", 1.5)
        path = tmp_path / "g.txt"
        graph_io.write_edge_list(g, path)
        back = graph_io.read_edge_list(path)
        assert back.weight("alpha", "beta") == 1.5

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 2.0  # trailing comment\n")
        g = graph_io.read_edge_list(path)
        assert g.weight(0, 1) == 2.0

    @pytest.mark.parametrize("bad", ["a b", "x#1", "", " ", "tab\tid", "new\nline"])
    def test_unwritable_vertex_id_raises(self, tmp_path, bad):
        """Ids whose string form would be mis-parsed on read must be
        rejected on write, not silently corrupted (round-trip hazard)."""
        g = WeightedGraph()
        g.add_edge(bad, "ok", 1.0)
        path = tmp_path / "g.txt"
        with pytest.raises(ValueError, match="round-trip|whitespace"):
            graph_io.write_edge_list(g, path)

    def test_unwritable_isolated_vertex_raises(self, tmp_path):
        g = WeightedGraph(["lonely vertex"])
        with pytest.raises(ValueError):
            graph_io.write_edge_list(g, tmp_path / "g.txt")

    def test_failed_write_leaves_no_partial_edges(self, tmp_path):
        """Validation happens before any edge line hits the file."""
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge("bad id", 2, 1.0)
        path = tmp_path / "g.txt"
        with pytest.raises(ValueError):
            graph_io.write_edge_list(g, path)
        assert not path.exists() or "bad id" not in path.read_text()

    def test_json_accepts_ids_edge_list_rejects(self, tmp_path):
        g = WeightedGraph()
        g.add_edge("a b", "c#d", 2.0)
        path = tmp_path / "g.json"
        graph_io.write_json(g, path)
        back = graph_io.read_json(path)
        assert back.weight("a b", "c#d") == 2.0

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            graph_io.read_edge_list(path)

    def test_bad_weight_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 heavy\n")
        with pytest.raises(ValueError):
            graph_io.read_edge_list(path)


class TestJson:
    def test_roundtrip(self, tmp_path, small_er):
        path = tmp_path / "g.json"
        graph_io.write_json(small_er, path)
        assert graph_io.read_json(path) == small_er

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            graph_io.read_json(path)

    def test_weights_are_floats(self, tmp_path):
        g = WeightedGraph()
        g.add_edge(0, 1, 3)
        path = tmp_path / "g.json"
        graph_io.write_json(g, path)
        back = graph_io.read_json(path)
        assert isinstance(back.weight(0, 1), float)
