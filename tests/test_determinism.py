"""Seeded-run reproducibility regression tests.

The historical bug class: a ``for c in set(...)`` whose hash order leaks
into dict insertion order and from there into RNG consumption order, so
two identically-seeded runs produce different structures whenever
``PYTHONHASHSEED`` differs (string hashing is salted per interpreter
invocation; int hashing is not, which is why the in-process tests never
caught it).  These tests relabel the workload graphs with *string*
vertices and byte-compare canonical serializations produced by fresh
subprocesses under different ``PYTHONHASHSEED`` values — the strongest
claim the fixed ``light_spanner`` / ``simulate_case1_bucket`` sites can
make.
"""
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.determinism import DEFAULT_SEED, ensure_rng
from repro.graphs import erdos_renyi_graph
from repro.graphs.weighted_graph import WeightedGraph

SRC = str(Path(__file__).resolve().parent.parent / "src")

_PRELUDE = """\
import random
import sys

from repro.graphs import erdos_renyi_graph
from repro.graphs.weighted_graph import WeightedGraph

base = erdos_renyi_graph(24, 0.3, seed=3)
g = WeightedGraph("v%02d" % v for v in base.vertices())
for u, v, w in base.edges():
    g.add_edge("v%02d" % u, "v%02d" % v, w)
"""

#: Each scenario builds a structure from the string-relabelled graph and
#: writes a canonical serialization to stdout.
_SCENARIOS = {
    "light-spanner": _PRELUDE + """\
from repro.core.light_spanner import light_spanner

res = light_spanner(g, 2, 0.25, random.Random(7))
edges = sorted(
    (min(u, v), max(u, v), round(w, 9)) for u, v, w in res.spanner.edges()
)
sys.stdout.write(repr((edges, res.rounds)))
""",
    "cluster-simulation": _PRELUDE + """\
from repro.congest import build_bfs_tree
from repro.core.cluster_simulation import simulate_case1_bucket
from repro.core.light_spanner import _case1_clusters
from repro.mst import kruskal_mst
from repro.traversal import compute_euler_tour

root = min(g.vertices())
tree = build_bfs_tree(g, root)
mst = kruskal_mst(g)
tour = compute_euler_tour(mst, root)
eps_wi = 0.25 * mst.total_weight()
# string cluster ids: unlike the int ids _case1_clusters emits, their
# hash order is PYTHONHASHSEED-salted, so an unsorted set iteration
# inside the simulation would actually diverge here
cluster_of = {v: "C%03d" % c for v, c in _case1_clusters(tour, eps_wi).items()}
sim = simulate_case1_bucket(g, tree, cluster_of, 2, rng=random.Random(7))
edges = sorted(tuple(sorted(e)) for e in sim.edges)
shifts = sorted((c, round(s, 12)) for c, s in sim.shifts.items())
sys.stdout.write(repr((edges, shifts, sim.rounds)))
""",
}

#: The seeded-deterministic projection of one profile record: everything
#: except wall-clock times, span counts and the enabled flag.  The
#: disabled and traced scenarios must produce the *same* bytes — tracing
#: may add spans but must never perturb seeded behavior.
_BENCH_OBS_PROJECTION = """\
proj = (
    sorted(record.observability["metrics"].items()),
    record.net_rounds,
    record.messages,
    record.words,
    record.active_node_rounds,
    record.rounds,
    record.ok,
)
sys.stdout.write(repr(proj))
"""

_SCENARIOS["bench-obs-disabled"] = """\
import sys

from repro.harness.profiles import get_profile
from repro.harness.runner import run_profile

record = run_profile(
    get_profile("congest-bfs-grid"), "smoke", measure_memory=False
)
""" + _BENCH_OBS_PROJECTION

_SCENARIOS["bench-obs-traced"] = """\
import sys

from repro.harness.profiles import get_profile
from repro.harness.runner import run_profile
from repro.obs import trace as obs_trace

obs_trace.enable()
record = run_profile(
    get_profile("congest-bfs-grid"), "smoke", measure_memory=False
)
tracer = obs_trace.disable()
assert tracer is not None and tracer.span_count() > 0
""" + _BENCH_OBS_PROJECTION


def _run_scenario(name, hashseed):
    """Run one scenario in a fresh interpreter under ``hashseed``."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _SCENARIOS[name]],
        capture_output=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    assert proc.stdout, f"scenario {name} produced no output"
    return proc.stdout


class TestHashSeedIndependence:
    """Identically-seeded runs must byte-match across PYTHONHASHSEED."""

    @pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
    def test_identical_across_hash_seeds(self, scenario):
        outputs = {hs: _run_scenario(scenario, hs) for hs in (1, 2)}
        assert outputs[1] == outputs[2], (
            f"{scenario}: identically-seeded runs diverge across "
            f"PYTHONHASHSEED values — a set-iteration order leak"
        )

    @pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
    def test_identical_on_rerun(self, scenario):
        assert _run_scenario(scenario, 1) == _run_scenario(scenario, 1)

    def test_tracing_does_not_perturb_seeded_behavior(self):
        """The no-op fast path claim, end to end: a traced run and an
        untraced run project to byte-identical deterministic records."""
        disabled = _run_scenario("bench-obs-disabled", 1)
        traced = _run_scenario("bench-obs-traced", 1)
        assert disabled == traced


class TestEnsureRng:
    def test_passthrough(self):
        rng = random.Random(42)
        assert ensure_rng(rng) is rng

    def test_default_is_seeded(self):
        a, b = ensure_rng(None), ensure_rng(None)
        assert a is not b
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_explicit_seed(self):
        assert ensure_rng(None, seed=5).random() == random.Random(5).random()
        assert (
            ensure_rng(None).random() == random.Random(DEFAULT_SEED).random()
        )


class TestInProcessDeterminism:
    """The fixed library surfaces are deterministic run-to-run in-process."""

    def test_connected_components_order_is_insertion_order(self):
        g = WeightedGraph(["c", "a", "b", "z", "y"])
        g.add_edge("a", "b", 1.0)
        comps = g.connected_components()
        # component list follows vertex insertion order, not hash order
        assert [sorted(c, key=repr) for c in comps] == [
            ["c"], ["a", "b"], ["z"], ["y"],
        ]

    def test_light_spanner_same_seed_same_structure(self):
        from repro.core.light_spanner import light_spanner

        g = erdos_renyi_graph(20, 0.3, seed=2)
        runs = [
            sorted(
                (min(u, v), max(u, v), w)
                for u, v, w in light_spanner(
                    g, 2, 0.25, random.Random(11)
                ).spanner.edges()
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
