"""Tests for the command-line interface."""

import pytest

from repro import io as graph_io
from repro.cli import main
from repro.graphs import erdos_renyi_graph, random_geometric_graph


@pytest.fixture
def er_file(tmp_path):
    g = erdos_renyi_graph(25, 0.25, seed=1)
    path = tmp_path / "g.txt"
    graph_io.write_edge_list(g, path)
    return str(path)


@pytest.fixture
def geo_file(tmp_path):
    g = random_geometric_graph(20, seed=2)
    path = tmp_path / "g.json"
    graph_io.write_json(g, path)
    return str(path)


class TestGenerate:
    @pytest.mark.parametrize("family", ["er", "geometric", "grid"])
    def test_generates_and_saves(self, tmp_path, family, capsys):
        out = tmp_path / "out.json"
        rc = main(["generate", "--family", family, "--n", "20", str(out)])
        assert rc == 0
        g = graph_io.read_json(out)
        assert g.n >= 16
        assert "wrote" in capsys.readouterr().out


class TestSpanner:
    def test_report_printed(self, er_file, capsys):
        rc = main(["spanner", er_file, "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stretch" in out and "lightness" in out and "rounds" in out

    def test_output_file(self, er_file, tmp_path, capsys):
        out = tmp_path / "spanner.txt"
        rc = main(["spanner", er_file, "--output", str(out)])
        assert rc == 0
        h = graph_io.read_edge_list(out)
        assert h.m > 0


class TestSLT:
    def test_default_root(self, er_file, capsys):
        rc = main(["slt", er_file, "--alpha", "5.0"])
        assert rc == 0
        assert "root-stretch" in capsys.readouterr().out

    def test_explicit_root(self, er_file, capsys):
        rc = main(["slt", er_file, "--alpha", "5.0", "--root", "3"])
        assert rc == 0

    def test_bad_root_exits(self, er_file):
        with pytest.raises(SystemExit):
            main(["slt", er_file, "--root", "nope"])


class TestNet:
    def test_prints_points(self, er_file, capsys):
        rc = main(["net", er_file, "--scale", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "points" in out and "iterations" in out


class TestDoubling:
    def test_runs_on_geometric(self, geo_file, capsys):
        rc = main(["doubling", geo_file, "--eps", "0.1"])
        assert rc == 0
        assert "stretch" in capsys.readouterr().out


class TestEstimate:
    def test_prints_ratio(self, er_file, capsys):
        rc = main(["estimate", er_file])
        assert rc == 0
        assert "ratio" in capsys.readouterr().out


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestOracle:
    def test_build_and_query(self, er_file, tmp_path, capsys):
        pkl = tmp_path / "oracle.pkl"
        rc = main(["oracle", "build", er_file, str(pkl),
                   "--landmarks", "4", "--spot-check", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spot-check" in out and "wrote oracle" in out
        assert pkl.exists()

        rc = main(["oracle", "query", str(pkl), "0", "3", "0", "3",
                   "--k-nearest", "0", "--k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "d(0, 3)" in out
        assert "1 hit(s)" in out  # the repeated pair hit the LRU
        assert "3-nearest of 0" in out

    def test_query_answers_match_oracle_api(self, er_file, tmp_path, capsys):
        import pickle

        from repro import io as gio
        from repro.oracle import build_oracle

        pkl = tmp_path / "oracle.pkl"
        main(["oracle", "build", er_file, str(pkl)])
        capsys.readouterr()
        main(["oracle", "query", str(pkl), "1", "7"])
        printed = capsys.readouterr().out.splitlines()[0]
        with open(pkl, "rb") as fh:
            oracle = pickle.load(fh)
        want = oracle.query(1, 7)
        assert f"{want:.6g}" in printed
        # and the oracle serves the structure that was in the file
        g = gio.read_edge_list(er_file)
        assert set(oracle.csr.verts) == set(g.vertices())

    def test_degree_strategy_flag(self, er_file, tmp_path, capsys):
        pkl = tmp_path / "oracle.pkl"
        rc = main(["oracle", "build", er_file, str(pkl),
                   "--strategy", "degree", "--landmarks", "2"])
        assert rc == 0
        assert "strategy='degree'" in capsys.readouterr().out

    def test_unknown_vertex_exits(self, er_file, tmp_path, capsys):
        pkl = tmp_path / "oracle.pkl"
        main(["oracle", "build", er_file, str(pkl)])
        with pytest.raises(SystemExit, match="not a vertex"):
            main(["oracle", "query", str(pkl), "0", "zzz"])

    def test_odd_pair_list_exits(self, er_file, tmp_path):
        pkl = tmp_path / "oracle.pkl"
        main(["oracle", "build", er_file, str(pkl)])
        with pytest.raises(SystemExit, match="pairs"):
            main(["oracle", "query", str(pkl), "0"])

    def test_build_without_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["oracle"])
