"""Kernel parity & dispatch suite (repro.kernels).

The layer's contract is *parity*: the numpy frontier-relaxation kernel
and the pure-Python heap Dijkstra agree on distances to 1e-9 on every
workload — same graphs, same sources, same caps.  Parents may differ on
equal-length ties, but every parent chain must witness a shortest path.
The suite fuzzes that contract over every smoke-tier harness profile
plus the adversarial shapes vectorized relaxation gets wrong first
(zero-weight edges, disconnected components, isolated vertices,
duplicate sources), and then checks the kernel= plumbing end to end:
dijkstra, stretch certification, the oracle, and the harness profile.

numpy-side tests skip cleanly when numpy is absent — the no-numpy CI
leg runs exactly the python half of this file.
"""

from __future__ import annotations

import math

import pytest

from repro.graphs import WeightedGraph, erdos_renyi_graph, ring_chords_graph
from repro.graphs.shortest_paths import dijkstra
from repro.harness import all_profiles, get_profile, run_profile
from repro.kernels import (
    KERNELS,
    has_numpy,
    pykern,
    resolve_kernel,
    residual,
    sssp,
    sssp_matrix,
)

INF = float("inf")

needs_numpy = pytest.mark.skipif(not has_numpy(), reason="numpy not installed")


def _csr_columns(graph: WeightedGraph):
    csr = graph.freeze()
    return csr.indptr, csr.indices, csr.weights


def _raw_csr(n, edges):
    """Build raw CSR columns directly — unlike WeightedGraph.add_edge,
    this accepts zero-weight edges and isolated vertices."""
    adj = [[] for _ in range(n)]
    for u, v, w in edges:
        adj[u].append((v, w))
        adj[v].append((u, w))
    indptr, indices, weights = [0], [], []
    for u in range(n):
        for v, w in sorted(adj[u]):
            indices.append(v)
            weights.append(w)
        indptr.append(len(indices))
    return indptr, indices, weights


#: zero-weight chain 0-1-2 + weighted tail, a second component, three
#: isolated vertices — every adversarial shape in one graph
ADVERSARIAL = _raw_csr(10, [
    (0, 1, 0.0), (1, 2, 0.0), (2, 3, 1.5), (4, 5, 2.0), (5, 6, 0.0),
])


def _assert_rows_equal(row_a, row_b, tol=1e-9):
    assert len(row_a) == len(row_b)
    for v, (a, b) in enumerate(zip(row_a, row_b)):
        if math.isinf(a) or math.isinf(b):
            assert math.isinf(a) and math.isinf(b), f"vertex {v}: {a} vs {b}"
        else:
            assert abs(a - b) <= tol, f"vertex {v}: {a} vs {b}"


def _assert_parents_witness(indptr, indices, weights, sources, dist, parent):
    """Parents may differ between kernels, but each must witness the
    distances: dist[v] == dist[parent[v]] + w(parent[v], v)."""
    for v, p in enumerate(parent):
        if p == -2:
            assert math.isinf(dist[v])
        elif p == -1:
            assert v in sources and dist[v] == 0.0
        else:
            arc = [
                weights[s]
                for s in range(indptr[p], indptr[p + 1])
                if indices[s] == v
            ]
            assert arc, f"parent {p} of {v} is not a neighbour"
            assert abs(dist[v] - (dist[p] + min(arc))) <= 1e-9


# ---------------------------------------------------------------- dispatch

def test_resolve_python_always_available():
    assert resolve_kernel("python") == "python"
    assert "python" in KERNELS and "numpy" in KERNELS


def test_resolve_auto_matches_availability():
    assert resolve_kernel("auto") == ("numpy" if has_numpy() else "python")


def test_resolve_unknown_kernel_raises():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_resolve_numpy_without_numpy_raises():
    if has_numpy():
        assert resolve_kernel("numpy") == "numpy"
    else:
        with pytest.raises(RuntimeError, match="numpy is not installed"):
            resolve_kernel("numpy")


def test_sssp_rejects_unknown_kernel():
    ip, idx, w = ADVERSARIAL
    with pytest.raises(ValueError, match="unknown kernel"):
        sssp(ip, idx, w, [0], kernel="fortran")


# ------------------------------------------------------- python kernel alone

def test_python_kernel_adversarial_shapes():
    ip, idx, w = ADVERSARIAL
    dist, parent = sssp(ip, idx, w, [0])
    assert dist[0] == dist[1] == dist[2] == 0.0  # zero-weight chain
    assert dist[3] == 1.5
    assert all(math.isinf(dist[v]) for v in (4, 5, 6, 7, 8, 9))
    _assert_parents_witness(ip, idx, w, {0}, dist, parent)
    assert residual(ip, idx, w, dist) == (0.0, 0)


def test_python_kernel_duplicate_sources():
    ip, idx, w = ADVERSARIAL
    single, _ = sssp(ip, idx, w, [4])
    doubled, _ = sssp(ip, idx, w, [4, 4, 4])
    _assert_rows_equal(single, doubled)


def test_python_kernel_cap_contract():
    g = erdos_renyi_graph(60, 0.08, seed=3)
    ip, idx, w = _csr_columns(g)
    exact, _ = sssp(ip, idx, w, [0])
    cap = sorted(d for d in exact if not math.isinf(d))[len(exact) // 3]
    capped, _ = sssp(ip, idx, w, [0], cap=cap)
    for v, d in enumerate(exact):
        if d <= cap:
            assert abs(capped[v] - d) <= 1e-9  # within cap: exact
        else:
            assert capped[v] >= d - 1e-9  # beyond: upper bound or inf


def test_residual_detects_perturbation():
    g = erdos_renyi_graph(50, 0.1, seed=1)
    ip, idx, w = _csr_columns(g)
    dist, _ = sssp(ip, idx, w, [0])
    worst0, unsettled0 = residual(ip, idx, w, dist)
    assert worst0 <= 1e-12 and unsettled0 == 0
    finite = [v for v, d in enumerate(dist) if not math.isinf(d) and d > 0]
    dist[finite[-1]] += 5.0
    worst, _ = residual(ip, idx, w, dist)
    assert worst > 4.9


# ----------------------------------------------------------- numpy parity

@needs_numpy
def test_parity_every_smoke_profile():
    """Distances agree to 1e-9 on every smoke-tier harness workload."""
    seen = set()
    for profile in all_profiles():
        key = (profile.family, tuple(sorted(profile.graph_params("smoke").items())))
        if key in seen:
            continue
        seen.add(key)
        ip, idx, w = _csr_columns(profile.build_graph("smoke"))
        n = len(ip) - 1
        sources = [0, n // 2, n - 1]
        py = pykern.sssp_matrix(ip, idx, w, sources)
        np_rows = sssp_matrix(ip, idx, w, sources, kernel="numpy")
        for a, b in zip(py, np_rows):
            _assert_rows_equal(a, list(b))


@needs_numpy
def test_parity_adversarial_shapes():
    ip, idx, w = ADVERSARIAL
    for sources in ([0], [4], [9], [0, 0, 4], [0, 4, 9]):
        py_d, _ = pykern.sssp(ip, idx, w, sources)
        np_d, np_p = sssp(ip, idx, w, sources, kernel="numpy")
        _assert_rows_equal(py_d, np_d)
        _assert_parents_witness(ip, idx, w, set(sources), np_d, np_p)


@needs_numpy
def test_parity_with_caps():
    g = erdos_renyi_graph(70, 0.07, seed=5)
    ip, idx, w = _csr_columns(g)
    exact = pykern.sssp_matrix(ip, idx, w, [0, 1, 2, 3])
    caps = [None, 4.0, None, 2.0]
    np_rows = sssp_matrix(ip, idx, w, [0, 1, 2, 3], caps=caps, kernel="numpy")
    for row, cap, np_row in zip(exact, caps, np_rows):
        for v, d in enumerate(row):
            if cap is None or d <= cap:
                if math.isinf(d):
                    assert math.isinf(np_row[v])
                else:
                    assert abs(np_row[v] - d) <= 1e-9
            else:
                assert np_row[v] >= d - 1e-9


@needs_numpy
def test_parity_residual():
    g = ring_chords_graph(400, chords=3, seed=2)
    ip, idx, w = _csr_columns(g)
    row = pykern.sssp(ip, idx, w, [7])[0]
    py_res = pykern.residual(ip, idx, w, row)
    np_res = residual(ip, idx, w, row, kernel="numpy")
    assert abs(py_res[0] - np_res[0]) <= 1e-12
    assert py_res[1] == np_res[1]


@needs_numpy
def test_numpy_parent_witnesses():
    g = ring_chords_graph(300, chords=4, seed=9)
    ip, idx, w = _csr_columns(g)
    dist, parent = sssp(ip, idx, w, [0], kernel="numpy")
    _assert_parents_witness(ip, idx, w, {0}, dist, parent)


# ----------------------------------------------------- kernel= integration

@needs_numpy
def test_dijkstra_kernel_flag():
    g = erdos_renyi_graph(60, 0.08, seed=4)
    base_d, _ = dijkstra(g, 0)
    np_d, np_p = dijkstra(g, 0, kernel="numpy")
    assert set(base_d) == set(np_d)
    for v, d in base_d.items():
        assert abs(np_d[v] - d) <= 1e-9
    for v, p in np_p.items():
        if p is not None:
            assert abs(np_d[v] - (np_d[p] + g.weight(p, v))) <= 1e-9


@needs_numpy
def test_certify_kernel_flag():
    from repro.analysis import max_edge_stretch
    from repro.analysis.certify import certify_edge_stretch
    from repro.core import light_spanner
    import random

    g = erdos_renyi_graph(50, 0.12, seed=6)
    res = light_spanner(g, 2, 0.25, random.Random(0))
    py = certify_edge_stretch(g, res.spanner, res.stretch_bound)
    np_cert = certify_edge_stretch(
        g, res.spanner, res.stretch_bound, kernel="numpy"
    )
    assert np_cert.kernel == "numpy" and py.kernel == "python"
    assert np_cert.ok == py.ok
    assert np_cert.to_dict()["kernel"] == "numpy"
    assert abs(
        max_edge_stretch(g, res.spanner, kernel="numpy")
        - max_edge_stretch(g, res.spanner)
    ) <= 1e-9


@needs_numpy
def test_oracle_kernel_flag():
    from repro.oracle import DistanceOracle

    g = erdos_renyi_graph(40, 0.15, seed=8)
    base = DistanceOracle.build(g, landmarks=4, seed=0)
    fast = DistanceOracle.build(g, landmarks=4, seed=0, kernel="numpy")
    # backend-independent selection: same landmarks, same answers
    assert base.landmarks == fast.landmarks
    verts = sorted(g.vertices(), key=repr)
    pairs = [(verts[0], verts[-1]), (verts[1], verts[2])]
    assert base.query_many(pairs) == pytest.approx(fast.query_many(pairs))
    assert base.query_many(pairs) == pytest.approx(
        fast.query_many(pairs, kernel="numpy")
    )


def test_harness_kernel_profile_python():
    record = run_profile(get_profile("kernel-sssp-ring"), "smoke")
    assert record.ok
    assert record.metrics["residual"]["ok"]
    assert record.metrics["unsettled-arcs"]["measured"] == 0.0


@needs_numpy
def test_harness_kernel_profile_numpy():
    record = run_profile(get_profile("kernel-sssp-ring"), "smoke", kernel="numpy")
    assert record.ok
    assert record.params["kernel"] == "numpy"


@needs_numpy
def test_harness_certify_kernel_stamped():
    profile = get_profile("spanner-er")
    record = run_profile(profile, "smoke", kernel="numpy")
    assert record.ok
    assert record.params["certify_kernel"] == "numpy"
    assert record.certification["kernel"] == "numpy"


def test_harness_python_default_leaves_params_unstamped():
    """kernel='python' must not perturb committed baseline reports."""
    profile = get_profile("spanner-er")
    record = run_profile(profile, "smoke")
    assert "certify_kernel" not in record.params


def test_run_huge_profile_small_instance(tmp_path):
    from repro.harness import HUGE_TIER, Profile, run_huge_profile

    profile = Profile(
        name="huge-mini", description="test", section="substrate",
        family="ring-chords", algorithm="kernel-sssp",
        params={"kernel": "python", "sources": 4}, seed=0,
        tiers={
            "smoke": {"n": 50, "chords": 2},
            "table1": {"n": 50, "chords": 2},
            "stress": {"n": 50, "chords": 2},
            HUGE_TIER: {"n": 3000, "chords": 3},
        },
    )
    for kernel in ("python",) + (("auto",) if has_numpy() else ()):
        record = run_huge_profile(profile, kernel=kernel, cache_dir=tmp_path)
        assert record.ok and record.tier == HUGE_TIER
        assert record.n == 3000 and record.m > 0
        assert record.certification["mode"] == "fixed-point"
        assert record.certification["unsettled_arcs"] == 0


def test_run_huge_profile_requires_huge_tier():
    from repro.harness import run_huge_profile

    with pytest.raises(KeyError, match="huge"):
        run_huge_profile(get_profile("spanner-er"))


def test_huge_profiles_listed():
    from repro.harness import huge_profiles

    names = [p.name for p in huge_profiles()]
    assert "kernel-sssp-ring" in names
