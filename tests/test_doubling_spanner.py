"""Tests for the §7 doubling-graph spanner (Theorem 5)."""

import random

import pytest

from repro.analysis import (
    lightness,
    max_pairwise_stretch,
    verify_subgraph,
)
from repro.core import doubling_spanner
from repro.graphs import grid_graph, random_geometric_graph, unit_ball_graph


class TestGuarantees:
    @pytest.mark.parametrize("eps", [0.05, 0.1])
    def test_stretch_on_geometric(self, eps):
        g = random_geometric_graph(30, seed=1)
        res = doubling_spanner(g, eps, random.Random(1), net_method="greedy")
        assert max_pairwise_stretch(g, res.spanner) <= res.stretch_bound + 1e-9

    def test_stretch_on_grid(self):
        g = grid_graph(5, 5, jitter=0.2, seed=2)
        res = doubling_spanner(g, 0.1, random.Random(2), net_method="greedy")
        assert max_pairwise_stretch(g, res.spanner) <= res.stretch_bound + 1e-9

    def test_stretch_on_unit_ball_graph(self):
        g = unit_ball_graph(30, seed=3)
        res = doubling_spanner(g, 0.1, random.Random(3), net_method="greedy")
        assert max_pairwise_stretch(g, res.spanner) <= res.stretch_bound + 1e-9

    def test_is_subgraph(self):
        """Paths must be real G-paths (path-reporting hopsets, §7.1)."""
        g = random_geometric_graph(30, seed=4)
        res = doubling_spanner(g, 0.1, random.Random(4), net_method="greedy")
        verify_subgraph(g, res.spanner)

    def test_connected_and_spanning(self):
        g = random_geometric_graph(30, seed=5)
        res = doubling_spanner(g, 0.1, random.Random(5), net_method="greedy")
        assert set(res.spanner.vertices()) == set(g.vertices())
        assert res.spanner.is_connected()

    def test_distributed_nets_agree_with_greedy_on_guarantees(self):
        g = random_geometric_graph(20, seed=6)
        res = doubling_spanner(g, 0.1, random.Random(6), net_method="distributed")
        assert max_pairwise_stretch(g, res.spanner) <= res.stretch_bound + 1e-9

    def test_lightness_bounded_on_doubling_input(self):
        """ε^{-O(ddim)}·log n — sanity-check with a loose numeric cap."""
        g = random_geometric_graph(40, seed=7)
        res = doubling_spanner(g, 0.1, random.Random(7), net_method="greedy")
        assert lightness(g, res.spanner) <= 200.0

    def test_sparsity_linear_up_to_log_factors(self):
        g = random_geometric_graph(40, seed=8)
        res = doubling_spanner(g, 0.1, random.Random(8), net_method="greedy")
        assert res.spanner.m <= 60 * g.n


class TestScales:
    def test_scale_stats_cover_all_scales(self):
        g = random_geometric_graph(25, seed=9)
        res = doubling_spanner(g, 0.1, random.Random(9), net_method="greedy")
        assert res.scales[0].scale == pytest.approx(1.0)
        assert all(
            b.scale == pytest.approx(a.scale * 1.1)
            for a, b in zip(res.scales, res.scales[1:])
        )

    def test_net_sizes_weakly_decreasing_at_large_scales(self):
        g = random_geometric_graph(25, seed=10)
        res = doubling_spanner(g, 0.1, random.Random(10), net_method="greedy")
        tail = [s.net_size for s in res.scales[-10:]]
        assert tail == sorted(tail, reverse=True)

    def test_largest_scale_single_net_point_adds_nothing(self):
        g = random_geometric_graph(25, seed=11)
        res = doubling_spanner(g, 0.1, random.Random(11), net_method="greedy")
        last = res.scales[-1]
        if last.net_size == 1:
            assert last.paths_added == 0

    def test_rounds_charged_per_scale(self):
        g = random_geometric_graph(20, seed=12)
        res = doubling_spanner(g, 0.1, random.Random(12), net_method="greedy")
        assert res.rounds == sum(s.rounds for s in res.scales) + res.ledger.by_phase()["bfs-tree"]

    def test_overlap_bounded_by_packing(self):
        """Lemma 6: any vertex participates in ε^{-O(ddim)} explorations."""
        g = random_geometric_graph(30, seed=13)
        res = doubling_spanner(g, 0.1, random.Random(13), net_method="greedy")
        worst = max(s.max_overlap for s in res.scales)
        assert worst <= g.n  # trivial cap; realistic values far below
        assert worst >= 1


class TestValidation:
    def test_eps_range_enforced(self):
        g = random_geometric_graph(15, seed=14)
        with pytest.raises(ValueError):
            doubling_spanner(g, 0.2, random.Random(0))
        with pytest.raises(ValueError):
            doubling_spanner(g, 0.0, random.Random(0))

    def test_unknown_net_method(self):
        g = random_geometric_graph(15, seed=15)
        with pytest.raises(ValueError):
            doubling_spanner(g, 0.1, net_method="quantum")
