"""Sparse/dense engine differential suite.

The sparse-activation engine's whole claim is that it changes *what the
executor scans*, never *what the algorithm does*: a node program that
honours the activity contract must behave identically under both
engines.  This suite runs every seeded CONGEST harness profile twice at
smoke tier — once per engine — through a tracing network that records
every sent message, and asserts the executions agree

* round-for-round (every message is sent in the same round),
* message-for-message (same sender, receiver and payload),
* on all traffic counters (rounds, messages, words), and
* on the final per-node state.

``active_node_rounds`` is the one quantity allowed (indeed expected) to
differ: the sparse engine must never step more nodes than the dense one.
"""

import random

import pytest

from repro.congest import CongestAlgorithm, SyncNetwork, build_bfs_tree
from repro.graphs import grid_graph, path_graph
from repro.harness import congest_profiles
from repro.harness.runner import ALGORITHMS


class TracingNetwork(SyncNetwork):
    """Records every non-empty outbox as (lifetime round, sender, messages).

    ``total_rounds`` is used as the timestamp because multi-phase
    builders reset the per-run counter between phases while the lifetime
    counter keeps ticking at identical points in both engines.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = []

    def _check_outbox(self, sender, view, outbox):
        super()._check_outbox(sender, view, outbox)
        if outbox:
            self.trace.append((
                self.total_rounds,
                sender,
                tuple(sorted(outbox.items(), key=lambda kv: repr(kv[0]))),
            ))


def _run_profile_traced(profile, dense):
    graph = profile.build_graph("smoke")
    params = profile.algo_params("smoke")
    net = TracingNetwork(graph, dense=dense)
    build, _certify = ALGORITHMS[profile.algorithm]
    artifact, rounds, stats = build(
        graph, params, random.Random(profile.seed), network=net
    )
    states = {v: dict(net.view(v).state) for v in graph.vertices()}
    return net, rounds, stats, states


CONGEST_PROFILES = [p.name for p in congest_profiles()]


class TestProfileParity:
    @pytest.mark.parametrize("name", CONGEST_PROFILES)
    def test_sparse_matches_dense(self, name):
        profile = next(p for p in congest_profiles() if p.name == name)
        sparse_net, sparse_rounds, sparse_stats, sparse_states = (
            _run_profile_traced(profile, dense=False)
        )
        dense_net, dense_rounds, dense_stats, dense_states = (
            _run_profile_traced(profile, dense=True)
        )

        assert sparse_rounds == dense_rounds
        assert sparse_stats.rounds == dense_stats.rounds
        assert sparse_stats.messages == dense_stats.messages
        assert sparse_stats.words == dense_stats.words
        # message-for-message, round-for-round
        assert sparse_net.trace == dense_net.trace
        # identical final local knowledge at every node
        assert sparse_states == dense_states
        # the sparse engine must never step more nodes than the dense one
        assert sparse_stats.active_node_rounds <= dense_stats.active_node_rounds

    @pytest.mark.parametrize("name", CONGEST_PROFILES)
    def test_sparse_engine_actually_sparser(self, name):
        """Utilization: every congest workload leaves some node idle in
        some round, so sparse < dense strictly (the engine's point)."""
        profile = next(p for p in congest_profiles() if p.name == name)
        _, _, sparse_stats, _ = _run_profile_traced(profile, dense=False)
        _, _, dense_stats, _ = _run_profile_traced(profile, dense=True)
        assert sparse_stats.active_node_rounds < dense_stats.active_node_rounds


class TestPrimitiveParity:
    """Direct engine-vs-engine checks on hand-built workloads (no harness)."""

    def test_bfs_trace_identical(self):
        g = grid_graph(7, 5)
        sparse, dense = TracingNetwork(g), TracingNetwork(g, dense=True)
        t1 = build_bfs_tree(g, 0, network=sparse)
        t2 = build_bfs_tree(g, 0, network=dense)
        assert t1.parent == t2.parent and t1.depth == t2.depth
        assert t1.rounds == t2.rounds
        assert sparse.trace == dense.trace

    def test_wake_driven_queue_drain(self):
        """A node draining a local queue (no incoming mail) relies on wake
        requests; rounds and messages must match the dense run."""

        class Drain(CongestAlgorithm):
            def setup(self, node):
                node.state["q"] = [1, 2, 3] if node.id == 2 else []
                return self._emit(node)

            def _emit(self, node):
                if node.id == 2 and node.state["q"]:
                    out = {1: node.state["q"].pop(0)}
                    if node.state["q"]:
                        node.request_wake()
                    return out
                return {}

            def step(self, node, inbox):
                if node.id == 1:
                    node.state.setdefault("got", []).extend(inbox.values())
                return self._emit(node)

            def is_done(self, node):
                return not node.state.get("q")

        g = path_graph(4)
        results = {}
        for dense in (False, True):
            net = TracingNetwork(g, dense=dense)
            rounds = net.run(Drain())
            results[dense] = (rounds, net.messages_sent, net.words_sent,
                              net.trace, net.view(1).state.get("got"))
        assert results[False] == results[True]
        assert results[False][4] == [1, 2, 3]
