"""Tests for the spanner substrate: greedy, Baswana–Sen, Elkin–Neiman."""

import math
import random

import pytest

from repro.analysis import max_edge_stretch, verify_spanner
from repro.congest import RoundLedger
from repro.graphs import WeightedGraph, complete_graph, erdos_renyi_graph
from repro.spanners import (
    baswana_sen_spanner,
    elkin_neiman_spanner,
    greedy_spanner,
    sample_shifts,
)


class TestGreedySpanner:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_guarantee(self, small_er, k):
        t = 2 * k - 1
        h = greedy_spanner(small_er, t)
        verify_spanner(small_er, h, t)

    def test_stretch_one_preserves_all_distances(self, small_er):
        from repro.graphs import dijkstra

        h = greedy_spanner(small_er, 1.0)
        for u in small_er.vertices():
            dg, _ = dijkstra(small_er, u)
            dh, _ = dijkstra(h, u)
            for v, d in dg.items():
                assert dh[v] == pytest.approx(d)

    def test_size_bound_girth(self):
        """O(n^{1+1/k}) edges for stretch 2k−1 [ADD+93]."""
        g = complete_graph(40, min_weight=1.0, max_weight=50.0, seed=1)
        h = greedy_spanner(g, 3.0)  # k = 2
        assert h.m <= 4 * 40 ** 1.5

    def test_spans_and_is_subgraph(self, heavy_ring):
        h = greedy_spanner(heavy_ring, 5.0)
        verify_spanner(heavy_ring, h, 5.0)
        assert h.is_connected()

    def test_invalid_stretch(self, small_er):
        with pytest.raises(ValueError):
            greedy_spanner(small_er, 0.5)

    def test_denser_than_mst(self, small_er):
        """Greedy t-spanner always contains the MST edges."""
        from repro.mst import kruskal_mst

        h = greedy_spanner(small_er, 3.0)
        mst = kruskal_mst(small_er)
        for u, v, _ in mst.edges():
            assert h.has_edge(u, v)


class TestBaswanaSen:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_deterministic_guarantee(self, k, seed):
        g = erdos_renyi_graph(40, 0.3, seed=seed)
        h = baswana_sen_spanner(g, k, random.Random(seed))
        verify_spanner(g, h, 2 * k - 1)

    def test_k1_returns_whole_graph(self, small_er):
        h = baswana_sen_spanner(small_er, 1, random.Random(0))
        assert h.m == small_er.m

    def test_expected_size_bound(self):
        """E[edges] = O(k·n^{1+1/k}); check a generous 4x margin on average."""
        n, k = 60, 2
        sizes = []
        for seed in range(10):
            g = complete_graph(n, min_weight=1.0, max_weight=9.0, seed=seed)
            h = baswana_sen_spanner(g, k, random.Random(seed))
            sizes.append(h.m)
        avg = sum(sizes) / len(sizes)
        assert avg <= 4 * k * n ** (1 + 1 / k)

    def test_rounds_charged_o_k(self, small_er):
        led = RoundLedger()
        baswana_sen_spanner(small_er, 3, random.Random(1), ledger=led)
        assert led.by_phase()["baswana-sen"] == 9  # 3k

    def test_invalid_k(self, small_er):
        with pytest.raises(ValueError):
            baswana_sen_spanner(small_er, 0)

    def test_spans_all_vertices(self, heavy_ring):
        h = baswana_sen_spanner(heavy_ring, 2, random.Random(2))
        assert set(h.vertices()) == set(heavy_ring.vertices())
        verify_spanner(heavy_ring, h, 3)


def _unweighted_adjacency(g: WeightedGraph):
    return {v: set(g.neighbors(v)) for v in g.vertices()}


def _unweighted_stretch(adj, edges):
    """Max hop-stretch of the edge set over the unweighted graph."""
    span = {v: set() for v in adj}
    for e in edges:
        a, b = tuple(e)
        span[a].add(b)
        span[b].add(a)

    def bfs(src, graph):
        dist = {src: 0}
        frontier = [src]
        while frontier:
            nxt = []
            for u in frontier:
                for v in graph[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    worst = 1.0
    for u in adj:
        d_span = bfs(u, span)
        for v in adj[u]:
            if v not in d_span:
                return float("inf")
            worst = max(worst, d_span[v])
    return worst


class TestElkinNeiman:
    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stretch_2k_minus_1(self, k, seed):
        g = erdos_renyi_graph(40, 0.15, seed=seed)
        adj = _unweighted_adjacency(g)
        run = elkin_neiman_spanner(adj, k, random.Random(seed))
        assert _unweighted_stretch(adj, run.edges) <= 2 * k - 1

    def test_shifts_conditioned_below_k(self):
        shifts = sample_shifts(range(500), k=3, rng=random.Random(0))
        assert all(0 <= r < 3 for r in shifts.values())

    def test_expected_size_reasonable(self):
        n, k = 80, 2
        sizes = []
        for seed in range(8):
            g = erdos_renyi_graph(n, 0.4, seed=seed)
            adj = _unweighted_adjacency(g)
            run = elkin_neiman_spanner(adj, k, random.Random(seed))
            sizes.append(len(run.edges))
        avg = sum(sizes) / len(sizes)
        assert avg <= 8 * n ** (1 + 1 / k)

    def test_k_rounds_of_messages(self, small_er):
        adj = _unweighted_adjacency(small_er)
        run = elkin_neiman_spanner(adj, 3, random.Random(1))
        assert run.rounds == 3
        assert len(run.messages_per_round) == 3

    def test_precomputed_shifts_respected(self, small_er):
        adj = _unweighted_adjacency(small_er)
        shifts = sample_shifts(adj, 2, random.Random(5))
        run = elkin_neiman_spanner(adj, 2, shifts=shifts)
        assert run.shifts == shifts

    def test_edges_are_graph_edges(self, small_er):
        adj = _unweighted_adjacency(small_er)
        run = elkin_neiman_spanner(adj, 2, random.Random(3))
        for e in run.edges:
            a, b = tuple(e)
            assert b in adj[a]

    def test_invalid_k(self, small_er):
        with pytest.raises(ValueError):
            elkin_neiman_spanner(_unweighted_adjacency(small_er), 0)

    def test_single_node_graph(self):
        run = elkin_neiman_spanner({0: set()}, 2, random.Random(0))
        assert run.edges == set()
