"""Hypothesis property tests for the CONGEST primitives.

Random trees + random payload assignments: the pipelined primitives must
deliver exactly the right multiset of messages within the Lemma-1 round
budget, and the native algorithms must agree with their sequential
references, on every sample.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import (
    broadcast_messages,
    build_bfs_tree,
    convergecast_messages,
)
from repro.congest.keyed_aggregate import keyed_max_convergecast
from repro.graphs import WeightedGraph, dijkstra
from repro.spt.bounded_bellman_ford import bounded_bellman_ford
from repro.hopsets import hop_bounded_distances

_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def trees_with_payloads(draw, min_n=2, max_n=14, max_msgs=3):
    n = draw(st.integers(min_n, max_n))
    g = WeightedGraph(range(n))
    for v in range(1, n):
        g.add_edge(draw(st.integers(0, v - 1)), v, 1.0)
    payloads = {}
    for v in range(n):
        count = draw(st.integers(0, max_msgs))
        if count:
            payloads[v] = [f"p{v}.{i}" for i in range(count)]
    return g, payloads


@st.composite
def connected_weighted(draw, min_n=3, max_n=14):
    n = draw(st.integers(min_n, max_n))
    g = WeightedGraph(range(n))
    weights = st.floats(1.0, 50.0, allow_nan=False, allow_infinity=False)
    for v in range(1, n):
        g.add_edge(draw(st.integers(0, v - 1)), v, draw(weights))
    extra = draw(st.integers(0, 8))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, draw(weights))
    return g


class TestPipelineProperties:
    @given(trees_with_payloads())
    @settings(**_SETTINGS)
    def test_convergecast_delivers_exact_multiset(self, case):
        g, payloads = case
        tree = build_bfs_tree(g, 0)
        received, rounds = convergecast_messages(g, tree, payloads)
        expected = sorted(m for msgs in payloads.values() for m in msgs)
        assert sorted(received) == expected
        total = len(expected)
        assert rounds <= total + tree.height + 4

    @given(trees_with_payloads())
    @settings(**_SETTINGS)
    def test_broadcast_everyone_gets_everything(self, case):
        g, payloads = case
        tree = build_bfs_tree(g, 0)
        received, rounds = broadcast_messages(g, tree, payloads)
        expected = sorted(m for msgs in payloads.values() for m in msgs)
        for v in g.vertices():
            assert sorted(received[v]) == expected
        assert rounds <= len(expected) + 2 * tree.height + 4


class TestKeyedAggregateProperties:
    @given(
        trees_with_payloads(max_msgs=0),
        st.integers(1, 5),
        st.integers(0, 10),
    )
    @settings(**_SETTINGS)
    def test_max_per_key(self, case, num_keys, seed):
        g, _ = case
        tree = build_bfs_tree(g, 0)
        rng = random.Random(seed)
        keys = [f"k{i}" for i in range(num_keys)]
        inputs = {
            v: {k: (rng.random(), f"s{v}") for k in keys if rng.random() < 0.6}
            for v in g.vertices()
        }
        inputs = {v: d for v, d in inputs.items() if d}
        merged, rounds = keyed_max_convergecast(g, tree, inputs)
        for k in keys:
            contributions = [d[k] for d in inputs.values() if k in d]
            if contributions:
                assert merged[k] == max(contributions)
            else:
                assert k not in merged
        assert rounds <= num_keys + 2 * tree.height + 8


class TestBoundedBFProperties:
    @given(connected_weighted(), st.integers(1, 6))
    @settings(**_SETTINGS)
    def test_matches_sequential(self, g, hops):
        native, _, _ = bounded_bellman_ford(g, [0], hops)
        reference, _ = hop_bounded_distances(g, 0, hops)
        assert set(native) == set(reference)
        for v, d in reference.items():
            assert native[v] == pytest.approx(d)

    @given(connected_weighted())
    @settings(**_SETTINGS)
    def test_enough_hops_is_exact(self, g):
        native, _, _ = bounded_bellman_ford(g, [0], g.n)
        exact, _ = dijkstra(g, 0)
        for v, d in exact.items():
            assert native[v] == pytest.approx(d)
