"""Packed binary graph format suite (repro.kernels.binfmt / genpack).

The ``.rpg`` format is the substrate of the huge tier, so its failure
mode matters as much as its happy path: a truncated download or a
corrupted cache entry must be rejected with a clear
:class:`PackedFormatError` — never served as a silently-wrong graph.
The suite covers the round-trip, every rejection path (short header,
bad magic, wrong version, truncated payload, CRC mismatch), the
``ensure_packed`` cache (hit, corrupt-entry regeneration), the
python/numpy packer byte parity, and the mmap lifetime rules.
"""

from __future__ import annotations

import struct

import pytest

from repro.graphs import erdos_renyi_graph, ring_chords_graph
from repro.kernels import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    PackedFormatError,
    has_numpy,
    load_packed,
    pack_arrays,
    pack_csr,
    pack_ring_chords,
    ensure_packed,
    pykern,
)
from repro.kernels.genpack import packed_name

needs_numpy = pytest.mark.skipif(not has_numpy(), reason="numpy not installed")


@pytest.fixture
def packed(tmp_path):
    """A small valid .rpg file plus the CSR columns it was packed from."""
    csr = erdos_renyi_graph(60, 0.1, seed=0).freeze()
    path = tmp_path / "g.rpg"
    pack_csr(csr, path)
    return path, csr


# ------------------------------------------------------------- round trip

def test_round_trip(packed):
    path, csr = packed
    with load_packed(path) as pg:
        assert pg.n == csr.n
        assert pg.m_arcs == len(csr.indices)
        assert list(pg.indptr) == list(csr.indptr)
        assert list(pg.indices) == list(csr.indices)
        assert list(pg.weights) == pytest.approx(list(csr.weights))


def test_round_trip_preserves_shortest_paths(packed):
    path, csr = packed
    with load_packed(path) as pg:
        from_file = pykern.sssp(pg.indptr, pg.indices, pg.weights, [0])[0]
    in_memory = pykern.sssp(csr.indptr, csr.indices, csr.weights, [0])[0]
    assert from_file == pytest.approx(in_memory)


def test_pack_arrays_empty_graph(tmp_path):
    path = tmp_path / "empty.rpg"
    pack_arrays(path, [0], [], [])
    with load_packed(path) as pg:
        assert pg.n == 0 and pg.m_arcs == 0


# ------------------------------------------------------------- rejections

def test_rejects_truncated_header(tmp_path):
    path = tmp_path / "short.rpg"
    path.write_bytes(b"RPROGRPH123")
    with pytest.raises(PackedFormatError, match="shorter than"):
        load_packed(path)


def test_rejects_bad_magic(packed):
    path, _ = packed
    blob = bytearray(path.read_bytes())
    blob[:8] = b"NOTAGRPH"
    path.write_bytes(bytes(blob))
    with pytest.raises(PackedFormatError, match="bad magic"):
        load_packed(path)


def test_rejects_future_version(packed):
    path, _ = packed
    blob = bytearray(path.read_bytes())
    struct.pack_into("<I", blob, 8, FORMAT_VERSION + 1)
    path.write_bytes(bytes(blob))
    with pytest.raises(PackedFormatError, match="version"):
        load_packed(path)


def test_rejects_truncated_payload(packed):
    path, _ = packed
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 16])
    with pytest.raises(PackedFormatError, match="truncated or corrupt"):
        load_packed(path)
    # even with the CRC pass skipped, the size check still rejects it
    with pytest.raises(PackedFormatError, match="truncated or corrupt"):
        load_packed(path, verify=False)


def test_rejects_corrupt_payload(packed):
    path, _ = packed
    blob = bytearray(path.read_bytes())
    blob[HEADER_SIZE + 12] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(PackedFormatError, match="CRC32"):
        load_packed(path)
    # verify=False trusts the payload (documented cache fast path)
    load_packed(path, verify=False).close()


def test_magic_is_stamped(packed):
    path, _ = packed
    assert path.read_bytes()[:8] == MAGIC


# ------------------------------------------------------------ genpack cache

def test_packed_ring_chords_matches_generator(tmp_path):
    """The streamed packer writes the same CSR freeze() builds."""
    n, chords, seed = 500, 3, 11
    path = tmp_path / "rc.rpg"
    pack_ring_chords(path, n, chords, seed)
    csr = ring_chords_graph(n, chords=chords, seed=seed).freeze()
    with load_packed(path) as pg:
        assert list(pg.indptr) == list(csr.indptr)
        dist_file = pykern.sssp(pg.indptr, pg.indices, pg.weights, [7])[0]
    dist_mem = pykern.sssp(csr.indptr, csr.indices, csr.weights, [7])[0]
    assert dist_file == pytest.approx(dist_mem, abs=1e-12)


@needs_numpy
def test_python_and_numpy_packers_byte_identical(tmp_path, monkeypatch):
    from repro.kernels import genpack

    a = tmp_path / "np.rpg"
    pack_ring_chords(a, 700, 3, 5)
    b = tmp_path / "py.rpg"
    monkeypatch.setattr(genpack, "numpy_or_none", lambda: None)
    pack_ring_chords(b, 700, 3, 5)
    assert a.read_bytes() == b.read_bytes()


def test_ensure_packed_cache_hit(tmp_path):
    p1 = ensure_packed(300, 3, 0, cache_dir=tmp_path)
    stamp = p1.stat().st_mtime_ns
    p2 = ensure_packed(300, 3, 0, cache_dir=tmp_path)
    assert p1 == p2
    assert p2.stat().st_mtime_ns == stamp  # served from cache, not rebuilt
    assert p1.name == packed_name(300, 3, 0)


def test_ensure_packed_regenerates_corrupt_entry(tmp_path):
    p1 = ensure_packed(300, 3, 0, cache_dir=tmp_path)
    blob = p1.read_bytes()
    p1.write_bytes(blob[: len(blob) - 8])  # truncate the cache entry
    p2 = ensure_packed(300, 3, 0, cache_dir=tmp_path)
    assert p2 == p1
    load_packed(p2).close()  # valid again


# ------------------------------------------------------------ mmap lifetime

def test_views_raise_after_close(packed):
    path, _ = packed
    pg = load_packed(path)
    pg.close()
    with pytest.raises((ValueError, TypeError)):
        pg.indptr[0]
    pg.close()  # idempotent


@needs_numpy
def test_close_with_live_numpy_views(packed):
    """Consumers may hold numpy arrays over the mapping past close();
    close() must not raise (regression: BufferError on exported views)."""
    import numpy as np

    path, _ = packed
    pg = load_packed(path)
    arr = np.asarray(pg.weights)
    total = float(arr.sum())
    pg.close()  # arr still alive: must not raise
    assert float(arr.sum()) == total  # mapping stays valid while referenced
    del arr


# ----------------------------------------------------------------- CLI

def test_cli_graph_pack_and_load(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli.rpg"
    assert main(["graph", "pack", "--n", "400", "--chords", "3",
                 "--seed", "1", "--out", str(out)]) == 0
    assert main(["graph", "load", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "vertices    400" in stdout
    assert "checksum    ok" in stdout


def test_cli_graph_load_rejects_corrupt(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli.rpg"
    assert main(["graph", "pack", "--n", "400", "--chords", "3",
                 "--seed", "1", "--out", str(out)]) == 0
    blob = bytearray(out.read_bytes())
    blob[HEADER_SIZE + 5] ^= 0xFF
    out.write_bytes(bytes(blob))
    assert main(["graph", "load", str(out)]) == 2
    assert "CRC32" in capsys.readouterr().err
