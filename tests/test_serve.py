"""Suite for the shared-memory serving daemon (repro.serve).

Three layers of contract:

* **shm** — publish/attach round-trips the oracle exactly, attached
  oracles answer over zero-copy views, and worker-side private memory
  stays far below one full oracle copy (the whole point of sharing);
* **protocol/daemon** — every failure in the typed taxonomy is a typed
  envelope, never a traceback or a hang: malformed frames keep the
  connection, oversized frames close it, disconnecting clients and
  SIGKILLed workers leave the daemon serving;
* **correctness under concurrency** — workers=N answers equal
  workers=1 answers equal Dijkstra-on-H (1e-9), and per-worker metric
  registries merge into exact totals.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import verify_oracle
from repro.graphs import erdos_renyi_graph
from repro.graphs.shortest_paths import dijkstra
from repro.harness.loadgen import run_closed_level
from repro.oracle import build_oracle
from repro.serve import (
    ConnectionClosed,
    ProtocolError,
    ServeClient,
    Server,
    address_of,
    attach_oracle,
    publish_oracle,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    decode_body,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    read_frame,
    result_of,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

GRAPH = erdos_renyi_graph(150, 0.06, seed=21)
ORACLE = build_oracle(GRAPH, landmarks=4, seed=3)
PAIRS = [(u, v) for u in [0, 3, 7, 20] for v in [1, 9, 33, 140]]


def _serve_in_thread(server):
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


@pytest.fixture(scope="module")
def served():
    """One shared daemon (2 workers, TCP) for the read-only tests."""
    server = Server(ORACLE, workers=2, port=0, warm=3)
    thread = _serve_in_thread(server)
    yield server
    server.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture()
def client(served):
    with ServeClient.open(served.address) as c:
        yield c


def _raw_conn(served):
    sock = socket.create_connection(served.address, timeout=10)
    sock.settimeout(10)
    return sock


# ---------------------------------------------------------------------------
# protocol helpers
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"op": "query", "u": "0", "v": "1"}
        frame = encode_frame(payload)
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_infinity_rides_the_wire(self):
        frame = encode_frame(ok_response(float("inf")))
        assert result_of(decode_body(frame[4:])) == float("inf")

    def test_encode_rejects_oversized(self):
        with pytest.raises(ProtocolError) as err:
            encode_frame({"blob": "x" * 100}, max_frame=50)
        assert err.value.code == "oversized_frame"

    def test_parse_request_taxonomy(self):
        assert parse_request({"op": "ping"}) == ("ping", {})
        with pytest.raises(ProtocolError) as err:
            parse_request({"no": "op"})
        assert err.value.code == "malformed_frame"
        with pytest.raises(ProtocolError) as err:
            parse_request({"op": "frobnicate"})
        assert err.value.code == "unknown_op"

    def test_result_of_rebuilds_typed_errors(self):
        with pytest.raises(ProtocolError) as err:
            result_of(error_response("unknown_vertex", "no such vertex"))
        assert err.value.code == "unknown_vertex"

    def test_address_of(self):
        assert address_of("127.0.0.1:80") == ("127.0.0.1", 80)
        assert address_of("unix:/tmp/s.sock") == "/tmp/s.sock"
        with pytest.raises(ValueError):
            address_of("unix:")
        with pytest.raises(ValueError):
            address_of("no-port-here")


# ---------------------------------------------------------------------------
# shared-memory publish / attach
# ---------------------------------------------------------------------------
class TestShm:
    def test_attach_round_trips_the_oracle(self):
        share = publish_oracle(ORACLE)
        try:
            handle = attach_oracle(share.name)
            try:
                attached = handle.oracle
                assert attached.csr.n == ORACLE.csr.n
                assert list(attached.csr.verts) == list(ORACLE.csr.verts)
                assert attached.landmark_indices == ORACLE.landmark_indices
                got = attached.query_many(PAIRS)
                want = ORACLE.query_many(PAIRS)
                for g, w in zip(got, want):
                    assert g == pytest.approx(w, abs=1e-9)
            finally:
                handle.close()
        finally:
            share.unlink()

    def test_attached_arrays_are_views_not_copies(self):
        share = publish_oracle(ORACLE)
        try:
            handle = attach_oracle(share.name)
            try:
                csr = handle.oracle.csr
                assert isinstance(csr.indptr, memoryview)
                assert isinstance(csr.weights, memoryview)
                assert isinstance(handle.oracle.potentials[0], memoryview)
            finally:
                handle.close()
        finally:
            share.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="magic"):
                attach_oracle(seg.name)
        finally:
            seg.close()
            seg.unlink()

    def test_shm_backed_oracle_still_pickles_self_contained(self):
        share = publish_oracle(ORACLE)
        try:
            handle = attach_oracle(share.name)
            try:
                clone = pickle.loads(pickle.dumps(handle.oracle))
            finally:
                handle.close()
        finally:
            share.unlink()
        # the segment is gone; the clone must answer from its own arrays
        for g, w in zip(clone.query_many(PAIRS), ORACLE.query_many(PAIRS)):
            assert g == pytest.approx(w, abs=1e-9)

    def test_worker_private_memory_is_a_fraction_of_a_copy(self, tmp_path):
        """The memory-footprint gate: a worker that *attaches* pays far
        less private memory than a worker holding its own *unpickled
        copy* — the array payload stays in shared pages.  (The label
        table is rebuilt privately either way, so the honest comparison
        is attach-vs-copy, not attach-vs-zero.)"""
        big_graph = erdos_renyi_graph(3000, 0.006, seed=5)
        big_oracle = build_oracle(big_graph, landmarks=6, seed=9)
        share = publish_oracle(big_oracle)
        pickled = tmp_path / "oracle.pkl"
        pickled.write_bytes(pickle.dumps(big_oracle))
        script = tmp_path / "residency_probe.py"
        script.write_text(textwrap.dedent("""\
            import json
            import pickle
            import sys

            from multiprocessing import resource_tracker

            from repro.serve import attach_oracle


            def private_bytes() -> int:
                total = 0
                with open("/proc/self/smaps_rollup") as fh:
                    for line in fh:
                        if line.startswith(("Private_Dirty:", "Private_Clean:")):
                            total += int(line.split()[1]) * 1024
                return total


            mode, source = sys.argv[1], sys.argv[2]
            before = private_bytes()
            if mode == "attach":
                handle = attach_oracle(source)
                oracle = handle.oracle
                payload = handle.payload_bytes
                # this probe owns its resource tracker (it is not a
                # multiprocessing child); pre-3.13 attach registered the
                # segment there, and exiting would unlink it from under
                # the publisher — hand the registration back first
                resource_tracker.unregister(
                    "/" + source.lstrip("/"), "shared_memory"
                )
            else:
                with open(source, "rb") as fh:
                    oracle = pickle.loads(fh.read())
                payload = 0
            touched = (
                sum(oracle.csr.weights)
                + sum(oracle.csr.indptr)
                + sum(sum(p) for p in oracle.potentials)
                + float(oracle.query(0, 1))
            )
            after = private_bytes()
            print(json.dumps({
                "delta": after - before,
                "payload": payload,
                "touched": touched,
            }))
        """))

        def probe(mode, source):
            out = subprocess.run(
                [sys.executable, str(script), mode, source],
                capture_output=True, text=True, timeout=120,
                env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            )
            assert out.returncode == 0, out.stderr
            return json.loads(out.stdout)

        try:
            attached = probe("attach", share.name)
            copied = probe("copy", str(pickled))
        finally:
            share.unlink()
        assert attached["payload"] > 500_000  # the gate must be meaningful
        # both probes touch every value and compute one query; only the
        # copy materializes the arrays as private Python objects
        assert attached["touched"] == pytest.approx(copied["touched"])
        assert attached["delta"] < 0.5 * copied["delta"], (attached, copied)
        # and the attach-side private cost stays below one payload even
        # counting the rebuilt label table
        assert attached["delta"] < attached["payload"], attached


# ---------------------------------------------------------------------------
# daemon ops
# ---------------------------------------------------------------------------
class TestDaemonOps:
    def test_ping_info_vertices(self, served, client):
        assert client.ping() is True
        info = client.info()
        assert info["n"] == ORACLE.csr.n
        assert info["workers"] == 2
        assert info["payload_bytes"] == served.payload_bytes > 0
        page = client.call("vertices", limit=5)
        assert page["n"] == ORACLE.csr.n
        assert len(page["vertices"]) == 5
        assert client.vertices(limit=5) == page["vertices"]

    def test_query_matches_direct_oracle_and_dijkstra(self, client):
        dist, _ = dijkstra(GRAPH, 0)
        for v in (1, 9, 140):
            served_d = client.query("0", str(v))
            assert served_d == pytest.approx(ORACLE.query(0, v), abs=1e-9)
            assert served_d == pytest.approx(
                dist.get(v, float("inf")), abs=1e-9
            )

    def test_query_many_matches_batch(self, client):
        got = client.query_many([[str(u), str(v)] for u, v in PAIRS])
        for g, w in zip(got, ORACLE.query_many(PAIRS)):
            assert g == pytest.approx(w, abs=1e-9)

    def test_k_nearest_matches(self, client):
        got = client.k_nearest("7", k=4)
        want = ORACLE.k_nearest(7, 4)
        assert [u for u, _ in got] == [str(u) for u, _ in want]
        for (_, gd), (_, wd) in zip(got, want):
            assert gd == pytest.approx(wd, abs=1e-9)

    def test_unknown_vertex_is_typed(self, client):
        with pytest.raises(ProtocolError) as err:
            client.query("0", "nope")
        assert err.value.code == "unknown_vertex"

    def test_bad_request_is_typed(self, client):
        with pytest.raises(ProtocolError) as err:
            client.call("query", u="0")  # v missing
        assert err.value.code == "bad_request"
        with pytest.raises(ProtocolError) as err:
            client.call("k_nearest", v="0", k="three")
        assert err.value.code == "bad_request"

    def test_stats_merges_worker_registries(self, served, client):
        before = client.stats()["snapshot"].get(
            "serve.worker.requests", {}
        ).get("value", 0)
        for u, v in PAIRS:
            client.query(str(u), str(v))
        stats = client.stats()
        assert stats["workers"] == 2
        after = stats["snapshot"]["serve.worker.requests"]["value"]
        # every compute op landed on exactly one worker; the merged
        # total counts them all (stats itself is answered by fan-out)
        assert after - before >= len(PAIRS)
        assert len(stats["caches"]) == 2


# ---------------------------------------------------------------------------
# robustness: the typed failure taxonomy, end to end
# ---------------------------------------------------------------------------
class TestRobustness:
    def test_malformed_frame_keeps_the_connection(self, served):
        sock = _raw_conn(served)
        try:
            body = b"this is not json"
            sock.sendall(struct.pack("!I", len(body)) + body)
            reply = read_frame(sock)
            assert reply["error"]["code"] == "malformed_frame"
            # the framing was intact, so the connection still serves
            sock.sendall(encode_frame({"op": "ping"}))
            assert result_of(read_frame(sock))["pong"] is True
        finally:
            sock.close()

    def test_non_object_json_is_malformed(self, served):
        sock = _raw_conn(served)
        try:
            body = json.dumps([1, 2, 3]).encode()
            sock.sendall(struct.pack("!I", len(body)) + body)
            assert read_frame(sock)["error"]["code"] == "malformed_frame"
        finally:
            sock.close()

    def test_oversized_frame_answers_then_closes(self, served):
        sock = _raw_conn(served)
        try:
            sock.sendall(struct.pack("!I", DEFAULT_MAX_FRAME + 1))
            reply = read_frame(sock)
            assert reply["error"]["code"] == "oversized_frame"
            # the stream position is unrecoverable: the daemon closes
            with pytest.raises(ConnectionClosed):
                read_frame(sock)
        finally:
            sock.close()

    def test_client_disconnect_mid_request_never_wedges(self, served):
        for _ in range(3):
            sock = _raw_conn(served)
            sock.sendall(encode_frame({"op": "query", "u": "0", "v": "9"}))
            sock.close()  # gone before the answer comes back
        # the daemon must still be fully alive for everyone else
        with ServeClient.open(served.address) as c:
            assert c.ping() is True
            assert c.query("0", "9") == pytest.approx(
                ORACLE.query(0, 9), abs=1e-9
            )

    def test_partial_frame_then_eof_is_harmless(self, served):
        sock = _raw_conn(served)
        sock.sendall(b"\x00\x00")  # half a length prefix
        sock.close()
        with ServeClient.open(served.address) as c:
            assert c.ping() is True


# ---------------------------------------------------------------------------
# crash isolation and lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_worker_crash_respawns_and_service_continues(self):
        server = Server(ORACLE, workers=2, port=0)
        thread = _serve_in_thread(server)
        try:
            with ServeClient.open(server.address) as c:
                killed = c.crash_worker(worker=0)
                assert killed == 0
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    snap = c.stats()["snapshot"]
                    crashed = snap.get(
                        "serve.workers.crashed", {"value": 0}
                    )["value"]
                    respawned = snap.get(
                        "serve.workers.respawned", {"value": 0}
                    )["value"]
                    if crashed >= 1 and respawned >= 1:
                        break
                    time.sleep(0.1)
                assert crashed >= 1 and respawned >= 1
                for u, v in PAIRS:
                    assert c.query(str(u), str(v)) == pytest.approx(
                        ORACLE.query(u, v), abs=1e-9
                    )
        finally:
            server.request_shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()

    def test_shutdown_op_stops_the_daemon(self):
        server = Server(ORACLE, workers=1, port=0)
        thread = _serve_in_thread(server)
        address = server.address
        with ServeClient.open(address) as c:
            c.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2)

    def test_unix_socket_serving(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        server = Server(ORACLE, workers=1, unix_path=path)
        thread = _serve_in_thread(server)
        try:
            assert server.address == path
            with ServeClient.open(path) as c:
                assert c.ping() is True
                assert c.query("0", "1") == pytest.approx(
                    ORACLE.query(0, 1), abs=1e-9
                )
        finally:
            server.request_shutdown()
            thread.join(timeout=30)
        assert not Path(path).exists()  # stale socket files are removed

    def test_close_is_idempotent(self):
        server = Server(ORACLE, workers=1, port=0)
        thread = _serve_in_thread(server)
        server.request_shutdown()
        thread.join(timeout=30)
        server.close()
        server.close()


# ---------------------------------------------------------------------------
# workers=N == workers=1 == Dijkstra
# ---------------------------------------------------------------------------
class TestMultiWorkerCorrectness:
    def test_answers_agree_across_worker_counts(self):
        verify_oracle(GRAPH, ORACLE, pairs=20, seed=3)
        pairs = [(str(u), str(v)) for u, v in PAIRS] * 3
        answers = {}
        for workers in (1, 2):
            server = Server(ORACLE, workers=workers, port=0)
            thread = _serve_in_thread(server)
            try:
                _, got = run_closed_level(
                    server.address, pairs, concurrency=2,
                    collect_answers=True,
                )
            finally:
                server.request_shutdown()
                thread.join(timeout=30)
            answers[workers] = sorted(got)
        assert answers[1] == answers[2]
        dist_cache = {}
        for u, v, d in answers[2]:
            if u not in dist_cache:
                dist_cache[u] = dijkstra(GRAPH, int(u))[0]
            assert d == pytest.approx(
                dist_cache[u].get(int(v), float("inf")), abs=1e-9
            )
