"""Shared fixtures: a zoo of small graphs every suite exercises."""

from __future__ import annotations

import random

import pytest

from repro.graphs import (
    WeightedGraph,
    caterpillar_graph,
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    ring_of_cliques,
    star_graph,
)


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def triangle():
    g = WeightedGraph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 2, 2.5)
    return g


@pytest.fixture
def small_er():
    return erdos_renyi_graph(30, 0.25, seed=7)


@pytest.fixture
def medium_er():
    return erdos_renyi_graph(60, 0.15, seed=11)


@pytest.fixture
def geometric():
    return random_geometric_graph(40, seed=3)


@pytest.fixture
def grid():
    return grid_graph(6, 6, jitter=0.3, seed=5)


@pytest.fixture
def star_with_rim():
    return star_graph(12, spoke_weight=10.0, rim_weight=1.0)


@pytest.fixture
def heavy_ring():
    return ring_of_cliques(4, 5, intra_weight=1.0, inter_weight=40.0)


@pytest.fixture
def caterpillar():
    return caterpillar_graph(10, legs_per_vertex=2)


@pytest.fixture(
    params=["er", "geometric", "grid", "ring", "star"],
    ids=["erdos-renyi", "geometric", "grid", "ring-of-cliques", "star-rim"],
)
def workload(request):
    """Parametrized workload used by the integration-style suites."""
    if request.param == "er":
        return erdos_renyi_graph(25, 0.3, seed=1)
    if request.param == "geometric":
        return random_geometric_graph(25, seed=2)
    if request.param == "grid":
        return grid_graph(5, 5, jitter=0.5, seed=3)
    if request.param == "ring":
        return ring_of_cliques(3, 5, inter_weight=25.0)
    return star_graph(14, spoke_weight=8.0, rim_weight=1.0)
