"""Property suite for the distance-serving layer (repro.oracle).

The oracle's contract is *exact-on-structure*: for any served structure
H and any pair, the answer equals Dijkstra-on-H to 1e-9 — the paper's
stretch guarantee vs the host graph is inherited from H, so exactness
here is what keeps it valid.  The suite pins that property on every
queryable smoke profile (the same structures the harness serves), plus
the serving mechanics: batch == singles, cache-warm == cache-cold,
pickle round-trips, LRU accounting, k-nearest, and both landmark
strategies.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.analysis import sample_pairwise_stretch, verify_oracle
from repro.analysis.stretch import max_pairwise_stretch
from repro.analysis.validation import ValidationError
from repro.graphs import WeightedGraph, erdos_renyi_graph, path_graph
from repro.graphs.shortest_paths import dijkstra
from repro.harness.runner import ALGORITHMS, STRUCTURE_EXTRACTORS, queryable_profiles
from repro.oracle import (
    STRATEGIES,
    build_oracle,
    select_landmarks,
)

INF = float("inf")

QUERYABLE = queryable_profiles()


def _smoke_structure(profile):
    """Build the profile's smoke-tier structure (what the oracle serves)."""
    graph = profile.build_graph("smoke")
    build, _ = ALGORITHMS[profile.algorithm]
    artifact = build(graph, profile.algo_params("smoke"),
                     random.Random(profile.seed))[0]
    return STRUCTURE_EXTRACTORS[profile.algorithm](artifact)


def _seeded_mix(structure, count, seed):
    """A seeded query mix with deliberate repeats (cache traffic)."""
    verts = list(structure.vertices())
    rng = random.Random(seed)
    hot = [(rng.choice(verts), rng.choice(verts)) for _ in range(10)]
    return [
        hot[rng.randrange(10)] if rng.random() < 0.4
        else (rng.choice(verts), rng.choice(verts))
        for _ in range(count)
    ]


def _exact(structure, pairs):
    by_source = {}
    out = []
    for u, v in pairs:
        if u not in by_source:
            by_source[u] = dijkstra(structure, u)[0]
        out.append(by_source[u].get(v, INF))
    return out


@pytest.mark.parametrize("profile", QUERYABLE, ids=[p.name for p in QUERYABLE])
def test_oracle_exact_on_every_smoke_profile(profile):
    """Oracle == Dijkstra-on-structure (1e-9) for a seeded query mix,
    batch == singles, cache-warm == cache-cold, pickle preserves answers."""
    structure = _smoke_structure(profile)
    oracle = build_oracle(structure, landmarks=4, seed=profile.seed)
    pairs = _seeded_mix(structure, 120, seed=profile.seed + 1)

    cold = oracle.query_many(pairs)
    for got, want in zip(cold, _exact(structure, pairs)):
        assert got == pytest.approx(want, abs=1e-9)

    # cache-warm answers are bit-identical to the cold ones
    warm = oracle.query_many(pairs)
    assert warm == cold
    assert oracle.cache_info()["hits"] >= len(pairs)

    # batch == singles (same scratch arrays, same cache)
    assert [oracle.query(u, v) for u, v in pairs] == cold

    # pickle round-trip preserves every answer (cache starts cold)
    thawed = pickle.loads(pickle.dumps(oracle))
    assert thawed.cache_info()["hits"] == 0
    assert thawed.query_many(pairs) == cold


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategies_are_exact_and_deterministic(medium_er, strategy):
    a = build_oracle(medium_er, landmarks=6, strategy=strategy, seed=3)
    b = build_oracle(medium_er, landmarks=6, strategy=strategy, seed=3)
    assert a.landmarks == b.landmarks
    pairs = _seeded_mix(medium_er, 80, seed=5)
    assert a.query_many(pairs) == b.query_many(pairs)
    for got, want in zip(a.query_many(pairs), _exact(medium_er, pairs)):
        assert got == pytest.approx(want, abs=1e-9)


def test_degree_strategy_prefers_hubs(star_with_rim):
    csr = star_with_rim.freeze()
    chosen = select_landmarks(csr, 1, strategy="degree", seed=0)
    hub = max(range(csr.n), key=csr.degree_idx)
    assert chosen == [hub]


def test_far_sampling_covers_components():
    g = WeightedGraph()
    for base in (0, 100):  # two disjoint 4-paths
        for i in range(3):
            g.add_edge(base + i, base + i + 1, 1.0)
    csr = g.freeze()
    chosen = select_landmarks(csr, 2, strategy="far", seed=1)
    comps = {c // 100 for c in (csr.verts[i] for i in chosen)}
    assert comps == {0, 1}, "second landmark must land in the other component"


def test_disconnected_pairs_are_inf_and_same_vertex_is_zero():
    g = WeightedGraph()
    g.add_edge("a", "b", 2.0)
    g.add_edge("c", "d", 3.0)
    oracle = build_oracle(g, landmarks=2)
    assert oracle.query("a", "c") == INF
    assert oracle.query("a", "a") == 0.0
    assert oracle.query("a", "b") == 2.0
    assert oracle.query_many([("a", "c"), ("b", "a")]) == [INF, 2.0]


def test_k_nearest_matches_sorted_dijkstra(grid):
    oracle = build_oracle(grid, landmarks=4)
    for v in list(grid.vertices())[:6]:
        dist = {u: d for u, d in dijkstra(grid, v)[0].items() if u != v}
        want = sorted(dist.values())[:7]
        got = [d for _, d in oracle.k_nearest(v, 7)]
        assert got == pytest.approx(want, abs=1e-9)
        ranked = oracle.k_nearest(v, 7)
        assert ranked == sorted(ranked, key=lambda vd: vd[1])


def test_k_nearest_truncates_at_component(triangle):
    g = WeightedGraph(["x"])  # isolated vertex alongside the triangle
    for u, v, w in triangle.edges():
        g.add_edge(u, v, w)
    oracle = build_oracle(g, landmarks=2)
    assert oracle.k_nearest("x", 5) == []
    assert len(oracle.k_nearest(0, 99)) == 2


def test_lru_eviction_and_counters(small_er):
    oracle = build_oracle(small_er, landmarks=2, cache_size=4)
    verts = list(small_er.vertices())
    pairs = [(verts[0], verts[i]) for i in range(1, 9)]
    oracle.query_many(pairs)
    info = oracle.cache_info()
    assert info["size"] == 4  # capacity respected
    assert info["misses"] == 8 and info["hits"] == 0
    oracle.query(*pairs[-1])  # most-recent entry is still cached
    assert oracle.cache_info()["hits"] == 1
    oracle.query(*pairs[0])  # oldest entry was evicted
    assert oracle.cache_info()["misses"] == 9
    oracle.reset_cache()
    assert oracle.cache_info() == {
        "hits": 0, "misses": 0, "pinched": 0, "searches": 0,
        "size": 0, "maxsize": 4,
    }


def test_cache_key_is_symmetric(triangle):
    oracle = build_oracle(triangle, landmarks=1)
    d = oracle.query(0, 2)
    assert oracle.query(2, 0) == d
    assert oracle.cache_info()["hits"] == 1


def test_landmark_endpoint_queries_are_pinched(medium_er):
    oracle = build_oracle(medium_er, landmarks=3, strategy="degree", seed=0)
    lm = oracle.landmarks[0]
    other = next(v for v in medium_er.vertices() if v != lm)
    want = dijkstra(medium_er, lm)[0][other]
    assert oracle.query(lm, other) == pytest.approx(want, abs=1e-9)
    assert oracle.cache_info()["pinched"] == 1
    assert oracle.cache_info()["searches"] == 0


def test_error_cases(small_er):
    oracle = build_oracle(small_er, landmarks=2)
    with pytest.raises(ValueError, match="not a vertex"):
        oracle.query("nope", 0)
    with pytest.raises(ValueError, match="not a vertex"):
        oracle.k_nearest("nope", 2)
    with pytest.raises(ValueError, match="k must be"):
        oracle.k_nearest(0, 0)
    with pytest.raises(ValueError, match="strategy"):
        build_oracle(small_er, strategy="nearest")
    with pytest.raises(ValueError, match="count"):
        build_oracle(small_er, landmarks=0)
    with pytest.raises(ValueError, match="cache_size"):
        build_oracle(small_er, cache_size=0)
    with pytest.raises(ValueError, match="empty"):
        build_oracle(WeightedGraph())


def test_oracle_over_frozen_csr_matches_weighted(small_er):
    a = build_oracle(small_er, landmarks=3, seed=2)
    b = build_oracle(small_er.freeze(), landmarks=3, seed=2)
    pairs = _seeded_mix(small_er, 40, seed=4)
    assert a.query_many(pairs) == b.query_many(pairs)


def test_single_vertex_structure():
    g = WeightedGraph(["only"])
    oracle = build_oracle(g, landmarks=3)
    assert oracle.query("only", "only") == 0.0
    assert oracle.k_nearest("only", 3) == []


# ---------------------------------------------------------------------------
# analysis integration: oracle-served spot-checks
# ---------------------------------------------------------------------------

class TestAnalysisIntegration:
    def test_verify_oracle_accepts_a_correct_oracle(self, medium_er):
        verify_oracle(medium_er, build_oracle(medium_er, landmarks=4), pairs=40)

    def test_verify_oracle_rejects_wrong_structure(self, medium_er):
        # same vertex set, different metric: answers cannot all agree
        other = erdos_renyi_graph(60, 0.15, seed=999)
        with pytest.raises(ValidationError, match="oracle answer"):
            verify_oracle(medium_er, build_oracle(other, landmarks=4), pairs=60)

    def test_verify_oracle_rejects_vertex_set_mismatch(self, medium_er, triangle):
        with pytest.raises(ValidationError, match="vertices"):
            verify_oracle(medium_er, build_oracle(triangle, landmarks=1))

    def test_sample_pairwise_stretch_lower_bounds_exact(self, small_er, rng):
        from repro.spanners import baswana_sen_spanner

        spanner = baswana_sen_spanner(small_er, 2, rng)
        sampled = sample_pairwise_stretch(small_er, spanner, pairs=60, seed=1)
        exact = max_pairwise_stretch(small_er, spanner)
        assert 1.0 <= sampled <= exact + 1e-9

    def test_sample_pairwise_stretch_inf_when_spanner_misses_a_vertex(self):
        g = path_graph(6)
        partial = WeightedGraph()
        for u, v, w in list(g.edges())[:3]:  # vertices 4, 5 absent entirely
            partial.add_edge(u, v, w)
        assert sample_pairwise_stretch(g, partial, pairs=40, seed=0) == INF

    def test_sample_pairwise_stretch_inf_on_disconnection(self):
        g = path_graph(6)
        broken = WeightedGraph(g.vertices())
        edges = list(g.edges())
        for u, v, w in edges[:-1]:
            broken.add_edge(u, v, w)
        # enough pairs that some sampled pair crosses the missing edge
        assert sample_pairwise_stretch(g, broken, pairs=80, seed=0) == INF

    def test_sample_pairwise_stretch_reuses_prebuilt_oracles(self, small_er):
        go = build_oracle(small_er, seed=0)
        a = sample_pairwise_stretch(small_er, small_er, pairs=30, seed=0,
                                    graph_oracle=go, spanner_oracle=go)
        assert a == pytest.approx(1.0)
