"""Parity suite: CSRGraph must agree with WeightedGraph everywhere.

The CSR backend is a pure re-encoding — same vertices, same edges, same
distances, same guarantees — so every generator family is pushed through
both backends and the results compared exactly.
"""

import random

import pytest

from repro.analysis import max_edge_stretch
from repro.graphs import (
    barbell_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    dijkstra,
    erdos_renyi_graph,
    grid_graph,
    hop_diameter,
    hypercube_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    random_tree,
    ring_of_cliques,
    star_graph,
    unit_ball_graph,
)
from repro.graphs.shortest_paths import bounded_dijkstra, hop_distances
from repro.spanners.baswana_sen import baswana_sen_spanner

FAMILIES = {
    "complete": lambda: complete_graph(12, 1.0, 9.0, seed=1),
    "path": lambda: path_graph(20),
    "cycle": lambda: cycle_graph(15),
    "star+rim": lambda: star_graph(12, rim_weight=0.5),
    "grid": lambda: grid_graph(5, 6, jitter=0.3, seed=2),
    "erdos-renyi": lambda: erdos_renyi_graph(40, 0.15, seed=3),
    "geometric": lambda: random_geometric_graph(30, seed=4),
    "unit-ball": lambda: unit_ball_graph(25, seed=5),
    "tree": lambda: random_tree(30, seed=6),
    "caterpillar": lambda: caterpillar_graph(8, 3),
    "ring-of-cliques": lambda: ring_of_cliques(4, 5),
    "hypercube": lambda: hypercube_graph(4),
    "regular": lambda: random_regular_graph(20, 4, seed=8),
    "barbell": lambda: barbell_graph(5, 6),
}


@pytest.fixture(params=sorted(FAMILIES), ids=sorted(FAMILIES))
def pair(request):
    g = FAMILIES[request.param]()
    return g, g.to_csr()


class TestStructuralParity:
    def test_sizes(self, pair):
        g, csr = pair
        assert csr.n == g.n
        assert csr.m == g.m
        assert len(csr) == len(g)

    def test_vertices(self, pair):
        g, csr = pair
        assert list(csr.vertices()) == list(g.vertices())
        for v in g.vertices():
            assert csr.has_vertex(v)
            assert v in csr

    def test_degrees(self, pair):
        g, csr = pair
        for v in g.vertices():
            assert csr.degree(v) == g.degree(v)
            assert csr.degree_idx(csr.index_of(v)) == g.degree(v)

    def test_edge_iteration(self, pair):
        g, csr = pair
        mine = sorted((repr(u), repr(v), w) for u, v, w in g.edges())
        theirs = sorted((repr(u), repr(v), w) for u, v, w in csr.edges())
        # canonical (u, v) orientation must agree exactly
        assert mine == theirs
        assert csr.edge_set() == g.edge_set()

    def test_neighbors_and_weights(self, pair):
        g, csr = pair
        for v in g.vertices():
            assert set(csr.neighbors(v)) == set(g.neighbors(v))
            for u, w in g.neighbor_items(v):
                assert csr.has_edge(v, u)
                assert csr.weight(v, u) == w
        assert not csr.has_edge("no-such", "vertex")

    def test_weight_aggregates(self, pair):
        g, csr = pair
        assert csr.total_weight() == pytest.approx(g.total_weight())
        assert csr.min_weight() == g.min_weight()
        assert csr.max_weight() == g.max_weight()

    def test_roundtrip(self, pair):
        g, csr = pair
        assert csr.to_weighted() == g

    def test_mirror_is_involution(self, pair):
        _, csr = pair
        mirror = csr.mirror()
        for i in range(csr.n):
            for s in csr.row(i):
                assert csr.indices[mirror[s]] == i
                assert mirror[mirror[s]] == s
                assert csr.weights[mirror[s]] == csr.weights[s]


class TestTraversalParity:
    def test_dijkstra_distances(self, pair):
        g, csr = pair
        src = next(iter(g.vertices()))
        dist_g, parent_g = dijkstra(g, src)
        dist_c, parent_c = dijkstra(csr, src)
        assert dist_g.keys() == dist_c.keys()
        for v, d in dist_g.items():
            assert dist_c[v] == pytest.approx(d)
        # parents may differ on equal-length paths but must be consistent
        for v, p in parent_c.items():
            if p is None:
                assert v == src
            else:
                assert dist_c[v] == pytest.approx(dist_c[p] + g.weight(p, v))

    def test_multi_source_dijkstra(self, pair):
        g, csr = pair
        sources = list(g.vertices())[:3]
        dist_g, _ = dijkstra(g, sources)
        dist_c, _ = dijkstra(csr, sources)
        assert dist_g.keys() == dist_c.keys()
        for v, d in dist_g.items():
            assert dist_c[v] == pytest.approx(d)

    def test_bounded_dijkstra(self, pair):
        g, csr = pair
        src = next(iter(g.vertices()))
        radius = 2.5
        dist_g, _ = bounded_dijkstra(g, src, radius)
        dist_c, _ = bounded_dijkstra(csr, src, radius)
        assert dist_g.keys() == dist_c.keys()
        for v, d in dist_g.items():
            assert dist_c[v] == pytest.approx(d)

    def test_hop_distances_and_diameter(self, pair):
        g, csr = pair
        src = next(iter(g.vertices()))
        assert hop_distances(csr, src) == hop_distances(g, src)
        if g.is_connected():
            assert hop_diameter(csr) == hop_diameter(g)


class TestAlgorithmParity:
    def test_freeze_caches_and_invalidates(self):
        g = erdos_renyi_graph(20, 0.3, seed=9)
        c1 = g.freeze()
        assert g.freeze() is c1
        g.add_edge(0, 19, 123.0) if not g.has_edge(0, 19) else g.remove_edge(0, 19)
        c2 = g.freeze()
        assert c2 is not c1
        assert c2.m != c1.m

    def test_spanner_stretch_from_csr_input(self):
        """baswana_sen_spanner accepts either backend and both results
        satisfy the deterministic (2k-1) stretch guarantee."""
        k = 2
        for name in ("erdos-renyi", "geometric", "grid"):
            g = FAMILIES[name]()
            h_dict = baswana_sen_spanner(g, k, random.Random(11))
            h_csr = baswana_sen_spanner(g.to_csr(), k, random.Random(11))
            assert h_csr == h_dict  # same rng -> identical spanner
            assert max_edge_stretch(g, h_csr) <= 2 * k - 1 + 1e-9

    def test_dijkstra_parity_on_spanner(self):
        g = erdos_renyi_graph(35, 0.2, seed=12)
        h = baswana_sen_spanner(g, 2, random.Random(13))
        src = 0
        d1, _ = dijkstra(h, src)
        d2, _ = dijkstra(h.freeze(), src)
        assert d1 == d2
