"""Tests for the native bounded multi-source Bellman–Ford."""

import pytest

from repro.graphs import WeightedGraph, dijkstra, erdos_renyi_graph, path_graph
from repro.hopsets import hop_bounded_distances
from repro.spt.bounded_bellman_ford import bounded_bellman_ford


class TestAgainstSequentialReference:
    @pytest.mark.parametrize("hops", [1, 3, 6])
    def test_matches_hop_bounded_distances(self, small_er, hops):
        native, _, _ = bounded_bellman_ford(small_er, [0], hops)
        reference, _ = hop_bounded_distances(small_er, 0, hops)
        assert set(native) == set(reference)
        for v, d in reference.items():
            assert native[v] == pytest.approx(d)

    def test_full_hops_matches_dijkstra(self, small_er):
        native, _, _ = bounded_bellman_ford(small_er, [0], small_er.n)
        exact, _ = dijkstra(small_er, 0)
        for v, d in exact.items():
            assert native[v] == pytest.approx(d)

    def test_multi_source_is_min_over_sources(self, medium_er):
        sources = [0, 9, 23]
        native, _, _ = bounded_bellman_ford(medium_er, sources, medium_er.n)
        exact, _ = dijkstra(medium_er, sources)
        for v, d in exact.items():
            assert native[v] == pytest.approx(d)


class TestBudgets:
    def test_hop_budget_limits_reach(self):
        g = path_graph(12)
        dist, _, _ = bounded_bellman_ford(g, [0], hops=4)
        assert set(dist) == {0, 1, 2, 3, 4}

    def test_radius_prunes(self):
        g = path_graph(12)
        dist, _, _ = bounded_bellman_ford(g, [0], hops=12, radius=5.0)
        assert set(dist) == {0, 1, 2, 3, 4, 5}

    def test_rounds_at_most_hops_plus_constant(self):
        g = erdos_renyi_graph(40, 0.15, seed=1)
        _, _, rounds = bounded_bellman_ford(g, [0], hops=5)
        assert rounds <= 5 + 3

    def test_parent_pointers_valid(self, small_er):
        dist, parent, _ = bounded_bellman_ford(small_er, [0, 7], hops=8)
        for v in dist:
            node, total = v, 0.0
            while parent[node] is not None:
                total += small_er.weight(node, parent[node])
                node = parent[node]
            assert node in (0, 7)
            assert total == pytest.approx(dist[v])


class TestValidation:
    def test_bad_hops(self, small_er):
        with pytest.raises(ValueError):
            bounded_bellman_ford(small_er, [0], 0)

    def test_no_sources(self, small_er):
        with pytest.raises(ValueError):
            bounded_bellman_ford(small_er, [], 3)

    def test_disconnected_leaves_unreached(self):
        g = WeightedGraph(range(4))
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        dist, _, _ = bounded_bellman_ford(g, [0], hops=5)
        assert set(dist) == {0, 1}
