"""Load-generator suite: schedules, drivers, and the schema-v6 gate.

The open-loop schedule is the determinism anchor — a pure function of
``(pairs, rate, duration, seed)`` whose JSON encoding is byte-identical
across processes and ``PYTHONHASHSEED`` values.  The drivers run
against a real in-process daemon; the ``load`` block they produce must
round-trip the report schema, gate regressions (qps drops, failure-rate
rises) under ``compare_reports``, and stay silent against pre-v6
baselines that predate the block.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.graphs import erdos_renyi_graph
from repro.harness import (
    ARRIVALS,
    compare_reports,
    load_report,
    make_report,
    write_report,
)
from repro.harness.loadgen import (
    BURSTY_ON_FRACTION,
    bursty_schedule,
    drive_load,
    launch_daemon,
    poisson_schedule,
    request_schedule,
    run_closed_level,
    run_open_level,
    schedule_bytes,
    schedule_digest,
    stop_daemon,
)
from repro.harness.runner import ProfileRecord
from repro.oracle import build_oracle
from repro.serve import Server

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

GRAPH = erdos_renyi_graph(120, 0.07, seed=11)
ORACLE = build_oracle(GRAPH, landmarks=4, seed=2)
PAIRS = [(str(u), str(v)) for u, v in
         [(0, 5), (1, 50), (2, 99), (3, 40), (4, 110), (7, 7), (9, 60)]]


@pytest.fixture(scope="module")
def served():
    server = Server(ORACLE, workers=2, port=0)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------
class TestSchedules:
    def test_poisson_is_sorted_in_window_and_cycles_pairs(self):
        sched = poisson_schedule(PAIRS, rate=200.0, duration=1.0, seed=4)
        assert sched, "200 qps over 1 s must yield arrivals"
        times = [t for t, _, _ in sched]
        assert times == sorted(times)
        assert all(0.0 < t < 1.0 for t in times)
        for i, (_, u, v) in enumerate(sched):
            assert (u, v) == PAIRS[i % len(PAIRS)]

    def test_poisson_rate_is_roughly_honoured(self):
        sched = poisson_schedule(PAIRS, rate=500.0, duration=4.0, seed=0)
        assert 1400 <= len(sched) <= 2600  # 2000 expected, generous band

    def test_poisson_is_a_pure_function_of_the_seed(self):
        a = poisson_schedule(PAIRS, rate=100.0, duration=2.0, seed=7)
        b = poisson_schedule(PAIRS, rate=100.0, duration=2.0, seed=7)
        c = poisson_schedule(PAIRS, rate=100.0, duration=2.0, seed=8)
        assert a == b
        assert a != c

    def test_poisson_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            poisson_schedule(PAIRS, rate=0.0, duration=1.0, seed=0)
        with pytest.raises(ValueError):
            poisson_schedule(PAIRS, rate=10.0, duration=-1.0, seed=0)

    def test_bursty_averages_the_requested_rate(self):
        sched = bursty_schedule(PAIRS, rate=500.0, duration=8.0, seed=3)
        times = [t for t, _, _ in sched]
        assert times == sorted(times)
        assert all(0.0 <= t < 8.0 for t in times)
        # long-run average is rate; on/off burstiness adds variance
        assert 2000 <= len(sched) <= 6000  # 4000 expected

    def test_bursty_is_actually_bursty(self):
        sched = bursty_schedule(PAIRS, rate=200.0, duration=4.0, seed=1)
        gaps = [b - a for a, b in zip(
            (t for t, _, _ in sched), (t for t, _, _ in sched[1:])
        )]
        burst_gap = 1.0 / (200.0 / BURSTY_ON_FRACTION)
        # most gaps are burst-scale, but off phases leave long silences
        assert sum(1 for g in gaps if g < 4 * burst_gap) > len(gaps) * 0.8
        assert max(gaps) > 20 * burst_gap

    def test_request_schedule_dispatch(self):
        for arrivals in ARRIVALS:
            sched = request_schedule(
                PAIRS, arrivals, rate=100.0, duration=1.0, seed=5
            )
            assert sched
        with pytest.raises(ValueError):
            request_schedule(PAIRS, "uniform", rate=100.0, duration=1.0, seed=5)

    def test_schedule_bytes_round_trip_and_digest(self):
        sched = poisson_schedule(PAIRS, rate=50.0, duration=1.0, seed=9)
        blob = schedule_bytes(sched)
        decoded = [(t, u, v) for t, u, v in json.loads(blob)]
        assert decoded == sched
        assert schedule_digest(sched) == hashlib.sha256(blob).hexdigest()

    def test_schedule_bytes_identical_across_hash_seeds(self, tmp_path):
        """The cross-process determinism gate: two interpreters with
        different PYTHONHASHSEED values print the same sha256."""
        script = tmp_path / "digest_probe.py"
        script.write_text(
            "from repro.harness.loadgen import request_schedule, schedule_digest\n"
            f"pairs = {PAIRS!r}\n"
            "for arrivals in ('poisson', 'bursty'):\n"
            "    sched = request_schedule(pairs, arrivals, rate=150.0,"
            " duration=2.0, seed=13)\n"
            "    print(arrivals, schedule_digest(sched))\n"
        )
        outputs = []
        for hash_seed in ("0", "31337"):
            out = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True, text=True, timeout=120,
                env={
                    "PYTHONPATH": str(REPO_SRC),
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                },
            )
            assert out.returncode == 0, out.stderr
            outputs.append(out.stdout)
        assert outputs[0] == outputs[1]
        assert len(outputs[0].splitlines()) == 2


# ---------------------------------------------------------------------------
# drivers against a live daemon
# ---------------------------------------------------------------------------
class TestDrivers:
    def test_closed_level_counts_and_answers(self, served):
        result, answers = run_closed_level(
            served.address, PAIRS, concurrency=2, repeats=3,
            collect_answers=True,
        )
        assert result.mode == "closed"
        assert result.level == 2
        assert result.key() == "c2"
        assert result.requests == len(PAIRS) * 3
        assert result.failures == 0
        assert result.failure_rate == 0.0
        assert result.qps > 0
        assert result.p999_ms >= result.p99_ms >= result.p50_ms > 0
        assert len(answers) == result.requests
        want = {
            (u, v): d
            for (u, v), d in zip(PAIRS, ORACLE.query_many(
                [(int(u), int(v)) for u, v in PAIRS]
            ))
        }
        for u, v, d in answers:
            assert d == pytest.approx(want[(u, v)], abs=1e-9)

    def test_closed_level_partition_covers_every_pair(self, served):
        # concurrency above the pair count still issues every pair once
        result, answers = run_closed_level(
            served.address, PAIRS, concurrency=len(PAIRS) + 3,
            collect_answers=True,
        )
        assert result.requests == len(PAIRS)
        assert sorted((u, v) for u, v, _ in answers) == sorted(PAIRS)

    def test_open_level_replays_a_schedule(self, served):
        sched = poisson_schedule(PAIRS, rate=200.0, duration=1.0, seed=6)
        result = run_open_level(served.address, sched, clients=4)
        assert result.mode == "open"
        assert result.requests == len(sched)
        assert result.failures == 0
        assert result.digest == schedule_digest(sched)
        assert result.offered_rate == pytest.approx(
            len(sched) / sched[-1][0], rel=0.01
        )
        assert result.duration_s >= sched[-1][0] * 0.9

    def test_open_level_rejects_empty_schedule(self, served):
        with pytest.raises(ValueError):
            run_open_level(served.address, [])

    def test_drive_load_closed_block(self, served):
        block = drive_load(
            served.address, PAIRS, "closed", [1, 2], repeats=2, workers=2
        )
        assert block["mode"] == "closed"
        assert block["pairs"] == len(PAIRS)
        assert block["repeats"] == 2
        assert block["workers"] == 2
        keys = [lv["key"] for lv in block["levels"]]
        assert keys == ["c1", "c2"]
        for lv in block["levels"]:
            assert lv["requests"] == len(PAIRS) * 2
            assert lv["failure_rate"] == 0.0

    def test_drive_load_open_block_keys_by_requested_rate(self, served):
        block = drive_load(
            served.address, PAIRS, "open", [100], arrivals="bursty",
            duration=1.0, clients=4, seed=5,
        )
        assert block["mode"] == "open"
        assert block["arrivals"] == "bursty"
        assert block["duration_s"] == 1.0
        (level,) = block["levels"]
        # keyed by the *requested* rate even though the sampled offered
        # rate wobbles with the seed
        assert level["key"] == "r100"
        assert level["schedule_sha256"]

    def test_drive_load_validates_inputs(self, served):
        with pytest.raises(ValueError):
            drive_load(served.address, PAIRS, "pipelined", [1])
        with pytest.raises(ValueError):
            drive_load(served.address, PAIRS, "closed", [])


# ---------------------------------------------------------------------------
# schema v6: round-trip and gating
# ---------------------------------------------------------------------------
def _load_record(load):
    return ProfileRecord(
        profile="slt-er", tier="smoke", family="er", algorithm="slt",
        section="§3", seed=0, params={}, n=GRAPH.n, m=GRAPH.m,
        generation_seconds=0.1, construction_seconds=0.2,
        certification_seconds=0.0, peak_memory_bytes=None, rounds=None,
        metrics={}, ok=True, load=load,
    )


def _level(key="c2", qps=5000.0, failure_rate=0.0, requests=100):
    mode = "closed" if key.startswith("c") else "open"
    return {
        "mode": mode, "level": float(key[1:]), "key": key,
        "requests": requests, "failures": int(failure_rate * requests),
        "failure_rate": failure_rate, "duration_s": requests / qps,
        "p50_ms": 0.4, "p99_ms": 1.5, "p999_ms": 3.0, "qps": qps,
    }


def _report(load):
    return make_report([_load_record(load)], suite="load")


class TestSchemaV6:
    def test_load_block_round_trips(self, served, tmp_path):
        block = drive_load(served.address, PAIRS, "closed", [2], workers=2)
        record = _load_record(block)
        thawed = ProfileRecord.from_dict(record.to_dict())
        assert thawed.load == record.load
        report = make_report([record], suite="load")
        assert report["schema_version"] == 6
        path = tmp_path / "load.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded["records"][0]["load"] == block

    def test_identical_load_blocks_self_compare_clean(self):
        load = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c1"), _level("c2")]}
        comparison = compare_reports(_report(load), _report(load))
        assert comparison.ok
        load_deltas = [d for d in comparison.deltas
                       if d.quantity.startswith("load_")]
        assert {d.quantity for d in load_deltas} >= {
            "load_c1_qps", "load_c2_qps", "load_c1_p99_ms",
            "load_c1_failure_rate", "load_c1_requests",
        }
        assert all(d.status == "ok" for d in load_deltas)

    def test_qps_collapse_is_a_regression(self):
        base = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c2", qps=6000.0)]}
        cand = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c2", qps=2000.0)]}
        comparison = compare_reports(_report(base), _report(cand))
        assert not comparison.ok
        (delta,) = [d for d in comparison.deltas
                    if d.quantity == "load_c2_qps"]
        assert delta.status == "regression"
        # qps gates on *drops*: the improvement direction never fails
        assert compare_reports(_report(cand), _report(base)).ok

    def test_failure_rate_rise_gates_but_the_floor_absorbs_noise(self):
        base = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c2", failure_rate=0.0)]}
        noisy = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                 "levels": [_level("c2", failure_rate=0.005)]}
        broken = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                  "levels": [_level("c2", failure_rate=0.05)]}
        assert compare_reports(_report(base), _report(noisy)).ok
        comparison = compare_reports(_report(base), _report(broken))
        assert not comparison.ok
        (delta,) = [d for d in comparison.deltas
                    if d.quantity == "load_c2_failure_rate"]
        assert delta.status == "regression"

    def test_pre_v6_baseline_never_gates_on_load(self, tmp_path):
        """A v5 report (no ``load`` key at all) compares cleanly against
        a current report that has one — absent, not regressed."""
        current = _report({"mode": "closed", "pairs": 7, "seed": 0,
                           "repeats": 1, "levels": [_level("c2")]})
        v5 = make_report([_load_record(None)], suite="load")
        v5["schema_version"] = 5
        for rec in v5["records"]:
            rec.pop("load", None)
        path = tmp_path / "v5.json"
        write_report(v5, path)
        baseline = load_report(path)
        assert baseline["records"][0].get("load") is None
        comparison = compare_reports(baseline, current)
        assert comparison.ok
        absent = [d for d in comparison.deltas if d.status == "absent"]
        assert {d.quantity for d in absent} >= {
            "load_c2_qps", "load_c2_failure_rate", "load_c2_p99_ms",
        }

    def test_disjoint_level_sets_compare_as_absent(self):
        base = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c1")]}
        cand = {"mode": "closed", "pairs": 7, "seed": 0, "repeats": 1,
                "levels": [_level("c4")]}
        comparison = compare_reports(_report(base), _report(cand))
        assert comparison.ok
        statuses = {d.quantity: d.status for d in comparison.deltas
                    if d.quantity.startswith("load_")}
        assert statuses["load_c1_qps"] == "absent"
        assert statuses["load_c4_qps"] == "absent"


# ---------------------------------------------------------------------------
# daemon launch/stop round trip (the CI smoke path, in miniature)
# ---------------------------------------------------------------------------
class TestDaemonLifecycle:
    def test_launch_query_stop(self):
        proc, address = launch_daemon(
            ["--profile", "slt-er", "--tier", "smoke",
             "--workers", "1", "--port", "0"],
        )
        try:
            result, answers = run_closed_level(
                address,
                [("0", "1"), ("0", "2")],
                concurrency=1,
                collect_answers=True,
            )
            assert result.failures == 0
            assert len(answers) == 2
        finally:
            rc = stop_daemon(proc)
        assert rc == 0
