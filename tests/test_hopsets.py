"""Tests for the skeleton and path-reporting hopset ([EN16] stand-in)."""

import random

import pytest

from repro.graphs import dijkstra, path_graph
from repro.graphs.shortest_paths import path_weight
from repro.hopsets import (
    build_hopset,
    build_skeleton,
    bounded_exploration_cost,
    en16_round_cost,
    hop_bounded_distances,
)


class TestHopBoundedDistances:
    def test_respects_hop_budget(self):
        g = path_graph(10)
        dist, _ = hop_bounded_distances(g, 0, hops=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_matches_dijkstra_with_enough_hops(self, small_er):
        bounded, _ = hop_bounded_distances(small_er, 0, hops=small_er.n)
        exact, _ = dijkstra(small_er, 0)
        for v, d in exact.items():
            assert bounded[v] == pytest.approx(d)

    def test_finds_light_path_within_budget(self):
        # direct heavy edge vs a 2-hop light detour: budget decides
        from repro.graphs import WeightedGraph

        g = WeightedGraph()
        g.add_edge(0, 2, 10.0)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        d1, _ = hop_bounded_distances(g, 0, hops=1)
        d2, _ = hop_bounded_distances(g, 0, hops=2)
        assert d1[2] == 10.0
        assert d2[2] == 2.0

    def test_parent_pointers_give_valid_path(self, small_er):
        dist, parent = hop_bounded_distances(small_er, 0, hops=6)
        for v in dist:
            node, hops = v, 0
            while parent[node] is not None:
                assert small_er.has_edge(node, parent[node])
                node = parent[node]
                hops += 1
            assert node == 0
            assert hops <= 6


class TestSkeleton:
    def test_roots_always_included(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(0), roots=[0, 7])
        assert 0 in skel.vertices and 7 in skel.vertices

    def test_size_about_sqrt_n_log_n(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(1))
        import math

        target = math.ceil(math.sqrt(medium_er.n * math.log(medium_er.n + 1)))
        assert len(skel.vertices) == target

    def test_edges_are_at_least_true_distance(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(2))
        for (u, v), w in skel.edges.items():
            exact, _ = dijkstra(medium_er, u)
            assert w >= exact[v] - 1e-9

    def test_witness_paths_have_edge_weight(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(3))
        for (u, v), w in skel.edges.items():
            p = skel.path(u, v)
            assert p[0] == u and p[-1] == v
            assert path_weight(medium_er, p) == pytest.approx(w)
            assert len(p) - 1 <= skel.hops

    def test_path_orientation(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(4))
        (u, v) = next(iter(skel.edges))
        assert skel.path(u, v) == list(reversed(skel.path(v, u)))

    def test_as_graph(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(5))
        g = skel.as_graph()
        assert set(g.vertices()) == skel.vertices
        assert g.m == len(skel.edges)

    def test_small_graph_takes_everyone(self):
        g = path_graph(4)
        skel = build_skeleton(g, random.Random(0), size=10)
        assert skel.vertices == set(g.vertices())


class TestHopset:
    def test_hopset_edges_exact_skeleton_distances(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(0))
        hop = build_hopset(skel, random.Random(1))
        skel_graph = skel.as_graph()
        for (u, v), w in hop.edges.items():
            exact, _ = dijkstra(skel_graph, u)
            assert w == pytest.approx(exact[v])

    def test_hopset_never_shortens_g_distances(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(0))
        hop = build_hopset(skel, random.Random(1))
        for (u, v), w in hop.edges.items():
            exact, _ = dijkstra(medium_er, u)
            assert w >= exact[v] - 1e-9

    def test_witness_paths_valid_in_g(self, medium_er):
        skel = build_skeleton(medium_er, random.Random(2))
        hop = build_hopset(skel, random.Random(3))
        for (u, v), w in hop.edges.items():
            p = hop.path(u, v)
            assert p[0] == u and p[-1] == v
            assert path_weight(medium_er, p) == pytest.approx(w)

    def test_hopbound_property(self, medium_er):
        """d^{(β)}_{G'∪F} equals d_{G'} for pivot-reachable pairs."""
        skel = build_skeleton(medium_er, random.Random(4))
        hop = build_hopset(skel, random.Random(5))
        skel_graph = skel.as_graph()
        pivots = sorted(hop.pivots, key=repr)[:3]
        for u in pivots:
            exact, _ = dijkstra(skel_graph, u)
            for v in sorted(skel.vertices, key=repr)[:5]:
                if v == u or v not in exact:
                    continue
                assert hop.hop_bounded_distance(u, v) <= exact[v] * (1 + 1e-9)

    def test_round_cost_formulas(self):
        assert en16_round_cost(100, 5, 4) == (10 + 5) * 16  # isqrt(99)+1 = 10
        assert bounded_exploration_cost(100, 5, 2, overlap=3, skeleton_size=20) > 0
        # overlap multiplies the cost
        a = bounded_exploration_cost(100, 5, 2, 1, 20)
        b = bounded_exploration_cost(100, 5, 2, 4, 20)
        assert b == 4 * a
