"""Tests for the measurement/validation package itself."""

import pytest

from repro.analysis import (
    average_stretch,
    lightness,
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
    sparsity,
    verify_net,
    verify_slt,
    verify_spanner,
    verify_spanning_tree,
    verify_subgraph,
)
from repro.analysis.validation import ValidationError
from repro.graphs import WeightedGraph, cycle_graph, path_graph
from repro.mst.kruskal import kruskal_mst


@pytest.fixture
def square():
    """4-cycle with one heavy chord removed from the spanner."""
    g = cycle_graph(4, weight=1.0)
    return g


class TestStretchMeasures:
    def test_identity_spanner_has_stretch_one(self, small_er):
        assert max_edge_stretch(small_er, small_er) == 1.0
        assert max_pairwise_stretch(small_er, small_er) == 1.0

    def test_edge_stretch_after_removal(self, square):
        h = square.copy()
        h.remove_edge(0, 1)
        assert max_edge_stretch(square, h) == pytest.approx(3.0)

    def test_pairwise_bounded_by_edge_stretch(self, small_er):
        h = kruskal_mst(small_er)
        assert max_pairwise_stretch(small_er, h) <= max_edge_stretch(small_er, h) + 1e-9

    def test_average_at_most_max(self, small_er):
        h = kruskal_mst(small_er)
        assert average_stretch(small_er, h) <= max_pairwise_stretch(small_er, h) + 1e-9

    def test_disconnected_spanner_infinite(self, square):
        # the pinned contract (see repro.analysis.stretch): all three
        # measures return inf when the spanner disconnects a G-reachable
        # pair — average_stretch included, not silently skipping the pair
        h = WeightedGraph(square.vertices())
        assert max_edge_stretch(square, h) == float("inf")
        assert max_pairwise_stretch(square, h) == float("inf")
        assert average_stretch(square, h) == float("inf")

    def test_root_stretch(self):
        g = path_graph(3, [1.0, 1.0])
        g.add_edge(0, 2, 1.5)
        t = path_graph(3, [1.0, 1.0])  # tree misses the shortcut
        assert root_stretch(g, t, 0) == pytest.approx(2.0 / 1.5)


class TestWeightMeasures:
    def test_mst_lightness_is_one(self, small_er):
        assert lightness(small_er, kruskal_mst(small_er)) == pytest.approx(1.0)

    def test_whole_graph_lightness_at_least_one(self, small_er):
        assert lightness(small_er, small_er) >= 1.0

    def test_explicit_mst_reused(self, small_er):
        mst = kruskal_mst(small_er)
        assert lightness(small_er, mst, mst=mst) == pytest.approx(1.0)

    def test_sparsity(self, small_er):
        assert sparsity(small_er) == small_er.m


class TestVerifiers:
    def test_subgraph_rejects_foreign_edge(self, square):
        h = WeightedGraph()
        h.add_edge(0, 2, 1.0)  # chord not in the cycle
        with pytest.raises(ValidationError):
            verify_subgraph(square, h)

    def test_subgraph_rejects_wrong_weight(self, square):
        h = WeightedGraph()
        h.add_edge(0, 1, 2.0)
        with pytest.raises(ValidationError):
            verify_subgraph(square, h)

    def test_spanning_tree_rejects_cycle(self, square):
        with pytest.raises(ValidationError):
            verify_spanning_tree(square, square)

    def test_spanning_tree_rejects_partial_span(self, square):
        h = square.edge_subgraph([(0, 1)], include_all_vertices=False)
        with pytest.raises(ValidationError):
            verify_spanning_tree(square, h)

    def test_spanner_rejects_stretch_violation(self, square):
        h = square.copy()
        h.remove_edge(0, 1)
        with pytest.raises(ValidationError):
            verify_spanner(square, h, 2.0)
        verify_spanner(square, h, 3.0)  # exactly 3 is fine

    def test_slt_rejects_heavy_tree(self):
        g = cycle_graph(4, weight=1.0)
        g.add_edge(0, 2, 10.0)
        heavy = WeightedGraph(g.vertices())
        heavy.add_edge(0, 1, 1.0)
        heavy.add_edge(0, 2, 10.0)
        heavy.add_edge(2, 3, 1.0)
        with pytest.raises(ValidationError):
            verify_slt(g, heavy, 0, alpha=10.0, beta=1.5)

    def test_net_rejects_coverage_gap(self, square):
        with pytest.raises(ValidationError):
            verify_net(square, {0}, alpha=1.0, beta=0.5)  # vertex 2 at dist 2

    def test_net_rejects_separation_violation(self, square):
        with pytest.raises(ValidationError):
            verify_net(square, {0, 1}, alpha=2.0, beta=1.5)

    def test_net_rejects_empty(self, square):
        with pytest.raises(ValidationError):
            verify_net(square, set(), alpha=5.0, beta=1.0)

    def test_net_rejects_foreign_point(self, square):
        with pytest.raises(ValidationError):
            verify_net(square, {99}, alpha=5.0, beta=1.0)

    def test_accepts_valid_net(self, square):
        verify_net(square, {0, 2}, alpha=1.0, beta=1.5)
