"""Tests for §8: the MST-weight estimator via nets and the round floor."""

import math
import random

import pytest

from repro.core import congest_round_floor, estimate_mst_weight_via_nets
from repro.graphs import (
    das_sarma_hard_graph,
    erdos_renyi_graph,
    hop_diameter,
    random_geometric_graph,
)
from repro.mst.kruskal import kruskal_mst


class TestTheorem7Reduction:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sandwich_greedy_oracle(self, seed):
        g = erdos_renyi_graph(40, 0.2, seed=seed)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        assert est.psi >= est.mst_weight - 1e-6
        bound = 16 * est.alpha * max(1.0, math.log2(g.n)) * est.mst_weight
        assert est.psi <= bound

    def test_sandwich_distributed_oracle(self):
        g = erdos_renyi_graph(25, 0.25, seed=2)
        est = estimate_mst_weight_via_nets(
            g, net_method="distributed", rng=random.Random(2)
        )
        assert est.psi >= est.mst_weight - 1e-6
        bound = 16 * est.alpha * max(1.0, math.log2(g.n)) * est.mst_weight
        assert est.psi <= bound

    def test_first_net_is_everything_last_is_singleton(self):
        g = erdos_renyi_graph(30, 0.2, seed=3)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        scales = sorted(est.net_sizes)
        assert est.net_sizes[scales[0]] == g.n
        assert est.net_sizes[scales[-1]] == 1

    def test_net_sizes_weakly_decreasing(self):
        g = random_geometric_graph(30, seed=4)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        sizes = [est.net_sizes[i] for i in sorted(est.net_sizes)]
        assert sizes == sorted(sizes, reverse=True)

    def test_claim7_on_every_scale(self):
        """n_i <= ⌈2L/2^i⌉ — each net is 2^i-separated."""
        g = erdos_renyi_graph(30, 0.25, seed=5)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        for i, n_i in est.net_sizes.items():
            assert n_i <= math.ceil(2 * est.mst_weight / 2.0 ** i)

    def test_scale_count_logarithmic(self):
        g = erdos_renyi_graph(30, 0.25, seed=6)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        assert len(est.net_sizes) <= 4 * math.log2(g.n * g.max_weight() + 4) + 8

    def test_on_hard_family(self):
        g, mst_w = das_sarma_hard_graph(100, planted_weight=50.0, seed=7)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        assert est.mst_weight == pytest.approx(mst_w)
        assert est.psi >= mst_w - 1e-6
        assert est.psi <= 16 * est.alpha * math.log2(g.n) * mst_w

    def test_estimator_separates_planted_weights(self):
        """The reduction's point: Ψ distinguishes light from heavy planted
        instances (up to the O(α log n) gap)."""
        light_g, light_w = das_sarma_hard_graph(80, planted_weight=1.0, seed=8)
        heavy_g, heavy_w = das_sarma_hard_graph(80, planted_weight=10_000.0, seed=8)
        light_est = estimate_mst_weight_via_nets(light_g, net_method="greedy")
        heavy_est = estimate_mst_weight_via_nets(heavy_g, net_method="greedy")
        assert heavy_est.psi > 5 * light_est.psi

    def test_single_vertex_graph(self):
        from repro.graphs import WeightedGraph

        est = estimate_mst_weight_via_nets(WeightedGraph([0]), net_method="greedy")
        assert est.psi == 0.0


class TestHardFamily:
    def test_shape(self):
        g, mst_w = das_sarma_hard_graph(100, seed=0)
        assert g.is_connected()
        assert g.n >= 100

    def test_mst_weight_certificate(self):
        g, mst_w = das_sarma_hard_graph(120, planted_weight=7.0, seed=1)
        assert kruskal_mst(g).total_weight() == pytest.approx(mst_w)

    def test_highways_shrink_hop_diameter(self):
        g, _ = das_sarma_hard_graph(150, seed=2)
        p = math.isqrt(150)
        # heads are O(log p) hops apart; spikes add ~p: D = O(sqrt(n))
        assert hop_diameter(g) <= 2 * p + 2 * math.ceil(math.log2(p)) + 4

    def test_planted_weight_changes_mst_only_linearly_in_sqrt_n(self):
        g1, w1 = das_sarma_hard_graph(100, planted_weight=1.0, seed=3)
        g2, w2 = das_sarma_hard_graph(100, planted_weight=101.0, seed=3)
        p = math.isqrt(100)
        assert w2 - w1 == pytest.approx((p - 1 - p // 2) * 100.0)


class TestRoundFloor:
    def test_floor_grows_with_sqrt_n(self):
        assert congest_round_floor(10_000, 0) > congest_round_floor(100, 0)

    def test_floor_includes_diameter(self):
        assert congest_round_floor(100, 50) >= 50

    def test_trivial_graph(self):
        assert congest_round_floor(1, 3) == 3.0

    def test_charged_rounds_respect_floor(self):
        """Our charged costs must sit above the Ω̃(√n + D) floor — they
        claim to be implementations of algorithms subject to it."""
        from repro.core import build_net

        g = erdos_renyi_graph(50, 0.2, seed=9)
        res = build_net(g, 30.0, 0.5, random.Random(9))
        assert res.rounds >= congest_round_floor(g.n, hop_diameter(g))
