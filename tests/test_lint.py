"""Tests for the ``repro.lint`` static analyzer.

Each rule family gets one clean fixture and at least two violating
fixtures asserting the *exact* code and line number — the diagnostics
are CI gates, so their anchoring must not drift.  Fixture sources are
written to ``tmp_path`` (under a fake ``src/repro/...`` root when a
rule is package-scoped) and linted through the real engine entry
points.
"""
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import all_codes, lint_file, lint_paths, rule_catalog
from repro.lint.rules.typing_gate import STRICT_MODULES

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _codes(diagnostics):
    """(line, code) pairs, sorted — the shape every fixture asserts."""
    return sorted((d.line, d.code) for d in diagnostics)


def lint_source(tmp_path, rel, source):
    return lint_file(_write(tmp_path, rel, source))


# ---------------------------------------------------------------------------
# REP1xx — RNG discipline
# ---------------------------------------------------------------------------
class TestRngDiscipline:
    def test_good_threaded_rng(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random


            def draw(rng: random.Random) -> float:
                return rng.random()
        """)
        assert diags == []

    def test_global_draw_is_rep101(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random

            x = random.random()
            y = random.randint(0, 3)
        """)
        assert _codes(diags) == [(3, "REP101"), (4, "REP101")]

    def test_from_import_of_draw_is_rep101(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from random import shuffle
        """)
        assert _codes(diags) == [(1, "REP101")]

    def test_unseeded_generator_is_rep102(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random

            rng = random.Random()
        """)
        assert _codes(diags) == [(3, "REP102")]

    def test_parameter_free_seed_is_rep103_in_package(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/core/fixture.py", """\
            import random


            def build():
                rng = random.Random(12345)
                return rng.random()
        """)
        assert _codes(diags) == [(5, "REP103")]

    def test_rep103_quiet_when_seed_flows_from_parameter(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/core/fixture.py", """\
            import random


            def build(seed):
                rng = random.Random(seed)
                return rng.random()
        """)
        assert diags == []

    def test_rep103_not_applied_outside_package(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random


            def build():
                return random.Random(7).random()
        """)
        assert diags == []


# ---------------------------------------------------------------------------
# REP2xx — iteration order
# ---------------------------------------------------------------------------
class TestIterationOrder:
    def test_good_sorted_and_folds(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            s = {3, 1, 2}
            for x in sorted(s):
                print(x)
            total = sum(s)
            flags = any(x > 1 for x in s)
        """)
        assert diags == []

    def test_for_over_set_is_rep201(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            s = {3, 1, 2}
            for x in s:
                print(x)
        """)
        assert _codes(diags) == [(2, "REP201")]

    def test_list_of_set_call_is_rep201(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            items = list(set([3, 1, 2]))
        """)
        assert _codes(diags) == [(1, "REP201")]

    def test_ordered_comprehension_over_set_is_rep201(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            out = [x + 1 for x in {3, 1, 2}]
        """)
        assert _codes(diags) == [(1, "REP201")]

    def test_unsorted_listing_is_rep202(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import os

            names = os.listdir(".")
        """)
        assert _codes(diags) == [(3, "REP202")]

    def test_globbing_without_sort_is_rep202(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from pathlib import Path

            files = list(Path(".").glob("*.py"))
        """)
        assert _codes(diags) == [(3, "REP202")]

    def test_sorted_listing_is_clean(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import os
            from pathlib import Path

            names = sorted(os.listdir("."))
            files = sorted(p for p in Path(".").glob("*.py"))
        """)
        assert diags == []


# ---------------------------------------------------------------------------
# REP3xx — CSR freeze discipline
# ---------------------------------------------------------------------------
class TestCsrFreeze:
    def test_good_read_only_access(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.graphs.csr import CSRGraph


            def degree(g: CSRGraph, i: int) -> int:
                return g.indptr[i + 1] - g.indptr[i]
        """)
        assert diags == []

    def test_writing_frozen_array_is_rep301(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.graphs.csr import CSRGraph


            def corrupt(g: CSRGraph) -> None:
                g.weights[0] = 0.0
        """)
        assert _codes(diags) == [(5, "REP301")]

    def test_writing_freeze_result_is_rep301(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            def corrupt(graph) -> None:
                h = graph.freeze()
                h.indptr[0] = 1
        """)
        assert _codes(diags) == [(3, "REP301")]

    def test_mutator_method_is_rep302(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.graphs.csr import CSRGraph


            def corrupt(g: CSRGraph) -> None:
                g.indices.sort()
        """)
        assert _codes(diags) == [(5, "REP302")]


# ---------------------------------------------------------------------------
# REP4xx — CONGEST activity contract
# ---------------------------------------------------------------------------
class TestCongestContract:
    def test_good_program(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.congest.algorithm import CongestAlgorithm


            class Flood(CongestAlgorithm):
                def step(self, node, rnd):
                    for u in node.neighbors():
                        node.send(u, "hi")
        """)
        assert diags == []

    def test_private_view_access_is_rep401(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.congest.algorithm import CongestAlgorithm


            class Cheat(CongestAlgorithm):
                def step(self, node, rnd):
                    node._network.deliver_now()
        """)
        assert _codes(diags) == [(6, "REP401")]

    def test_wake_under_always_active_is_rep402(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.congest.algorithm import CongestAlgorithm


            class Poller(CongestAlgorithm):
                always_active = True

                def step(self, node, rnd):
                    node.request_wake()
        """)
        assert _codes(diags) == [(8, "REP402")]

    def test_handbuilt_view_is_rep403(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from repro.congest.algorithm import NodeView

            view = NodeView(0, {})
        """)
        assert _codes(diags) == [(3, "REP403")]


# ---------------------------------------------------------------------------
# REP5xx — pool-boundary safety
# ---------------------------------------------------------------------------
class TestPoolBoundary:
    def test_good_module_level_worker(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from multiprocessing import Pool


            def work(x: int) -> int:
                return x * 2


            def run() -> None:
                with Pool(2) as pool:
                    pool.map(work, [1, 2, 3])
        """)
        assert diags == []

    def test_lambda_shipped_is_rep501(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from multiprocessing import Pool


            def run() -> None:
                with Pool(2) as pool:
                    pool.map(lambda x: x * 2, [1, 2, 3])
        """)
        assert _codes(diags) == [(6, "REP501")]

    def test_nested_function_shipped_is_rep502(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            from multiprocessing import Pool


            def run() -> None:
                def work(x):
                    return x * 2

                with Pool(2) as pool:
                    pool.map(work, [1, 2, 3])
        """)
        assert _codes(diags) == [(9, "REP502")]

    def test_computed_initializer_is_rep503(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import functools
            from multiprocessing import Pool


            def init(flag):
                pass


            def run() -> None:
                with Pool(2, initializer=functools.partial(init, True)) as pool:
                    pass
        """)
        assert _codes(diags) == [(10, "REP503")]


# ---------------------------------------------------------------------------
# REP6xx — strict-typing gate
# ---------------------------------------------------------------------------
class TestTypingGate:
    def test_good_fully_annotated(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/graphs/fixture.py", """\
            class Box:
                def __init__(self, value: int) -> None:
                    self.value = value

                def doubled(self) -> int:
                    return self.value * 2
        """)
        assert diags == []

    def test_missing_param_annotation_is_rep601(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/graphs/fixture.py", """\
            def scale(x, factor: float) -> float:
                return x * factor
        """)
        assert _codes(diags) == [(1, "REP601")]

    def test_missing_return_annotation_is_rep601(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/graphs/fixture.py", """\
            def shout(word: str):
                return word.upper()
        """)
        assert _codes(diags) == [(1, "REP601")]

    def test_gate_not_applied_outside_strict_modules(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/core/fixture.py", """\
            def scale(x, factor):
                return x * factor
        """)
        assert diags == []

    def test_strict_modules_match_pyproject_allowlist(self):
        """The REP601 frontier and mypy's allowlist must be complements."""
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        for module in STRICT_MODULES:
            assert (
                f'"{module}' not in pyproject.split("[tool.mypy]", 1)[1]
                .split("ignore_errors", 1)[0]
            ), f"strict module {module} appears in the mypy allowlist"


# ---------------------------------------------------------------------------
# REP7xx — output discipline
# ---------------------------------------------------------------------------
class TestPrintDiscipline:
    def test_print_in_library_code_is_rep701(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/oracle/fixture.py", """\
            def serve(x: int) -> int:
                print("serving", x)
                return x
        """)
        assert _codes(diags) == [(2, "REP701")]

    def test_nested_print_is_rep701(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/obs/fixture.py", """\
            def report(rows: list) -> None:
                for row in rows:
                    print(row)
        """)
        assert _codes(diags) == [(3, "REP701")]

    def test_cli_and_main_may_print(self, tmp_path):
        for rel in ("src/repro/cli.py", "src/repro/__main__.py"):
            diags = lint_source(tmp_path, rel, """\
                print("user-facing output")
            """)
            assert diags == [], rel

    def test_not_applied_outside_package(self, tmp_path):
        diags = lint_source(tmp_path, "examples/demo.py", """\
            print("scripts may print")
        """)
        assert diags == []

    def test_method_named_print_not_flagged(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/graphs/fixture.py", """\
            class Report:
                def emit(self, sink: object) -> None:
                    sink.print(self)
        """)
        assert diags == []


# ---------------------------------------------------------------------------
# REP8xx — numpy isolation
# ---------------------------------------------------------------------------
class TestNumpyIsolation:
    def test_numpy_import_outside_kernels_is_rep801(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/analysis/fixture.py", """\
            import numpy
            import numpy as np
            import numpy.linalg
            from numpy import array
        """)
        assert _codes(diags) == [
            (1, "REP801"), (2, "REP801"), (3, "REP801"), (4, "REP801"),
        ]

    def test_lazy_function_level_import_still_flagged(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/oracle/fixture.py", """\
            def fast_path(x: int) -> int:
                import numpy as np

                return int(np.int64(x))
        """)
        assert _codes(diags) == [(2, "REP801")]

    def test_kernels_package_may_import_numpy(self, tmp_path):
        for rel in ("src/repro/kernels/fixture.py",
                    "src/repro/kernels/sub/fixture.py"):
            diags = lint_source(tmp_path, rel, """\
                import numpy as np
                from numpy import float64
            """)
            assert diags == [], rel

    def test_not_applied_outside_package(self, tmp_path):
        diags = lint_source(tmp_path, "benchmarks/fixture.py", """\
            import numpy
        """)
        assert diags == []

    def test_similar_names_not_flagged(self, tmp_path):
        diags = lint_source(tmp_path, "src/repro/graphs/fixture.py", """\
            import numpy_financial
            from numpystubs import thing
        """)
        assert diags == []


# ---------------------------------------------------------------------------
# Engine: suppressions, parse errors, self-check
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_justified_suppression_silences_finding(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random

            x = random.random()  # repro: allow[REP101] -- fixture exercising waivers
        """)
        assert diags == []

    def test_multi_code_suppression(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            import random

            x = list(set(str(random.random())))  # repro: allow[REP101, REP201] -- fixture
        """)
        assert diags == []

    def test_unjustified_suppression_is_rep001_and_suppresses_nothing(
        self, tmp_path
    ):
        diags = lint_source(tmp_path, "script.py", """\
            import random

            x = random.random()  # repro: allow[REP101]
        """)
        assert _codes(diags) == [(3, "REP001"), (3, "REP101")]

    def test_malformed_marker_is_rep001(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            x = 1  # repro: allow REP101 -- forgot the brackets
        """)
        assert _codes(diags) == [(1, "REP001")]

    def test_unknown_code_is_rep002(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            x = 1  # repro: allow[REP999] -- typo in the code
        """)
        assert (1, "REP002") in _codes(diags)

    def test_stale_suppression_is_rep003(self, tmp_path):
        diags = lint_source(tmp_path, "script.py", """\
            x = 1  # repro: allow[REP101] -- nothing to suppress here
        """)
        assert _codes(diags) == [(1, "REP003")]

    def test_string_literal_is_not_a_waiver(self, tmp_path):
        """tokenize-based parsing: suppression-shaped *strings* (like the
        ones in this very test file) are neither waivers nor findings."""
        diags = lint_source(tmp_path, "script.py", '''\
            import random

            doc = "# repro: allow[REP101] -- inside a string, not a comment"
            x = random.random()
        ''')
        assert _codes(diags) == [(4, "REP101")]


class TestEngine:
    def test_syntax_error_is_rep000(self, tmp_path):
        diags = lint_source(tmp_path, "broken.py", """\
            def f(:
        """)
        assert [d.code for d in diags] == ["REP000"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([Path("no/such/tree")])

    def test_undecodable_bytes_are_rep000_not_a_traceback(self, tmp_path):
        path = tmp_path / "latin.py"
        path.write_bytes(b"# caf\xe9\nx = 1\n")  # 0xE9 is not valid UTF-8
        diags = lint_file(path)
        assert [d.code for d in diags] == ["REP000"]
        assert "UTF-8" in diags[0].message

    def test_nul_bytes_are_rep000_not_a_traceback(self, tmp_path):
        path = tmp_path / "nul.py"
        path.write_bytes(b"x = 1\x00\n")  # decodes fine, ast.parse raises
        diags = lint_file(path)
        assert [d.code for d in diags] == ["REP000"]

    def test_broken_file_does_not_poison_the_rest_of_the_run(self, tmp_path):
        (tmp_path / "bad.py").write_bytes(b"\xff\xfe garbage")
        _write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        diags = lint_paths([tmp_path])
        assert sorted(d.code for d in diags) == ["REP000", "REP101"]

    def test_catalog_covers_every_family(self):
        catalog = rule_catalog()
        families = {code[:4] for code in all_codes()}
        # engine codes (REP0xx) + per-file rule families + the
        # whole-program families (REP9xx import graph, REP10xx dataflow)
        assert {
            "REP0", "REP1", "REP2", "REP3", "REP4", "REP5", "REP6", "REP7",
            "REP9",
        } <= families
        assert {"REP1001", "REP1002", "REP1011", "REP1012", "REP1013"} <= set(
            catalog
        )
        assert set(catalog) == set(all_codes())

    def test_repo_src_and_tests_lint_clean(self):
        """The tree gates on itself: repro lint src/ tests/ must be clean."""
        diags = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert diags == [], "\n".join(d.render() for d in diags)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "clean.py", "x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0

    def test_exit_one_with_findings_and_renders_location(self, tmp_path, capsys):
        path = _write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        rc = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert f"{path}:2:" in out
        assert "REP101" in out
        assert "1 finding(s)" in out

    def test_exit_two_on_missing_path(self, capsys):
        assert main(["lint", "no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        rc = main(["lint", "--format", "json", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        payload = json.loads(out)
        assert payload[0]["code"] == "REP101"
        assert payload[0]["line"] == 2

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out

    def test_unparseable_file_exits_one_without_traceback(
        self, tmp_path, capsys
    ):
        (tmp_path / "bad.py").write_bytes(b"\xff\xfe not python")
        rc = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP000" in out
        assert "Traceback" not in out

    def test_sarif_format(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "import random\nx = random.random()\n")
        rc = main(["lint", "--format", "sarif", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert set(all_codes()) <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "REP101"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] == 5  # SARIF columns are 1-based

    def test_sarif_clean_tree_has_empty_results(self, tmp_path, capsys):
        _write(tmp_path, "clean.py", "x = 1\n")
        rc = main(["lint", "--format", "sarif", str(tmp_path)])
        log = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert log["runs"][0]["results"] == []
