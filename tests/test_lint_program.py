"""Whole-program analyzer tests (``repro lint --program``).

Fixture trees are written under ``tmp_path/src/repro/...`` so module
names resolve exactly as in the real repo; every fixture is annotated
and per-file-clean on purpose, so the asserted findings isolate the
program passes (layering REP9xx, seed-taint REP1001/REP1002,
pool-safety REP1011–REP1013), the suppression lifecycle across runs
with and without ``--program``, the content-hash cache, and the
contract/DESIGN.md sync.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import lint_paths
from repro.lint.cache import AnalysisCache
from repro.lint.program import LAYERS, allowed_import, render_contract
from repro.lint.program.contract import EXTERNAL_CONTRACT

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _codes(tmp_path, *, program=True):
    """Sorted (relative path, line, code) triples for the fixture tree."""
    diags = lint_paths([tmp_path], program=program)
    return sorted(
        (str(Path(d.path).relative_to(tmp_path)), d.line, d.code)
        for d in diags
    )


# ---------------------------------------------------------------------------
# REP901–REP904 — import graph vs the declared layering contract
# ---------------------------------------------------------------------------
class TestLayering:
    def test_upward_import_is_rep901(self, tmp_path):
        _write(tmp_path, "src/repro/harness/util.py", """\
            def helper() -> int:
                return 1
        """)
        _write(tmp_path, "src/repro/obs/bad.py", """\
            from repro.harness.util import helper


            def use() -> int:
                return helper()
        """)
        assert ("src/repro/obs/bad.py", 1, "REP901") in _codes(tmp_path)

    def test_downward_and_same_layer_imports_are_clean(self, tmp_path):
        _write(tmp_path, "src/repro/determinism.py", """\
            def seed_of() -> int:
                return 0
        """)
        _write(tmp_path, "src/repro/graphs/a.py", """\
            from repro.determinism import seed_of
            from repro.kernels.k import fast


            def go() -> int:
                return seed_of() + fast()
        """)
        _write(tmp_path, "src/repro/kernels/k.py", """\
            def fast() -> int:
                return 2
        """)
        assert _codes(tmp_path) == []

    def test_lazy_upward_import_is_still_rep901(self, tmp_path):
        _write(tmp_path, "src/repro/harness/util.py", """\
            def helper() -> int:
                return 1
        """)
        _write(tmp_path, "src/repro/graphs/sneaky.py", """\
            def use() -> int:
                from repro.harness.util import helper

                return helper()
        """)
        assert ("src/repro/graphs/sneaky.py", 2, "REP901") in _codes(tmp_path)

    def test_top_level_cycle_is_rep902_on_both_edges(self, tmp_path):
        _write(tmp_path, "src/repro/mst/a.py", """\
            from repro.mst.b import g


            def f() -> int:
                return g() + 1
        """)
        _write(tmp_path, "src/repro/mst/b.py", """\
            from repro.mst.a import f


            def g() -> int:
                return 0
        """)
        codes = _codes(tmp_path)
        assert ("src/repro/mst/a.py", 1, "REP902") in codes
        assert ("src/repro/mst/b.py", 1, "REP902") in codes

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        _write(tmp_path, "src/repro/mst/a.py", """\
            from repro.mst.b import g


            def f() -> int:
                return g() + 1
        """)
        _write(tmp_path, "src/repro/mst/b.py", """\
            def g() -> int:
                from repro.mst.a import f

                return 0
        """)
        assert [c for c in _codes(tmp_path) if c[2] == "REP902"] == []

    def test_contracted_external_outside_its_packages_is_rep903(
        self, tmp_path
    ):
        _write(tmp_path, "src/repro/core/interop.py", """\
            import networkx


            def use() -> int:
                return networkx.Graph()
        """)
        assert ("src/repro/core/interop.py", 1, "REP903") in _codes(tmp_path)

    def test_contracted_external_in_its_package_is_clean(self, tmp_path):
        _write(tmp_path, "src/repro/graphs/interop.py", """\
            def to_nx() -> object:
                import networkx

                return networkx.Graph()
        """)
        assert [c for c in _codes(tmp_path) if c[2] == "REP903"] == []

    def test_undeclared_package_is_rep904(self, tmp_path):
        _write(tmp_path, "src/repro/webui/daemon.py", """\
            def start() -> None:
                return None
        """)
        assert ("src/repro/webui/daemon.py", 1, "REP904") in _codes(tmp_path)

    def test_program_codes_absent_without_program_flag(self, tmp_path):
        _write(tmp_path, "src/repro/webui/daemon.py", """\
            def start() -> None:
                return None
        """)
        assert _codes(tmp_path, program=False) == []


# ---------------------------------------------------------------------------
# REP1001/REP1002 — interprocedural seed-taint
# ---------------------------------------------------------------------------
_SEEDED_BUILDER = """\
    import random
    from typing import List, Optional


    def build(n: int, seed: Optional[int] = None) -> List[float]:
        rng = random.Random(seed)
        return [rng.random() for _ in range(n)]
"""


class TestSeedTaint:
    def test_sealed_chain_is_rep1001(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n)
        """)
        assert ("src/repro/analysis/run.py", 7, "REP1001") in _codes(tmp_path)

    def test_dropped_chain_is_rep1002(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List, Optional

            from repro.spanners.build import build


            def analyze(n: int, seed: Optional[int] = None) -> List[float]:
                return build(n)
        """)
        assert _codes(tmp_path) == [
            ("src/repro/analysis/run.py", 7, "REP1002"),
        ]

    def test_threaded_seed_is_clean(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List, Optional

            from repro.spanners.build import build


            def analyze(n: int, seed: Optional[int] = None) -> List[float]:
                return build(n, seed=seed)
        """)
        assert _codes(tmp_path) == []

    def test_explicit_seed_value_is_deliberate_and_clean(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n, seed=17)
        """)
        assert _codes(tmp_path) == []

    def test_taint_propagates_through_a_threading_wrapper(self, tmp_path):
        # wrapped() threads its seed into build(), so wrapped itself
        # needs a seed; calling *wrapped* bare then seals the chain.
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/spanners/wrap.py", """\
            from typing import List, Optional

            from repro.spanners.build import build


            def wrapped(n: int, seed: Optional[int] = None) -> List[float]:
                return build(n, seed=seed)
        """)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.wrap import wrapped


            def analyze(n: int) -> List[float]:
                return wrapped(n)
        """)
        assert ("src/repro/analysis/run.py", 7, "REP1001") in _codes(tmp_path)


# ---------------------------------------------------------------------------
# REP1011–REP1013 — pool-safety race detector
# ---------------------------------------------------------------------------
_OBS_STUB = {
    "src/repro/obs/__init__.py": """\
        from repro.obs.metrics import counter
    """,
    "src/repro/obs/metrics.py": """\
        def counter(name: str, value: int = 1) -> None:
            return None
    """,
}


def _write_obs_stub(tmp_path):
    for rel, source in _OBS_STUB.items():
        _write(tmp_path, rel, source)


class TestPoolSafety:
    def test_worker_side_global_write_is_rep1011(self, tmp_path):
        _write(tmp_path, "src/repro/analysis/par.py", """\
            from multiprocessing import Pool
            from typing import Dict, List

            _STATE: Dict[str, int] = {}


            def _init(n: int) -> None:
                _STATE["n"] = n


            def _record(i: int) -> None:
                _STATE["last"] = i


            def _work(i: int) -> int:
                _record(i)
                return i


            def run(items: List[int]) -> List[int]:
                with Pool(2, initializer=_init, initargs=(3,)) as pool:
                    return list(pool.imap(_work, items))
        """)
        codes = _codes(tmp_path)
        # _record's write is flagged; the initializer's identical write
        # is the documented per-process-state protocol and is exempt
        assert ("src/repro/analysis/par.py", 12, "REP1011") in codes
        assert ("src/repro/analysis/par.py", 8, "REP1011") not in codes

    def test_differential_per_file_rules_miss_what_program_catches(
        self, tmp_path
    ):
        """The tentpole's reason to exist, as a test: the worker-side
        write above is invisible to every per-file rule (module-level
        worker, no lambdas, picklable args), and only the reachability
        pass connects `pool.imap(_work, ...)` to `_record`'s write."""
        _write(tmp_path, "src/repro/analysis/par.py", """\
            from multiprocessing import Pool
            from typing import Dict, List

            _STATE: Dict[str, int] = {}


            def _record(i: int) -> None:
                _STATE["last"] = i


            def _work(i: int) -> int:
                _record(i)
                return i


            def run(items: List[int]) -> List[int]:
                with Pool(2) as pool:
                    return list(pool.imap(_work, items))
        """)
        assert _codes(tmp_path, program=False) == []
        assert _codes(tmp_path) == [
            ("src/repro/analysis/par.py", 8, "REP1011"),
        ]

    def test_csr_mutation_reachable_from_worker_is_rep1012(self, tmp_path):
        _write(tmp_path, "src/repro/analysis/par.py", """\
            from multiprocessing import Pool
            from typing import Any, List


            def _clamp(graph: Any) -> None:
                graph.weights[0] = 0.0


            def _work(graph: Any) -> int:
                _clamp(graph)
                return 0


            def run(graphs: List[Any]) -> List[int]:
                with Pool(2) as pool:
                    return list(pool.map(_work, graphs))
        """)
        assert ("src/repro/analysis/par.py", 6, "REP1012") in _codes(tmp_path)

    def test_process_target_is_a_pool_root(self, tmp_path):
        """Process(target=...) workers (the serve daemon's shape) are
        reachability roots exactly like pool dispatch targets."""
        _write(tmp_path, "src/repro/analysis/proc.py", """\
            from multiprocessing import Process
            from typing import Dict

            _STATE: Dict[str, int] = {}


            def _worker(n: int) -> None:
                _STATE["n"] = n


            def run(n: int) -> None:
                proc = Process(target=_worker, args=(n,))
                proc.start()
                proc.join()
        """)
        assert ("src/repro/analysis/proc.py", 8, "REP1011") in _codes(tmp_path)

    def test_constructor_self_init_of_csr_arrays_is_clean(self, tmp_path):
        """self.indptr = ... inside __init__ is construction; the same
        store outside a constructor still gates as REP1012."""
        _write(tmp_path, "src/repro/graphs/csrlike.py", """\
            from typing import List


            class Frozen:
                def __init__(self, indptr: List[int]) -> None:
                    self.indptr = indptr
        """)
        _write(tmp_path, "src/repro/analysis/proc.py", """\
            from multiprocessing import Process

            from repro.graphs.csrlike import Frozen


            def _stomp(frozen: Frozen) -> None:
                frozen.indptr[0] = 1


            def _worker() -> None:
                frozen = Frozen([0])
                _stomp(frozen)


            def run() -> None:
                Process(target=_worker).start()
        """)
        codes = [c for c in _codes(tmp_path) if c[2] == "REP1012"]
        assert ("src/repro/analysis/proc.py", 7, "REP1012") in codes
        assert not any(path.endswith("csrlike.py") for path, _, _ in codes)

    def test_obs_global_registry_in_worker_is_rep1013(self, tmp_path):
        _write_obs_stub(tmp_path)
        _write(tmp_path, "src/repro/analysis/par.py", """\
            from multiprocessing import Pool
            from typing import List

            from repro.obs import counter


            def _work(i: int) -> int:
                counter("chunks")
                return i


            def run(items: List[int]) -> List[int]:
                with Pool(2) as pool:
                    return list(pool.map(_work, items))
        """)
        assert ("src/repro/analysis/par.py", 8, "REP1013") in _codes(tmp_path)

    def test_parent_side_obs_calls_are_clean(self, tmp_path):
        _write_obs_stub(tmp_path)
        _write(tmp_path, "src/repro/analysis/par.py", """\
            from multiprocessing import Pool
            from typing import List

            from repro.obs import counter


            def _work(i: int) -> int:
                return i + 1


            def run(items: List[int]) -> List[int]:
                with Pool(2) as pool:
                    out = list(pool.map(_work, items))
                counter("batches")
                return out
        """)
        assert _codes(tmp_path) == []

    def test_partial_wrapped_worker_is_traced(self, tmp_path):
        _write(tmp_path, "src/repro/analysis/par.py", """\
            import functools
            from multiprocessing import Pool
            from typing import Dict, List

            _CACHE: Dict[int, int] = {}


            def _work(scale: int, i: int) -> int:
                _CACHE[i] = i * scale
                return i * scale


            def run(items: List[int]) -> List[int]:
                with Pool(2) as pool:
                    return list(pool.map(functools.partial(_work, 3), items))
        """)
        assert ("src/repro/analysis/par.py", 9, "REP1011") in _codes(tmp_path)


# ---------------------------------------------------------------------------
# Suppression lifecycle under --program
# ---------------------------------------------------------------------------
class TestProgramSuppressions:
    def test_waiver_suppresses_exactly_one_edge(self, tmp_path):
        _write(tmp_path, "src/repro/harness/util.py", """\
            def helper() -> int:
                return 1
        """)
        _write(tmp_path, "src/repro/harness/extra.py", """\
            def more() -> int:
                return 2
        """)
        _write(tmp_path, "src/repro/obs/bad.py", """\
            from repro.harness.util import helper  # repro: allow[REP901] -- transitional; moves down in the next PR
            from repro.harness.extra import more


            def use() -> int:
                return helper() + more()
        """)
        codes = _codes(tmp_path)
        assert ("src/repro/obs/bad.py", 1, "REP901") not in codes
        assert ("src/repro/obs/bad.py", 2, "REP901") in codes

    def test_removed_edge_turns_waiver_into_rep003(self, tmp_path):
        _write(tmp_path, "src/repro/obs/bad.py", """\
            x = 1  # repro: allow[REP901] -- transitional; moves down in the next PR
        """)
        assert _codes(tmp_path) == [("src/repro/obs/bad.py", 1, "REP003")]

    def test_program_waiver_not_stale_without_program_run(self, tmp_path):
        """A plain run cannot vouch for REP9xx/REP10xx waivers, so it
        must not flag them stale either."""
        _write(tmp_path, "src/repro/obs/bad.py", """\
            x = 1  # repro: allow[REP901] -- transitional; moves down in the next PR
        """)
        assert _codes(tmp_path, program=False) == []

    def test_seed_taint_waiver_suppresses_and_goes_stale(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        run = """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n)  # repro: allow[REP1001] -- smoke helper; stream identity is irrelevant here
        """
        _write(tmp_path, "src/repro/analysis/run.py", run)
        assert _codes(tmp_path) == []
        # thread the seed for real; the stale waiver must now surface
        _write(tmp_path, "src/repro/analysis/run.py",
               run.replace("return build(n)  ", "return build(n, seed=0)  "))
        assert _codes(tmp_path) == [("src/repro/analysis/run.py", 7, "REP003")]


# ---------------------------------------------------------------------------
# Content-hash cache
# ---------------------------------------------------------------------------
class TestCache:
    def _tree(self, tmp_path):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n)
        """)

    def test_warm_run_is_identical_and_hits_cache(self, tmp_path):
        self._tree(tmp_path)
        cache = AnalysisCache(tmp_path / "cache")
        cold = lint_paths([tmp_path / "src"], program=True, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        warm_cache = AnalysisCache(tmp_path / "cache")
        warm = lint_paths([tmp_path / "src"], program=True, cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert warm == cold
        assert [d.code for d in warm] == ["REP1001"]

    def test_edited_file_misses_and_reflects_the_change(self, tmp_path):
        self._tree(tmp_path)
        cache = AnalysisCache(tmp_path / "cache")
        lint_paths([tmp_path / "src"], program=True, cache=cache)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n, seed=3)
        """)
        cache2 = AnalysisCache(tmp_path / "cache")
        diags = lint_paths([tmp_path / "src"], program=True, cache=cache2)
        assert cache2.hits == 1 and cache2.misses == 1
        assert diags == []

    def test_corrupt_cache_entry_is_a_miss_not_a_crash(self, tmp_path):
        self._tree(tmp_path)
        cache = AnalysisCache(tmp_path / "cache")
        lint_paths([tmp_path / "src"], program=True, cache=cache)
        for entry in sorted((tmp_path / "cache").glob("*.pkl")):
            entry.write_bytes(b"not a pickle")
        cache2 = AnalysisCache(tmp_path / "cache")
        diags = lint_paths([tmp_path / "src"], program=True, cache=cache2)
        assert cache2.hits == 0 and cache2.misses == 2
        assert [d.code for d in diags] == ["REP1001"]


# ---------------------------------------------------------------------------
# CLI and the repo-wide gate
# ---------------------------------------------------------------------------
class TestProgramCliAndGate:
    def test_cli_program_flag_end_to_end(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/spanners/build.py", _SEEDED_BUILDER)
        _write(tmp_path, "src/repro/analysis/run.py", """\
            from typing import List

            from repro.spanners.build import build


            def analyze(n: int) -> List[float]:
                return build(n)
        """)
        argv = ["lint", "--program", "--cache-dir",
                str(tmp_path / "cache"), str(tmp_path / "src")]
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP1001" in out
        rc = main(argv)  # warm
        assert rc == 1
        assert "REP1001" in capsys.readouterr().out

    def test_repo_tree_is_program_clean(self):
        """The repo gates on itself: lint --program src tests is clean."""
        diags = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"], program=True
        )
        assert diags == [], "\n".join(d.render() for d in diags)


# ---------------------------------------------------------------------------
# The declared contract and its rendered documentation
# ---------------------------------------------------------------------------
class TestContract:
    def test_design_md_embeds_the_rendered_contract(self):
        """DESIGN.md's layering diagram is generated, not hand-drawn:
        regenerate with render_contract() whenever LAYERS changes."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        assert render_contract() in design

    def test_every_real_package_is_declared(self):
        declared = {pkg for _, pkgs in LAYERS for pkg in pkgs}
        src = REPO_ROOT / "src" / "repro"
        for child in sorted(src.iterdir()):
            if child.name.startswith("_") or child.name == "py.typed":
                continue
            name = child.name.removesuffix(".py")
            assert f"repro.{name}" in declared, f"undeclared: repro.{name}"

    def test_direction_semantics(self):
        assert allowed_import("repro.harness.runner", "repro.graphs.csr")
        assert allowed_import("repro.graphs.csr", "repro.kernels.sssp")
        assert not allowed_import("repro.obs.metrics", "repro.harness.runner")
        assert allowed_import("repro.spt.tree", "repro.spt.heap")
        # the serving layer: the load generator (harness) drives the
        # daemon, never the other way around; serve and oracle are peers
        assert allowed_import("repro.harness.loadgen", "repro.serve.client")
        assert allowed_import("repro.serve.shm", "repro.oracle.oracle")
        assert not allowed_import("repro.serve.daemon", "repro.harness.runner")

    def test_external_contract_rows(self):
        assert EXTERNAL_CONTRACT["numpy"] == ("repro.kernels",)
        assert "repro.graphs" in EXTERNAL_CONTRACT["networkx"]
