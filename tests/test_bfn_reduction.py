"""Tests for the [BFN16] reduction (Lemma 5)."""

import pytest

from repro.core import bfn_reweighted_graph
from repro.core.bfn_reduction import bfn_bounds
from repro.graphs import dijkstra
from repro.mst.kruskal import kruskal_mst


class TestReweighting:
    def test_mst_edges_unchanged(self, medium_er):
        mst = kruskal_mst(medium_er)
        g2 = bfn_reweighted_graph(medium_er, 0.25, mst)
        for u, v, w in mst.edges():
            assert g2.weight(u, v) == pytest.approx(w)

    def test_non_mst_edges_scaled_by_inverse_delta(self, medium_er):
        mst = kruskal_mst(medium_er)
        delta = 0.25
        g2 = bfn_reweighted_graph(medium_er, delta, mst)
        for u, v, w in medium_er.edges():
            if not mst.has_edge(u, v):
                assert g2.weight(u, v) == pytest.approx(w / delta)

    def test_mst_of_reweighted_graph_is_same_tree(self, medium_er):
        """Non-tree edges only get heavier, so the MST survives (cycle
        property) — the invariant Lemma 5's lightness argument rests on."""
        g2 = bfn_reweighted_graph(medium_er, 0.3)
        assert kruskal_mst(g2).edge_set() == kruskal_mst(medium_er).edge_set()

    def test_distances_sandwiched(self, medium_er):
        """d_{G,w} <= d_{G,w'} <= d_{G,w}/δ."""
        delta = 0.5
        g2 = bfn_reweighted_graph(medium_er, delta)
        d1, _ = dijkstra(medium_er, 0)
        d2, _ = dijkstra(g2, 0)
        for v in medium_er.vertices():
            if v == 0:
                continue
            assert d2[v] >= d1[v] - 1e-9
            assert d2[v] <= d1[v] / delta + 1e-9

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_delta_rejected(self, small_er, delta):
        with pytest.raises(ValueError):
            bfn_reweighted_graph(small_er, delta)


class TestBounds:
    def test_lemma5_formulas(self):
        light, distort = bfn_bounds(base_lightness=10.0, base_distortion=2.0, delta=0.1)
        assert light == pytest.approx(2.0)  # 1 + 0.1·10
        assert distort == pytest.approx(20.0)  # 2/0.1

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            bfn_bounds(10.0, 2.0, 1.5)
