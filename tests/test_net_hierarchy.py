"""Tests for the hierarchical nets built on §6."""

import random

import pytest

from repro.analysis import verify_net
from repro.core.net_hierarchy import build_net_hierarchy
from repro.graphs import dijkstra, path_graph, random_geometric_graph


@pytest.fixture
def geo():
    return random_geometric_graph(30, seed=11)


class TestGreedyHierarchy:
    def test_every_level_is_valid_net(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=False)
        for lvl in h.levels:
            verify_net(geo, lvl.points, lvl.alpha, lvl.beta)

    def test_nested_levels_are_subsets(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=True)
        assert h.nested
        for fine, coarse in zip(h.levels, h.levels[1:]):
            assert coarse.points <= fine.points

    def test_nested_levels_separated(self, geo):
        """Even nested, every level keeps its own separation."""
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=True)
        for lvl in h.levels:
            pts = sorted(lvl.points, key=repr)
            for p in pts:
                dp, _ = dijkstra(geo, p)
                for q in pts:
                    if q != p:
                        assert dp[q] > lvl.beta - 1e-9

    def test_nested_covering_telescopes(self, geo):
        """Level-i points cover V within sum of scales <= scale·(1+ε)/ε
        — the net-tree covering bound."""
        eps = 0.5
        h = build_net_hierarchy(geo, eps=eps, method="greedy", nested=True)
        for lvl in h.levels:
            dist, _ = dijkstra(geo, lvl.points)
            telescoped = lvl.scale * (1 + eps) / eps
            for v in geo.vertices():
                assert dist[v] <= telescoped + 1e-9

    def test_bottom_level_is_everything(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=True)
        # scale 1 < min edge weight, so every vertex is its own net point
        if geo.min_weight() > 1.0:
            assert h.levels[0].points == set(geo.vertices())

    def test_top_level_singleton(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=True)
        assert len(h.levels[-1].points) == 1

    def test_level_sizes_weakly_decreasing_when_nested(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=True)
        sizes = [len(l.points) for l in h.levels]
        assert sizes == sorted(sizes, reverse=True)


class TestDistributedHierarchy:
    def test_levels_valid(self):
        g = random_geometric_graph(20, seed=12)
        h = build_net_hierarchy(
            g, eps=1.0, method="distributed", rng=random.Random(0),
            max_scale=200.0,
        )
        for lvl in h.levels:
            verify_net(g, lvl.points, lvl.alpha, lvl.beta)
        assert h.ledger.total > 0
        assert not h.nested  # Theorem-3 nets are per-scale independent


class TestQueries:
    def test_level_for_distance(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy")
        lvl = h.level_for_distance(10.0)
        assert lvl.scale >= 10.0
        assert h.level_for_distance(1e18) is h.levels[-1]

    def test_nearest_net_point_within_alpha(self, geo):
        h = build_net_hierarchy(geo, eps=0.5, method="greedy", nested=False)
        mid = h.num_levels // 2
        v = next(iter(geo.vertices()))
        p = h.nearest_net_point(v, mid)
        dist, _ = dijkstra(geo, p)
        assert dist[v] <= h.levels[mid].alpha + 1e-9

    def test_invalid_params(self, geo):
        with pytest.raises(ValueError):
            build_net_hierarchy(geo, eps=0.0)
        with pytest.raises(ValueError):
            build_net_hierarchy(geo, eps=0.5, method="magic")

    def test_path_graph_hierarchy_shape(self):
        g = path_graph(64)
        h = build_net_hierarchy(g, eps=1.0, method="greedy", nested=True)
        # scales 1, 2, 4, ...: level sizes shrink roughly geometrically
        # (scale-1 net of a unit path keeps every other vertex)
        sizes = [len(l.points) for l in h.levels]
        assert sizes[0] == 32
        assert sizes[-1] == 1
        for fine, coarse in zip(sizes, sizes[1:]):
            assert coarse <= fine
