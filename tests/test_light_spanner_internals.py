"""White-box tests for the §5 clustering machinery."""

import math
import random

import pytest

from repro.core.light_spanner import (
    _bucket_index,
    _case1_clusters,
    _case2_clusters,
)
from repro.graphs import dijkstra, erdos_renyi_graph, random_tree
from repro.mst import kruskal_mst
from repro.traversal import compute_euler_tour


@pytest.fixture
def tour():
    g = erdos_renyi_graph(40, 0.2, seed=21)
    mst = kruskal_mst(g)
    return mst, compute_euler_tour(mst, 0)


class TestBucketIndex:
    def test_boundaries(self):
        big_l, eps = 1000.0, 0.25
        # w = L lands in bucket 0; w just above L/(1+eps) too
        assert _bucket_index(1000.0, big_l, eps) == 0
        assert _bucket_index(801.0, big_l, eps) == 0
        # w = L/(1+eps) lands in bucket 1
        assert _bucket_index(800.0, big_l, eps) == 1

    @pytest.mark.parametrize("w", [999.9, 512.3, 100.0, 3.7, 1.0])
    def test_invariant_holds(self, w):
        big_l, eps = 1000.0, 0.25
        i = _bucket_index(w, big_l, eps)
        assert big_l / (1 + eps) ** (i + 1) < w <= big_l / (1 + eps) ** i

    def test_many_random_weights(self):
        rng = random.Random(0)
        big_l, eps = 5000.0, 0.1
        for _ in range(200):
            w = rng.uniform(1.0, big_l)
            i = _bucket_index(w, big_l, eps)
            assert big_l / (1 + eps) ** (i + 1) < w <= big_l / (1 + eps) ** i


class TestCase1Clusters:
    def test_weak_diameter_bound(self, tour):
        """§5 case 1: any two vertices of a cluster are within ε·w_i in
        the MST metric."""
        mst, t = tour
        eps_wi = t.length / 7.0
        cluster_of = _case1_clusters(t, eps_wi)
        by_cluster = {}
        for v, c in cluster_of.items():
            by_cluster.setdefault(c, []).append(v)
        for members in by_cluster.values():
            dist, _ = dijkstra(mst, members[0])
            for v in members:
                assert dist[v] <= eps_wi + 1e-9

    def test_cluster_count_bound(self, tour):
        """At most ⌈L/(ε·w_i)⌉ + 1 clusters (§5 case 1)."""
        _, t = tour
        for denom in (3.0, 10.0, 30.0):
            eps_wi = t.length / denom
            clusters = set(_case1_clusters(t, eps_wi).values())
            assert len(clusters) <= math.ceil(t.length / eps_wi) + 1

    def test_every_vertex_clustered(self, tour):
        _, t = tour
        cluster_of = _case1_clusters(t, t.length / 5.0)
        assert set(cluster_of) == set(t.tree.vertices())


class TestCase2Clusters:
    def test_weak_diameter_bound(self, tour):
        mst, t = tour
        eps_wi = t.length / 9.0
        cluster_of, _ = _case2_clusters(t, eps_wi, index_stride=7)
        by_cluster = {}
        for v, c in cluster_of.items():
            by_cluster.setdefault(c, []).append(v)
        for members in by_cluster.values():
            dist, _ = dijkstra(mst, members[0])
            for v in members:
                assert dist[v] <= eps_wi + 1e-9

    def test_interval_hop_length_bounded_by_stride(self, tour):
        """Condition 2 caps every communication interval at the index
        stride."""
        _, t = tour
        for stride in (3, 8, 20):
            _, max_interval = _case2_clusters(t, t.length / 4.0, stride)
            assert max_interval <= stride

    def test_position_zero_is_center(self, tour):
        _, t = tour
        cluster_of, _ = _case2_clusters(t, t.length / 4.0, 9)
        assert cluster_of[t.order[0]] == 0

    def test_centers_are_cluster_ids(self, tour):
        """Cluster ids are center positions; every member's first
        appearance is at or after its center."""
        _, t = tour
        cluster_of, _ = _case2_clusters(t, t.length / 6.0, 11)
        for v, c in cluster_of.items():
            assert any(j >= c for j in t.appearances[v])

    def test_fine_scale_every_position_is_center(self):
        """When ε·w_i is below the smallest edge weight, every position
        crosses a boundary and becomes its own center."""
        tree = random_tree(12, seed=3, min_weight=5.0, max_weight=9.0)
        t = compute_euler_tour(tree, 0)
        cluster_of, max_interval = _case2_clusters(t, 1.0, index_stride=10 ** 9)
        assert max_interval == 1
