"""Tests for the repro.harness subsystem (profiles, runner, results, CLI)."""

import json

import pytest

from repro.cli import main
from repro.harness import (
    FAMILIES,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TIERS,
    all_profiles,
    compare_reports,
    congest_profiles,
    get_profile,
    load_report,
    make_report,
    profile_names,
    report_records,
    run_profile,
    write_report,
)
from repro.harness.profiles import Profile, register
from repro.harness.runner import ALGORITHMS, ProfileRecord


class TestRegistry:
    def test_at_least_12_profiles(self):
        assert len(profile_names()) >= 12

    def test_spans_at_least_4_families(self):
        assert len({p.family for p in all_profiles()}) >= 4

    def test_covers_every_construction(self):
        used = {p.algorithm for p in all_profiles()}
        assert used == set(ALGORITHMS), "every algorithm needs a profile"

    def test_every_profile_has_all_tiers(self):
        for p in all_profiles():
            for tier in TIERS:
                assert tier in p.tiers, f"{p.name} lacks tier {tier}"

    def test_families_resolve(self):
        for p in all_profiles():
            assert p.family in FAMILIES

    def test_smoke_graphs_build_deterministically(self):
        for p in all_profiles():
            a = p.build_graph("smoke")
            b = p.build_graph("smoke")
            assert a == b, f"{p.name} smoke graph is not seed-deterministic"

    def test_build_graph_overrides(self):
        p = get_profile("slt-er")
        assert p.build_graph("smoke", n=17).n == 17

    def test_unknown_profile_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known profiles"):
            get_profile("frobnicate")

    def test_unknown_tier_raises(self):
        with pytest.raises(KeyError):
            get_profile("slt-er").build_graph("mega")

    def test_register_rejects_duplicates_and_bad_refs(self):
        existing = all_profiles()[0]
        with pytest.raises(ValueError, match="duplicate"):
            register(existing)
        bad = Profile(
            name="test-bad-family", description="", section="", family="nope",
            algorithm="slt", params={}, tiers={t: {} for t in TIERS},
        )
        with pytest.raises(ValueError, match="unknown family"):
            register(bad)
        incomplete = Profile(
            name="test-missing-tier", description="", section="", family="er",
            algorithm="slt", params={}, tiers={"smoke": {}},
        )
        with pytest.raises(ValueError, match="missing tiers"):
            register(incomplete)


class TestRunner:
    @pytest.mark.parametrize("name", profile_names())
    def test_profile_runs_at_smoke(self, name):
        """Registry completeness: every profile executes and certifies."""
        record = run_profile(get_profile(name), "smoke")
        assert record.ok, f"{name}: quality violated: {record.metrics}"
        assert record.n > 0 and record.m > 0
        assert record.construction_seconds >= 0.0
        assert record.peak_memory_bytes > 0
        assert record.metrics, "certification produced no metrics"

    def test_rounds_deterministic_across_runs(self):
        p = get_profile("spanner-er")
        a = run_profile(p, "smoke")
        b = run_profile(p, "smoke")
        assert a.rounds == b.rounds

    def test_certify_false_skips_certification(self):
        record = run_profile(get_profile("congest-bfs-grid"), "smoke", certify=False)
        assert record.metrics == {}
        assert record.certification_seconds == 0.0
        assert record.ok

    def test_record_dict_roundtrip(self):
        record = run_profile(get_profile("mst-ring-of-cliques"), "smoke")
        back = ProfileRecord.from_dict(record.to_dict())
        assert back == record

    def test_congest_record_carries_network_traffic(self):
        record = run_profile(get_profile("congest-broadcast"), "smoke")
        assert record.messages and record.words and record.active_node_rounds
        assert record.params["engine"] == "sparse"
        back = ProfileRecord.from_dict(record.to_dict())
        assert back == record

    def test_non_congest_record_has_no_network_traffic(self):
        record = run_profile(get_profile("slt-er"), "smoke")
        assert record.messages is None
        assert record.words is None
        assert record.active_node_rounds is None
        assert "engine" not in record.params

    def test_engines_agree_on_traffic_not_utilization(self):
        p = get_profile("congest-convergecast")
        sparse = run_profile(p, "smoke", engine="sparse", measure_memory=False)
        dense = run_profile(p, "smoke", engine="dense", measure_memory=False)
        assert dense.params["engine"] == "dense"
        assert (sparse.rounds, sparse.messages, sparse.words) == (
            dense.rounds, dense.messages, dense.words)
        assert sparse.active_node_rounds < dense.active_node_rounds

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_profile(get_profile("congest-bfs-grid"), "smoke", engine="warp")

    def test_congest_builder_must_return_net_stats(self, monkeypatch):
        """A congest build returning the 2-tuple shape silently loses the
        traffic gate — it must be a hard error instead."""
        from repro.harness import runner

        def bad_build(graph, params, rng, network=None):
            return None, 0

        monkeypatch.setitem(
            runner.ALGORITHMS, "congest-bfs",
            (bad_build, runner.ALGORITHMS["congest-bfs"][1]),
        )
        with pytest.raises(TypeError, match="NetStats"):
            run_profile(get_profile("congest-bfs-grid"), "smoke",
                        measure_memory=False)

    def test_congest_profiles_selection(self):
        names = {p.name for p in congest_profiles()}
        assert {"congest-bfs-grid", "congest-broadcast", "congest-convergecast",
                "congest-interval-scan", "congest-cluster-round"} <= names
        assert all(p.algorithm.startswith("congest-") for p in congest_profiles())


class TestResults:
    @pytest.fixture
    def records(self):
        return [run_profile(get_profile("congest-bfs-grid"), "smoke")]

    def test_report_roundtrip(self, tmp_path, records):
        report = make_report(records, suite="smoke", tag="t")
        path = tmp_path / "BENCH_t.json"
        write_report(report, path)
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["suite"] == "smoke"
        assert loaded["tag"] == "t"
        assert "python" in loaded["environment"]
        assert report_records(loaded) == records

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not a"):
            load_report(path)

    def test_load_rejects_future_schema(self, tmp_path, records):
        report = make_report(records, suite="smoke")
        report["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        write_report(report, path)
        with pytest.raises(ValueError, match="unsupported schema version"):
            load_report(path)

    def _report_with(self, record, **patches):
        data = record.to_dict()
        for key, value in patches.items():
            if key in data["timings"]:
                data["timings"][key] = value
            else:
                data[key] = value
        return {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "tag": None,
            "suite": "smoke",
            "created_unix": 0.0,
            "environment": {},
            "records": [data],
        }

    def test_identical_runs_pass_the_gate(self, records):
        report = make_report(records, suite="smoke")
        comparison = compare_reports(report, report)
        assert comparison.ok
        assert not comparison.regressions

    def test_time_regression_detected(self, records):
        base = self._report_with(records[0], construction_seconds=1.0)
        curr = self._report_with(records[0], construction_seconds=2.0)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert [d.quantity for d in comparison.regressions] == ["construction_seconds"]
        assert not comparison.ok

    def test_time_improvement_detected(self, records):
        base = self._report_with(records[0], construction_seconds=1.0)
        curr = self._report_with(records[0], construction_seconds=0.4)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert [d.quantity for d in comparison.improvements] == ["construction_seconds"]
        assert comparison.ok

    def test_within_tolerance_is_ok(self, records):
        base = self._report_with(records[0], construction_seconds=1.0)
        curr = self._report_with(records[0], construction_seconds=1.3)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert comparison.ok and not comparison.improvements

    def test_sub_floor_jitter_ignored(self, records):
        base = self._report_with(records[0], construction_seconds=0.001)
        curr = self._report_with(records[0], construction_seconds=0.01)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert comparison.ok

    def test_jitter_straddling_the_floor_ignored(self, records):
        """A 30 ms wobble across the floor must not fail the gate."""
        base = self._report_with(records[0], construction_seconds=0.04)
        curr = self._report_with(records[0], construction_seconds=0.07)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert comparison.ok

    def test_cross_suite_compare_rejected(self, records):
        smoke = make_report(records, suite="smoke")
        table1 = make_report(records, suite="table1")
        with pytest.raises(ValueError, match="different suites"):
            compare_reports(smoke, table1)

    def test_zero_matched_profiles_fails_the_gate(self, records):
        report = make_report(records, suite="smoke")
        other = dict(report)
        other["records"] = [{**report["records"][0], "profile": "something-else"}]
        comparison = compare_reports(report, other)
        assert not comparison.ok
        assert "no profiles matched" in comparison.render()

    def test_rounds_change_is_a_regression(self, records):
        base = self._report_with(records[0], rounds=100)
        curr = self._report_with(records[0], rounds=120)
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert any(d.quantity == "rounds" for d in comparison.regressions)

    def test_network_traffic_gates_like_rounds(self):
        record = run_profile(get_profile("congest-broadcast"), "smoke",
                             measure_memory=False)
        base = self._report_with(record)
        data = record.to_dict()
        data["network"] = dict(data["network"], messages=record.messages * 2)
        curr = {**base, "records": [data]}
        comparison = compare_reports(base, curr, tolerance=0.5)
        assert any(d.quantity == "messages" for d in comparison.regressions)

    def test_sparse_vs_dense_baseline_shows_utilization_improvement(self):
        p = get_profile("congest-broadcast")
        dense = run_profile(p, "smoke", engine="dense", measure_memory=False)
        sparse = run_profile(p, "smoke", engine="sparse", measure_memory=False)
        comparison = compare_reports(
            make_report([dense], suite="smoke"),
            make_report([sparse], suite="smoke"),
        )
        assert comparison.ok  # rounds/messages/words identical
        assert any(d.quantity == "active_node_rounds"
                   for d in comparison.improvements)

    def test_schema_v1_report_without_network_block_loads(self, tmp_path, records):
        report = make_report(records, suite="smoke")
        report["schema_version"] = 1
        for rec in report["records"]:
            rec.pop("network", None)
        path = tmp_path / "v1.json"
        write_report(report, path)
        loaded = report_records(load_report(path))
        assert loaded[0].messages is None
        assert loaded[0].active_node_rounds is None

    def test_quality_flip_always_gates(self, records):
        base = self._report_with(records[0], ok=True)
        curr = self._report_with(records[0], ok=False)
        comparison = compare_reports(base, curr, tolerance=100.0)
        assert any(d.quantity == "quality" for d in comparison.regressions)

    def test_unmatched_profiles_reported(self, records):
        report = make_report(records, suite="smoke")
        empty = {**report, "records": []}
        comparison = compare_reports(report, empty)
        assert comparison.missing_profiles == [records[0].profile]
        comparison = compare_reports(empty, report)
        assert comparison.new_profiles == [records[0].profile]

    def test_new_profiles_alongside_matches_do_not_gate(self, records):
        """Adding a profile must not fail the gate while matches pass."""
        report = make_report(records, suite="smoke")
        extra = {**report["records"][0], "profile": "brand-new"}
        grown = {**report, "records": report["records"] + [extra]}
        comparison = compare_reports(report, grown)
        assert comparison.new_profiles == ["brand-new"]
        assert comparison.ok

    def test_render_mentions_verdict(self, records):
        report = make_report(records, suite="smoke")
        assert "PASS" in compare_reports(report, report).render()


class TestBenchCLI:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in profile_names():
            assert name in out

    def test_run_single_profile_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_one.json"
        rc = main(["bench", "--profile", "congest-bfs-grid",
                   "--suite", "smoke", "--out", str(out), "--tag", "one"])
        assert rc == 0
        report = load_report(out)
        assert [r["profile"] for r in report["records"]] == ["congest-bfs-grid"]
        assert "wrote" in capsys.readouterr().out

    def test_compare_against_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_base.json"
        assert main(["bench", "--profile", "congest-bfs-grid",
                     "--suite", "smoke", "--out", str(out)]) == 0
        rc = main(["bench", "--profile", "congest-bfs-grid",
                   "--suite", "smoke", "--compare", str(out)])
        assert rc == 0
        output = capsys.readouterr().out
        assert "deltas vs" in output and "PASS" in output

    def test_congest_suite_runs_congest_profiles_at_smoke(self, tmp_path):
        out = tmp_path / "BENCH_congest.json"
        assert main(["bench", "--suite", "congest", "--no-memory",
                     "--out", str(out)]) == 0
        report = load_report(out)
        assert report["suite"] == "congest"
        recorded = {r["profile"] for r in report["records"]}
        assert recorded == {p.name for p in congest_profiles()}
        assert all(r["tier"] == "smoke" for r in report["records"])

    def test_engine_flag_threads_to_records(self, tmp_path):
        out = tmp_path / "BENCH_dense.json"
        assert main(["bench", "--profile", "congest-bfs-grid", "--no-memory",
                     "--engine", "dense", "--out", str(out)]) == 0
        report = load_report(out)
        assert report["records"][0]["params"]["engine"] == "dense"

    def test_unknown_profile_exits(self):
        with pytest.raises(SystemExit, match="unknown profile"):
            main(["bench", "--profile", "frobnicate"])

    def test_bad_baseline_exits(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="cannot load baseline"):
            main(["bench", "--profile", "congest-bfs-grid", "--compare", str(path)])

    def test_raw_json_is_sorted_and_versioned(self, tmp_path):
        out = tmp_path / "BENCH_raw.json"
        main(["bench", "--profile", "mst-ring-of-cliques", "--out", str(out)])
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA_NAME
        assert isinstance(data["schema_version"], int)
