"""Tests for ``repro.obs``: tracing, the metrics registry, and the
instrumentation wired through the oracle / certify / CONGEST / harness
layers.

Global state discipline: the tracer and the default metrics registry are
process-wide, so every test runs under an autouse fixture that disables
tracing and zeroes the registry on both sides.  Tests that assert on
metric values therefore see a freshly-zeroed registry (names may linger
from earlier tests — values never do).
"""

import json
import pickle

import pytest

from repro.congest import SyncNetwork, build_bfs_tree
from repro.graphs import erdos_renyi_graph, grid_graph, path_graph
from repro.harness.profiles import get_profile
from repro.harness.runner import run_profile
from repro.mst import kruskal_mst
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    DEFAULT_COUNT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.summary import (
    aggregate_spans,
    hot_spans,
    render_tree,
    summarize_trace,
)
from repro.obs.trace import SpanRecord, read_jsonl
from repro.oracle import DistanceOracle


@pytest.fixture(autouse=True)
def _clean_obs():
    obs_trace.disable()
    obs_metrics.reset()
    yield
    obs_trace.disable()
    obs_metrics.reset()


# ---------------------------------------------------------------------------
# trace: no-op fast path, span tree, export
# ---------------------------------------------------------------------------
class TestTraceDisabled:
    def test_disabled_by_default(self):
        assert not obs_trace.enabled()
        assert obs_trace.current() is None
        assert obs_trace.span_count() == 0

    def test_null_span_is_a_shared_singleton(self):
        a = obs_trace.span("x.y")
        b = obs_trace.span("other.name", attr=1)
        assert a is b  # zero allocation on the fast path
        with a:
            pass
        assert a.wall_s == 0.0 and a.cpu_s == 0.0

    def test_timed_span_still_measures_wall_time(self):
        with obs_trace.timed_span("x.y") as t:
            sum(range(1000))
        assert t.wall_s > 0.0


class TestTraceEnabled:
    def test_enable_disable_cycle(self):
        tracer = obs_trace.enable()
        assert obs_trace.enabled()
        assert obs_trace.current() is tracer
        assert obs_trace.disable() is tracer
        assert not obs_trace.enabled()
        assert obs_trace.disable() is None

    def test_double_enable_raises(self):
        obs_trace.enable()
        with pytest.raises(RuntimeError, match="already enabled"):
            obs_trace.enable()

    def test_ids_are_sequential_and_parents_nest(self):
        tracer = obs_trace.enable()
        with obs_trace.span("a.root"):
            with obs_trace.span("b.childone"):
                pass
            with obs_trace.span("b.childtwo", k=3):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert [s.span_id for s in tracer.spans] == [2, 3, 1]  # completion order
        assert by_name["a.root"].parent_id is None
        assert by_name["b.childone"].parent_id == by_name["a.root"].span_id
        assert by_name["b.childtwo"].parent_id == by_name["a.root"].span_id
        assert by_name["b.childtwo"].attrs == {"k": 3}
        assert obs_trace.span_count() == 3

    def test_timed_span_becomes_a_real_span(self):
        tracer = obs_trace.enable()
        with obs_trace.timed_span("x.y") as t:
            pass
        assert tracer.spans[0].name == "x.y"
        assert t.wall_s == tracer.spans[0].wall_s

    def test_memory_off_records_none(self):
        tracer = obs_trace.enable(memory=False)
        with obs_trace.span("x.y"):
            pass
        assert tracer.spans[0].mem_bytes is None

    def test_memory_on_records_tracemalloc_delta(self):
        tracer = obs_trace.enable(memory=True)
        with obs_trace.span("x.y"):
            blob = [bytearray(64 * 1024)]
            with obs_trace.span("x.inner"):
                pass
            del blob
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["x.y"].mem_bytes is not None
        assert by_name["x.inner"].mem_bytes is not None
        obs_trace.disable()
        import tracemalloc

        assert not tracemalloc.is_tracing()  # we started it, we stop it


class TestTraceJsonl:
    def _trace_file(self, tmp_path):
        tracer = obs_trace.enable()
        with obs_trace.span("a.root", mode="test"):
            with obs_trace.span("b.child"):
                pass
        obs_trace.disable()
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            assert tracer.write_jsonl(fh) == 2
        return path, tracer

    def test_round_trip(self, tmp_path):
        path, tracer = self._trace_file(tmp_path)
        loaded = read_jsonl(str(path))
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in tracer.spans
        ]

    def test_lines_are_sorted_key_objects(self, tmp_path):
        path, _ = self._trace_file(tmp_path)
        for line in path.read_text().splitlines():
            data = json.loads(line)
            assert list(data) == sorted(data)
            assert set(data) == {
                "id", "parent", "name", "start_s", "wall_s", "cpu_s",
                "mem_bytes", "attrs",
            }

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(str(path))

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            read_jsonl(str(path))

    def test_read_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1}\n')
        with pytest.raises(ValueError, match="bad span"):
            read_jsonl(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path, _ = self._trace_file(tmp_path)
        padded = tmp_path / "padded.jsonl"
        padded.write_text("\n" + path.read_text() + "\n\n")
        assert len(read_jsonl(str(padded))) == 2


# ---------------------------------------------------------------------------
# metrics: counters, gauges, histograms, registry contract
# ---------------------------------------------------------------------------
class TestMetricPrimitives:
    def test_counter(self):
        c = Counter("a.b")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == {"type": "counter", "value": 5}

    def test_gauge_tracks_max(self):
        g = Gauge("a.b")
        g.set(7)
        g.set(3)
        assert g.value == 3 and g.max_value == 7
        assert g.to_dict() == {"type": "gauge", "value": 3, "max": 7}

    def test_histogram_percentiles_are_upper_edges(self):
        h = Histogram("a.b", bounds=[1, 2, 4, 8])
        for v in [0.5, 1.5, 1.6, 3.0, 7.0]:
            h.observe(v)
        assert h.count == 5 and h.min == 0.5 and h.max == 7.0
        assert h.percentile(0.5) == 2  # rank 2.5 lands in the (1, 2] bucket
        assert h.percentile(1.0) == 8

    def test_histogram_overflow_answers_exact_max(self):
        h = Histogram("a.b", bounds=[1, 2])
        h.observe(100.0)
        assert h.percentile(0.99) == 100.0

    def test_histogram_empty_and_bad_q(self):
        h = Histogram("a.b", bounds=[1])
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError, match="q must be"):
            h.percentile(50)
        assert h.to_dict()["min"] is None and h.to_dict()["max"] is None

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("a.b", bounds=[2, 1])
        with pytest.raises(ValueError, match="sorted"):
            Histogram("a.b", bounds=[])


class TestRegistry:
    def test_name_convention_enforced(self):
        reg = MetricsRegistry()
        for bad in ("flat", "Has.Upper", "a..b", ".a.b", "a.b."):
            with pytest.raises(ValueError, match="layer.component.metric"):
                reg.counter(bad)

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("a.g") is reg.gauge("a.g")
        assert reg.histogram("a.h") is reg.histogram("a.h")

    def test_type_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="counter, not a gauge"):
            reg.gauge("a.b")
        with pytest.raises(ValueError, match="not a histogram"):
            reg.histogram("a.b")
        reg.histogram("a.h")
        with pytest.raises(ValueError, match="histogram, not a counter"):
            reg.counter("a.h")

    def test_histogram_bound_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("a.h", bounds=[1, 2])
        reg.histogram("a.h", bounds=[1, 2])  # same bounds: fine
        reg.histogram("a.h")  # no bounds: fine
        with pytest.raises(ValueError, match="different bounds"):
            reg.histogram("a.h", bounds=[1, 2, 3])

    def test_snapshot_is_sorted_and_picklable(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.gauge("a.first").set(2)
        reg.histogram("m.mid", bounds=[1]).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a.first", "m.mid", "z.last"]
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_scalars_excludes_histograms(self):
        reg = MetricsRegistry()
        reg.counter("a.c").inc(3)
        reg.gauge("a.g").set(5)
        reg.histogram("a.h").observe(1.0)
        assert reg.scalars() == {"a.c": 3, "a.g": 5}

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("a.c")
        c.inc(3)
        g = reg.gauge("a.g")
        g.set(5)
        h = reg.histogram("a.h", bounds=[1, 2])
        h.observe(1.5)
        reg.reset()
        assert reg.names() == ["a.c", "a.g", "a.h"]
        assert c.value == 0
        assert g.value == 0 and g.max_value == 0 and not g.observed
        assert h.count == 0 and h.counts == [0, 0, 0] and h.total == 0.0
        assert reg.counter("a.c") is c  # identity survives reset


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x.c").inc(2)
        b.counter("x.c").inc(5)
        a.merge(b.snapshot())
        assert a.counter("x.c").value == 7

    def test_gauges_keep_the_busiest_level(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("x.g").set(4)
        b.gauge("x.g").set(9)
        b.gauge("x.g").set(1)
        a.merge(b.snapshot())
        assert a.gauge("x.g").value == 4  # max of last-values 4 and 1
        assert a.gauge("x.g").max_value == 9

    def test_merged_histogram_equals_single_registry(self):
        whole = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(3)]
        values = [0.4, 1.1, 2.5, 0.9, 8.0, 3.3, 0.1]
        for i, v in enumerate(values):
            whole.histogram("x.h", bounds=[1, 2, 4]).observe(v)
            parts[i % 3].histogram("x.h", bounds=[1, 2, 4]).observe(v)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_merge_into_empty_creates_metrics(self):
        src = MetricsRegistry()
        src.counter("x.c").inc(2)
        src.histogram("x.h", bounds=[1]).observe(0.5)
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_mismatched_buckets_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("x.h", bounds=[1, 2])
        b.histogram("x.h", bounds=[1, 2, 4]).observe(1.0)
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b.snapshot())

    def test_unknown_metric_type_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric type"):
            reg.merge({"x.y": {"type": "summary", "value": 1}})


# ---------------------------------------------------------------------------
# certify pool: worker-local aggregation merges exactly
# ---------------------------------------------------------------------------
class TestCertifyPoolMerge:
    def _certified_snapshot(self, workers):
        from repro.analysis import certify_edge_stretch

        g = erdos_renyi_graph(40, 0.3, seed=5)
        mst = kruskal_mst(g)
        obs_metrics.reset()
        cert = certify_edge_stretch(g, mst, bound=50.0, workers=workers)
        assert cert.max_stretch >= 1.0
        snap = obs_metrics.snapshot()
        return {
            name: data for name, data in snap.items()
            if name.startswith("certify.")
        }

    def test_workers4_totals_equal_workers1(self):
        serial = self._certified_snapshot(1)
        pooled = self._certified_snapshot(4)
        assert "certify.source.targets" in serial
        assert serial["certify.source.targets"]["count"] > 0
        assert pooled == serial

    def test_targets_histogram_uses_count_bounds(self):
        self._certified_snapshot(1)
        hist = obs_metrics.registry().histogram("certify.source.targets")
        assert hist.bounds == tuple(float(b) for b in DEFAULT_COUNT_BOUNDS)


# ---------------------------------------------------------------------------
# oracle: per-instance registry, latency only under tracing
# ---------------------------------------------------------------------------
class TestOracleInstrumentation:
    def _oracle(self, seed=1):
        g = erdos_renyi_graph(20, 0.3, seed=seed)
        return DistanceOracle.build(g, landmarks=3, seed=seed), g

    def test_two_oracles_do_not_share_counters(self):
        a, g = self._oracle(1)
        b, _ = self._oracle(2)
        u, v = sorted(g.vertices())[:2]
        a.query(u, v)
        a.query(u, v)
        assert a.hits + a.misses == 2
        assert b.hits == 0 and b.misses == 0

    def test_reset_cache_is_per_oracle(self):
        a, g = self._oracle(1)
        b, _ = self._oracle(1)
        u, v = sorted(g.vertices())[:2]
        a.query(u, v)
        b.query(u, v)
        a.reset_cache()
        assert a.hits == 0 and a.misses == 0
        assert b.hits + b.misses == 1

    def test_latency_histogram_only_populated_under_tracing(self):
        oracle, g = self._oracle(1)
        verts = sorted(g.vertices())
        oracle.query(verts[0], verts[1])
        assert oracle.metrics.histogram("oracle.query.latency_ms").count == 0
        obs_trace.enable()
        oracle.query(verts[0], verts[2])
        assert oracle.metrics.histogram("oracle.query.latency_ms").count == 1

    def test_cache_info_matches_registry(self):
        oracle, g = self._oracle(1)
        verts = sorted(g.vertices())
        oracle.query(verts[0], verts[1])
        oracle.query(verts[0], verts[1])
        info = oracle.cache_info()
        assert info["hits"] == oracle.hits == 1
        assert info["misses"] == oracle.misses == 1


# ---------------------------------------------------------------------------
# CONGEST: lifetime counters, reset semantics, global fold
# ---------------------------------------------------------------------------
class TestNetworkCounters:
    def test_reset_clears_per_run_but_not_lifetime(self):
        g = grid_graph(4, 4)
        net = SyncNetwork(g)
        build_bfs_tree(g, min(g.vertices()), network=net)
        totals = (
            net.total_rounds, net.total_messages_sent,
            net.total_words_sent, net.total_active_node_rounds,
        )
        assert net.rounds_executed > 0 and net.messages_sent > 0
        assert totals == (
            net.rounds_executed, net.messages_sent,
            net.words_sent, net.active_node_rounds,
        )
        net.reset()
        assert (net.rounds_executed, net.messages_sent,
                net.words_sent, net.active_node_rounds) == (0, 0, 0, 0)
        assert (net.total_rounds, net.total_messages_sent,
                net.total_words_sent, net.total_active_node_rounds) == totals

    def test_run_folds_deltas_into_global_registry(self):
        g = path_graph(6)
        net = SyncNetwork(g)
        build_bfs_tree(g, min(g.vertices()), network=net)
        scal = obs_metrics.scalars()
        assert scal["congest.rounds.executed"] == net.total_rounds
        assert scal["congest.messages.sent"] == net.total_messages_sent
        assert scal["congest.words.sent"] == net.total_words_sent
        assert (
            scal["congest.active_node.rounds"]
            == net.total_active_node_rounds
        )
        gauge = obs_metrics.registry().gauge("congest.network.active_nodes")
        assert gauge.observed
        assert 1 <= gauge.max_value <= g.n

    def test_second_run_accumulates_across_reset(self):
        g = path_graph(5)
        net = SyncNetwork(g)
        build_bfs_tree(g, min(g.vertices()), network=net)
        first = obs_metrics.scalars()["congest.messages.sent"]
        build_bfs_tree(g, min(g.vertices()), network=net)  # reset()s inside
        second = obs_metrics.scalars()["congest.messages.sent"]
        assert second == 2 * first


# ---------------------------------------------------------------------------
# harness: observability block, nullable memory, net rounds
# ---------------------------------------------------------------------------
class TestObservabilityBlock:
    def test_disabled_block_shape(self):
        record = run_profile(
            get_profile("congest-bfs-grid"), "smoke", measure_memory=False
        )
        block = record.observability
        assert block is not None
        assert block["enabled"] is False
        assert block["span_count"] == 0
        metrics = block["metrics"]
        assert metrics["congest.rounds.executed"] > 0
        assert metrics["congest.messages.sent"] > 0
        assert record.net_rounds == record.rounds
        assert record.peak_memory_bytes is None  # --no-mem

    def test_traced_block_counts_spans(self):
        obs_trace.enable()
        record = run_profile(
            get_profile("mst-ring-of-cliques"), "smoke", measure_memory=False
        )
        tracer = obs_trace.disable()
        block = record.observability
        assert block["enabled"] is True
        assert block["span_count"] == len(tracer.spans)
        names = {s.name for s in tracer.spans}
        assert {"harness.profile", "harness.generate",
                "harness.build", "harness.certify"} <= names

    def test_block_metrics_are_per_record_deltas(self):
        p = get_profile("congest-bfs-grid")
        a = run_profile(p, "smoke", measure_memory=False)
        b = run_profile(p, "smoke", measure_memory=False)
        assert (
            a.observability["metrics"]["congest.messages.sent"]
            == b.observability["metrics"]["congest.messages.sent"]
        )

    def test_memory_pass_still_measures_when_asked(self):
        record = run_profile(
            get_profile("mst-ring-of-cliques"), "smoke", measure_memory=True
        )
        assert record.peak_memory_bytes is not None
        assert record.peak_memory_bytes > 0


# ---------------------------------------------------------------------------
# summary: aggregation, hot spans, rendering
# ---------------------------------------------------------------------------
def _span(sid, parent, name, wall, cpu=0.0, mem=None):
    return SpanRecord(
        span_id=sid, parent_id=parent, name=name,
        start_s=0.0, wall_s=wall, cpu_s=cpu, mem_bytes=mem,
    )


class TestSummary:
    def test_aggregate_folds_instances_by_path(self):
        spans = [
            _span(1, None, "suite", 10.0),
            _span(2, 1, "profile", 4.0),
            _span(3, 1, "profile", 5.0),
            _span(4, 3, "build", 2.0),
        ]
        roots = aggregate_spans(spans)
        assert len(roots) == 1
        suite = roots[0]
        assert suite.count == 1 and suite.total_wall_s == 10.0
        profile = suite.children[0]
        assert profile.count == 2 and profile.total_wall_s == 9.0
        assert profile.self_wall_s == pytest.approx(7.0)
        assert suite.self_wall_s == pytest.approx(1.0)

    def test_orphaned_parent_becomes_root(self):
        spans = [_span(5, 99, "lost", 1.0)]  # parent 99 not in trace
        roots = aggregate_spans(spans)
        assert [r.name for r in roots] == ["lost"]

    def test_hot_spans_rank_by_self_time(self):
        spans = [
            _span(1, None, "root", 10.0),
            _span(2, 1, "busy", 7.0),
            _span(3, 1, "idle", 1.0),
        ]
        roots = aggregate_spans(spans)
        ranked = hot_spans(roots, top=2)
        assert [n.name for n in ranked] == ["busy", "root"]
        assert hot_spans(roots, top=0) == []

    def test_render_tree_indents_children(self):
        spans = [_span(1, None, "root", 2.0), _span(2, 1, "child", 1.0)]
        text = render_tree(aggregate_spans(spans))
        lines = text.splitlines()
        assert any(line.endswith("root") for line in lines)
        assert any(line.endswith("  child") for line in lines)

    def test_render_includes_memory_column_when_traced(self):
        spans = [_span(1, None, "root", 2.0, mem=3 * 1024 * 1024)]
        assert "mem +3.00MiB" in render_tree(aggregate_spans(spans))

    def test_summarize_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "empty trace" in summarize_trace(str(path))

    def test_summarize_real_trace(self, tmp_path):
        tracer = obs_trace.enable()
        with obs_trace.span("a.root"):
            with obs_trace.span("b.child"):
                pass
        obs_trace.disable()
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            tracer.write_jsonl(fh)
        text = summarize_trace(str(path), top=5)
        assert "2 spans" in text
        assert "a.root" in text and "b.child" in text
        assert "top" in text and "a.root > b.child" in text


# ---------------------------------------------------------------------------
# CLI: bench --trace / --no-mem, trace summarize
# ---------------------------------------------------------------------------
class TestCliTrace:
    def test_bench_trace_and_no_mem(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.jsonl"
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--profile", "congest-bfs-grid", "--no-mem",
            "--trace", str(trace), "--out", str(out),
        ])
        assert rc == 0
        assert "span(s)" in capsys.readouterr().out
        assert not obs_trace.enabled()  # bench disables its tracer on exit

        spans = read_jsonl(str(trace))
        names = {s.name for s in spans}
        assert {"harness.suite", "harness.profile", "harness.generate",
                "harness.build", "harness.certify", "congest.run"} <= names

        report = json.loads(out.read_text())
        assert report["schema_version"] == 6
        record = report["records"][0]
        assert record["peak_memory_bytes"] is None  # --no-mem
        assert record["observability"]["enabled"] is True
        assert record["observability"]["span_count"] > 0
        assert record["network"]["rounds"] == record["rounds"]

        rc = main(["trace", "summarize", str(trace), "--top", "3"])
        assert rc == 0
        summary = capsys.readouterr().out
        assert "harness.profile" in summary and "top 3" in summary

    def test_trace_summarize_missing_file_is_rc2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", "summarize", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err
