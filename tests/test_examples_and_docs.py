"""Smoke tests: every example runs, and the README's code executes.

A repository whose README or examples drift out of sync with the API is
broken for its first user — these tests pin them to the code.
"""

import importlib.util
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    module = _load_module(path)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{path.name} should print a report"


def test_examples_exist_and_cover_scenarios():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the deliverable requires >= 3 examples"


def _python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, re.DOTALL)


def test_readme_python_blocks_execute():
    readme = (REPO_ROOT / "README.md").read_text()
    blocks = _python_blocks(readme)
    assert blocks, "README should contain a python quickstart"
    for block in blocks:
        exec(compile(block, "<README>", "exec"), {})


def test_design_md_mentions_every_core_module():
    design = (REPO_ROOT / "DESIGN.md").read_text()
    core = sorted(Path(REPO_ROOT, "src", "repro", "core").glob("*.py"))
    for module in core:
        if module.stem == "__init__":
            continue
        assert module.stem in design, f"DESIGN.md must index core/{module.name}"


def test_experiments_md_covers_every_table1_row():
    experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    for row in ("T1-row1", "T1-row2", "T1-row3", "T1-row4", "§8"):
        assert row in experiments
