"""Tests for the §5 light spanner (Theorem 2)."""
import random

import pytest

from repro.analysis import (
    lightness,
    sparsity,
    verify_spanner,
)
from repro.core import light_spanner
from repro.graphs import erdos_renyi_graph
from repro.mst.kruskal import kruskal_mst


class TestGuarantees:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_stretch_deterministic(self, k, seed):
        g = erdos_renyi_graph(50, 0.2, seed=seed)
        res = light_spanner(g, k, 0.25, random.Random(seed))
        verify_spanner(g, res.spanner, res.stretch_bound)

    def test_stretch_bound_formula(self, small_er):
        res = light_spanner(small_er, 2, 0.25, random.Random(0))
        assert res.stretch_bound == pytest.approx(3 * 1.0 * (1 + 4 * 0.25))

    def test_contains_mst(self, medium_er):
        res = light_spanner(medium_er, 2, 0.25, random.Random(1))
        mst = kruskal_mst(medium_er)
        for u, v, _ in mst.edges():
            assert res.spanner.has_edge(u, v)

    def test_spanner_connected_and_spanning(self, medium_er):
        res = light_spanner(medium_er, 3, 0.25, random.Random(2))
        assert res.spanner.is_connected()
        assert set(res.spanner.vertices()) == set(medium_er.vertices())

    def test_lightness_shrinks_with_k(self):
        """O(k·n^{1/k}): larger k should give (weakly) lighter spanners on
        dense inputs, averaged over seeds."""
        def avg_light(k):
            vals = []
            for seed in range(5):
                g = erdos_renyi_graph(60, 0.4, seed=seed)
                res = light_spanner(g, k, 0.25, random.Random(seed))
                vals.append(lightness(g, res.spanner))
            return sum(vals) / len(vals)

        assert avg_light(3) <= avg_light(1) + 1e-9

    def test_size_reasonable_for_k2(self):
        n = 70
        sizes = []
        for seed in range(5):
            g = erdos_renyi_graph(n, 0.4, seed=seed)
            res = light_spanner(g, 2, 0.25, random.Random(seed))
            sizes.append(sparsity(res.spanner))
        avg = sum(sizes) / len(sizes)
        # O(k·n^{1+1/k}) with a generous constant
        assert avg <= 10 * 2 * n ** 1.5

    def test_heavy_ring_crossover(self, heavy_ring):
        """Heavy inter-clique edges land in low buckets; the spanner must
        still certify its stretch with few of them."""
        res = light_spanner(heavy_ring, 2, 0.25, random.Random(3))
        verify_spanner(heavy_ring, res.spanner, res.stretch_bound)


class TestBuckets:
    def test_bucket_partition_covers_weight_range(self, medium_er):
        res = light_spanner(medium_er, 2, 0.25, random.Random(0))
        big_l = 2 * kruskal_mst(medium_er).total_weight()
        covered = sum(b.num_edges for b in res.buckets)
        in_range = sum(
            1 for _, _, w in medium_er.edges() if w <= big_l
        )
        assert covered == in_range

    def test_bucket_weight_ranges_respected(self, medium_er):
        eps = 0.25
        res = light_spanner(medium_er, 2, eps, random.Random(0))
        big_l = 2 * kruskal_mst(medium_er).total_weight()
        by_index = {b.index: b for b in res.buckets}
        for u, v, w in medium_er.edges():
            if w <= big_l / medium_er.n or w > big_l:
                continue
            i = next(
                i for i in by_index
                if i >= 0
                and big_l / (1 + eps) ** (i + 1) < w <= big_l / (1 + eps) ** i
            )
            assert i >= 0

    def test_eprime_bucket_has_index_minus_one(self, medium_er):
        res = light_spanner(medium_er, 2, 0.25, random.Random(0))
        assert res.buckets[0].index == -1
        assert res.buckets[0].case == 0

    def test_case_assignment_monotone(self):
        """Low buckets (big w_i, few clusters) are case 1; high buckets
        case 2 — the switch happens once."""
        g = erdos_renyi_graph(80, 0.2, min_weight=1.0, max_weight=5000.0, seed=4)
        res = light_spanner(g, 2, 0.25, random.Random(4))
        cases = [b.case for b in res.buckets if b.index >= 0]
        if 1 in cases and 2 in cases:
            assert cases.index(2) >= len([c for c in cases if c == 1])

    def test_cluster_count_grows_with_bucket_index(self):
        g = erdos_renyi_graph(80, 0.2, min_weight=1.0, max_weight=5000.0, seed=5)
        res = light_spanner(g, 2, 0.25, random.Random(5))
        real = [b for b in res.buckets if b.index >= 0 and b.num_edges > 0]
        if len(real) >= 2:
            assert real[-1].num_clusters >= real[0].num_clusters


class TestRounds:
    def test_ledger_itemized(self, medium_er):
        res = light_spanner(medium_er, 2, 0.25, random.Random(0))
        phases = res.ledger.by_phase()
        assert "bfs-tree" in phases
        assert "mst-construction" in phases
        assert any(p.startswith("tour:") for p in phases)
        assert any(p.startswith("E':") for p in phases)
        assert res.rounds == res.ledger.total > 0

    def test_rounds_scale_sublinearly_in_n(self):
        """Theorem 2: Õ(n^{1/2+1/(4k+2)} + D) — quadrupling n should far
        less than quadruple the rounds."""
        def rounds_at(n, seed=0):
            g = erdos_renyi_graph(n, min(1.0, 8.0 / n), seed=seed)
            return light_spanner(g, 2, 0.25, random.Random(seed)).rounds

        small, large = rounds_at(40), rounds_at(160)
        assert large < 3.2 * small


class TestValidation:
    def test_invalid_k(self, small_er):
        with pytest.raises(ValueError):
            light_spanner(small_er, 0, 0.25)

    @pytest.mark.parametrize("eps", [0.0, 0.75, 1.5])
    def test_invalid_eps(self, small_er, eps):
        with pytest.raises(ValueError):
            light_spanner(small_er, 2, eps)

    def test_works_on_all_workloads(self, workload):
        res = light_spanner(workload, 2, 0.25, random.Random(7))
        verify_spanner(workload, res.spanner, res.stretch_bound)
