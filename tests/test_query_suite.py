"""Query-workload harness integration and report-schema compatibility.

Covers the schema-v4 ``queries`` block end to end — mix determinism,
record round-trip, the ``--suite queries`` CLI path — and the report
compatibility contract: a report from any older schema version compares
cleanly under the current code, reporting ``metric absent`` per record
for blocks it predates instead of raising.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.harness import (
    QUERY_MIXES,
    TIERS,
    QueryMix,
    build_query_mix,
    compare_reports,
    get_profile,
    load_report,
    make_report,
    queryable_profiles,
    run_profile,
    run_query_workload,
    write_report,
)
from repro.harness.runner import ProfileRecord

QUERY_BLOCK_KEYS = {
    "count", "pair_queries", "k_nearest_queries", "k", "landmarks",
    "strategy", "build_seconds", "served_seconds", "p50_ms", "p99_ms",
    "qps", "cache_hits", "cache_misses", "cache_hit_rate",
}


class TestQueryWorkload:
    def test_every_tier_has_a_mix(self):
        assert set(QUERY_MIXES) == set(TIERS)

    def test_mix_is_deterministic(self, medium_er):
        mix = QUERY_MIXES["smoke"]
        assert build_query_mix(medium_er, mix, seed=9) == \
            build_query_mix(medium_er, mix, seed=9)
        a, _ = build_query_mix(medium_er, mix, seed=9)
        b, _ = build_query_mix(medium_er, mix, seed=10)
        assert a != b

    def test_workload_block_shape(self, medium_er):
        mix = QueryMix(pairs=50, hot_set=8, hot_fraction=0.5,
                       k_nearest=5, k=3, landmarks=2)
        block = run_query_workload(medium_er, mix, seed=1)
        assert set(block) == QUERY_BLOCK_KEYS
        assert block["count"] == 55
        assert block["cache_hits"] + block["cache_misses"] == 50
        assert block["cache_hits"] > 0  # the hot set repeats
        assert block["p99_ms"] >= block["p50_ms"] >= 0.0
        assert block["qps"] > 0

    def test_cache_split_is_seeded_deterministic(self, medium_er):
        mix = QUERY_MIXES["smoke"]
        a = run_query_workload(medium_er, mix, seed=4)
        b = run_query_workload(medium_er, mix, seed=4)
        assert a["cache_hits"] == b["cache_hits"]
        assert a["cache_misses"] == b["cache_misses"]

    def test_tiny_structure_workload(self, triangle):
        mix = QueryMix(pairs=10, hot_set=2, hot_fraction=1.0,
                       k_nearest=2, k=2, landmarks=1)
        block = run_query_workload(triangle, mix, seed=0)
        assert block["count"] == 12


class TestRunProfileQueries:
    def test_queryable_profile_gets_the_block(self):
        record = run_profile(get_profile("baswana-sen-er"), "smoke",
                             measure_memory=False, queries=True)
        assert record.queries is not None
        assert set(record.queries) == QUERY_BLOCK_KEYS
        # round-trips through the JSON form
        thawed = ProfileRecord.from_dict(record.to_dict())
        assert thawed.queries == record.queries

    def test_unqueryable_profile_ignores_the_flag(self):
        record = run_profile(get_profile("net-er"), "smoke",
                             measure_memory=False, queries=True)
        assert record.queries is None

    def test_queries_off_by_default(self):
        record = run_profile(get_profile("mst-ring-of-cliques"), "smoke",
                             measure_memory=False)
        assert record.queries is None

    def test_queryable_profiles_cover_spanners_and_trees(self):
        names = {p.algorithm for p in queryable_profiles()}
        assert {"baswana-sen", "light-spanner", "slt", "mst"} <= names
        assert not any(a.startswith("congest-") for a in names)


def _v1_report(records):
    """A schema-version-1 document: record dicts stripped of every block
    that a later schema version introduced."""
    report = make_report(records, suite="smoke")
    report["schema_version"] = 1
    for rec in report["records"]:
        for newer in ("network", "certification", "queries"):
            rec.pop(newer, None)
    return report


class TestSchemaCompatibility:
    @pytest.fixture
    def current(self):
        record = run_profile(get_profile("baswana-sen-er"), "smoke",
                             measure_memory=False, queries=True)
        return make_report([record], suite="smoke")

    def test_report_is_schema_v6(self, current):
        assert current["schema_version"] == 6
        assert current["records"][0]["queries"] is not None

    def test_v1_report_loads_and_compares_without_keyerror(self, current, tmp_path):
        record = run_profile(get_profile("baswana-sen-er"), "smoke",
                             measure_memory=False)
        v1 = _v1_report([record])
        path = tmp_path / "v1.json"
        write_report(v1, path)
        baseline = load_report(path)

        # v1 baseline vs v4 current: newer blocks are absent per record,
        # never a KeyError, never a gate failure by themselves
        comparison = compare_reports(baseline, current)
        rendered = comparison.render()
        assert "metric absent" in rendered
        absent = [d for d in comparison.deltas if d.status == "absent"]
        assert {d.quantity for d in absent} >= {
            "query_p50_ms", "query_p99_ms", "query_qps",
            "query_cache_hits", "query_cache_misses",
        }
        assert all(d.baseline is None for d in absent)
        assert comparison.ok

    def test_v4_baseline_vs_v1_current_direction(self, current):
        record = run_profile(get_profile("baswana-sen-er"), "smoke",
                             measure_memory=False)
        v1 = _v1_report([record])
        comparison = compare_reports(current, v1)
        absent = [d for d in comparison.deltas if d.status == "absent"]
        assert absent and all(d.current is None for d in absent)
        assert "metric absent from the current run" in comparison.render()

    def test_absent_never_counts_as_regression(self, current):
        v1 = _v1_report([ProfileRecord.from_dict(
            dict(current["records"][0], queries=None))])
        comparison = compare_reports(v1, current)
        assert not any(d.status == "regression" and d.quantity.startswith("query_")
                       for d in comparison.deltas)

    def test_v1_record_without_newer_blocks_loads(self):
        # every field schema v1 wrote, none of the newer blocks: loads
        # with the blocks absent — while a record missing a field every
        # schema writes (a corrupt baseline) still fails loudly
        v1_record = {
            "profile": "p", "tier": "smoke", "family": "er",
            "algorithm": "baswana-sen", "section": "§5", "seed": 0,
            "params": {}, "graph": {"n": 5, "m": 4},
            "timings": {"generation_seconds": 0.1,
                        "construction_seconds": 0.2,
                        "certification_seconds": 0.3},
            "peak_memory_bytes": 10, "rounds": 7, "metrics": {}, "ok": True,
        }
        record = ProfileRecord.from_dict(v1_record)
        assert record.messages is None
        assert record.certification is None
        assert record.queries is None

        corrupt = dict(v1_record)
        del corrupt["peak_memory_bytes"]
        with pytest.raises(KeyError):
            ProfileRecord.from_dict(corrupt)


class TestQueriesCLI:
    def test_suite_queries_writes_v5_report(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        rc = main(["bench", "--suite", "queries", "--no-memory",
                   "--profile", "mst-ring-of-cliques",
                   "--profile", "slt-er",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "p50" in text and "hit-rate" in text
        report = json.loads(out.read_text())
        assert report["schema_version"] == 6
        assert all(r["queries"] for r in report["records"])

    def test_queries_flag_on_a_tier_suite(self, tmp_path, capsys):
        out = tmp_path / "q.json"
        rc = main(["bench", "--suite", "smoke", "--queries", "--no-memory",
                   "--profile", "greedy-spanner-er", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["records"][0]["queries"]["cache_hits"] > 0

    def test_compare_roundtrip_gates_green(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        args = ["bench", "--suite", "queries", "--no-memory",
                "--profile", "mst-ring-of-cliques"]
        assert main(args + ["--out", str(out)]) == 0
        # query_qps gates wall clock over a ~millisecond serving window,
        # so one scheduler hiccup on a busy runner can halve it; a single
        # retry absorbs that while a real regression still fails twice.
        if main(args + ["--compare", str(out)]) != 0:
            capsys.readouterr()
            assert main(args + ["--compare", str(out)]) == 0
        assert "PASS" in capsys.readouterr().out
