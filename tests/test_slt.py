"""Tests for the §4 shallow-light tree (Theorem 1)."""

import pytest

from repro.analysis import lightness, root_stretch, verify_slt, verify_spanning_tree
from repro.baselines import kry_slt
from repro.core import shallow_light_tree, slt_base
from repro.graphs import (
    star_graph,
)
from repro.mst.kruskal import kruskal_mst


class TestSLTBase:
    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    def test_guarantees_hold(self, medium_er, eps):
        res = slt_base(medium_er, 0, eps)
        verify_slt(medium_er, res.tree, 0, res.stretch_bound, res.lightness_bound)

    def test_is_spanning_tree(self, medium_er):
        res = slt_base(medium_er, 0, 0.5)
        verify_spanning_tree(medium_er, res.tree)

    def test_measured_far_below_bounds(self, medium_er):
        """On benign inputs the construction is much better than the
        worst-case constants."""
        res = slt_base(medium_er, 0, 0.5)
        assert root_stretch(medium_er, res.tree, 0) <= 1 + 5 * 0.5
        assert lightness(medium_er, res.tree) <= 1 + 8 / 0.5

    def test_star_rim_classic_tradeoff(self):
        """The star+rim where the MST has terrible root stretch: the SLT
        must fix the stretch while staying light."""
        g = star_graph(20, spoke_weight=10.0, rim_weight=1.0)
        mst = kruskal_mst(g)
        assert root_stretch(g, mst, 0) > 1.8  # MST alone is bad
        res = slt_base(g, 0, 0.5)
        assert root_stretch(g, res.tree, 0) <= res.stretch_bound
        verify_slt(g, res.tree, 0, res.stretch_bound, res.lightness_bound)

    def test_smaller_eps_means_better_stretch(self, medium_er):
        tight = slt_base(medium_er, 0, 0.1)
        loose = slt_base(medium_er, 0, 1.0)
        assert root_stretch(medium_er, tight.tree, 0) <= root_stretch(
            medium_er, loose.tree, 0
        ) + 1e-9

    def test_break_points_structure(self, medium_er):
        res = slt_base(medium_er, 0, 0.5)
        assert 0 in res.break_points  # rt always a break point (BP2)
        assert res.anchor_points[0] == 0
        assert all(0 <= b < 2 * medium_er.n - 1 for b in res.break_points)

    def test_h_contains_mst_and_tree(self, medium_er):
        res = slt_base(medium_er, 0, 0.5)
        mst = kruskal_mst(medium_er)
        for u, v, _ in mst.edges():
            assert res.intermediate.has_edge(u, v)
        for u, v, _ in res.tree.edges():
            assert res.intermediate.has_edge(u, v)

    def test_corollary_3_lightness_of_h(self, medium_er):
        """w(H) <= (1 + 4/ε)·w(T) — Corollary 3."""
        for eps in (0.25, 0.5, 1.0):
            res = slt_base(medium_er, 0, eps)
            mst_w = kruskal_mst(medium_er).total_weight()
            assert res.intermediate.total_weight() <= (1 + 4 / eps) * mst_w + 1e-6

    def test_round_accounting_phases(self, medium_er):
        res = slt_base(medium_er, 0, 0.5)
        phases = res.ledger.by_phase()
        for expected in (
            "bfs-tree",
            "mst-construction",
            "approx-spt-G",
            "bp1-interval-scan",
            "bp2-convergecast",
            "bp2-broadcast",
            "abp-local",
            "abp-broadcast",
            "approx-spt-H",
        ):
            assert expected in phases, expected
        assert any(p.startswith("tour:") for p in phases)

    def test_invalid_eps(self, small_er):
        with pytest.raises(ValueError):
            slt_base(small_er, 0, 0.0)
        with pytest.raises(ValueError):
            slt_base(small_er, 0, 1.5)


class TestTheorem1Parametrization:
    @pytest.mark.parametrize("alpha", [6.0, 10.0, 21.0])
    def test_direct_regime(self, medium_er, alpha):
        res = shallow_light_tree(medium_er, 0, alpha)
        verify_slt(medium_er, res.tree, 0, res.stretch_bound, alpha)

    @pytest.mark.parametrize("alpha", [1.2, 1.5, 2.0, 4.0])
    def test_bfn_regime_lightness_close_to_one(self, medium_er, alpha):
        res = shallow_light_tree(medium_er, 0, alpha)
        verify_slt(medium_er, res.tree, 0, res.stretch_bound, alpha)

    def test_bfn_regime_is_actually_light(self, medium_er):
        res = shallow_light_tree(medium_er, 0, 1.1)
        assert lightness(medium_er, res.tree) <= 1.1 + 1e-9

    def test_stretch_bound_shrinks_with_alpha(self, medium_er):
        loose = shallow_light_tree(medium_er, 0, 2.0)
        tight = shallow_light_tree(medium_er, 0, 30.0)
        assert tight.stretch_bound < loose.stretch_bound

    def test_alpha_at_most_one_rejected(self, small_er):
        with pytest.raises(ValueError):
            shallow_light_tree(small_er, 0, 1.0)

    @pytest.mark.parametrize("alpha", [1.5, 8.0])
    def test_works_on_all_workloads(self, workload, alpha):
        root = min(workload.vertices(), key=repr)
        res = shallow_light_tree(workload, root, alpha)
        verify_slt(workload, res.tree, root, res.stretch_bound, alpha)


class TestKRYBaseline:
    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    def test_guarantees(self, medium_er, eps):
        res = kry_slt(medium_er, 0, eps)
        verify_slt(medium_er, res.tree, 0, 1 + 2 * eps, 1 + 2 / eps)

    def test_on_heavy_ring(self, heavy_ring):
        root = min(heavy_ring.vertices(), key=repr)
        res = kry_slt(heavy_ring, root, 0.5)
        verify_slt(heavy_ring, res.tree, root, 2.0, 5.0)

    def test_sequential_scan_charged_linear(self, medium_er):
        res = kry_slt(medium_er, 0, 0.5)
        assert res.ledger.by_phase()["sequential-scan"] == 2 * medium_er.n - 1

    def test_invalid_eps(self, small_er):
        with pytest.raises(ValueError):
            kry_slt(small_er, 0, -1.0)

    def test_two_phase_lightness_within_constant_of_sequential(self, medium_er):
        """§4.1's analysis: the two-step choice of break points loses only
        a constant factor in the lightness vs the sequential scan."""
        eps = 0.5
        ours = slt_base(medium_er, 0, eps)
        seq = kry_slt(medium_er, 0, eps)
        ours_light = lightness(medium_er, ours.intermediate)
        seq_light = lightness(medium_er, seq.intermediate)
        assert ours_light <= 3 * seq_light + 1e-9
