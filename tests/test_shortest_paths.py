"""Unit tests for the sequential shortest-path routines."""

import pytest

from repro.graphs import (
    WeightedGraph,
    cycle_graph,
    dijkstra,
    dijkstra_path,
    bounded_dijkstra,
    all_pairs_shortest_paths,
    eccentricity,
    grid_graph,
    hop_distances,
    hop_diameter,
    path_graph,
)
from repro.graphs.shortest_paths import path_weight, strong_diameter, weak_diameter


class TestDijkstra:
    def test_path_graph_distances(self):
        g = path_graph(5, [1.0, 2.0, 3.0, 4.0])
        dist, parent = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0, 4: 10.0}
        assert parent[4] == 3 and parent[0] is None

    def test_prefers_light_detour(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(2, 1, 1.0)
        dist, parent = dijkstra(g, 0)
        assert dist[1] == 2.0
        assert parent[1] == 2

    def test_multi_source(self):
        g = path_graph(7)
        dist, _ = dijkstra(g, [0, 6])
        assert dist[3] == 3.0
        assert dist[1] == 1.0
        assert dist[5] == 1.0

    def test_unreachable_absent(self):
        g = WeightedGraph(range(3))
        g.add_edge(0, 1, 1.0)
        dist, _ = dijkstra(g, 0)
        assert 2 not in dist

    def test_weight_override(self):
        g = path_graph(3, [1.0, 1.0])
        dist, _ = dijkstra(g, 0, weight_override={(1, 2): 10.0})
        assert dist[2] == 11.0


class TestDijkstraPath:
    def test_returns_actual_path(self, triangle):
        d, path = dijkstra_path(triangle, 0, 2)
        assert d == pytest.approx(2.5)
        assert path == [0, 2]
        assert path_weight(triangle, path) == pytest.approx(d)

    def test_unreachable_raises(self):
        g = WeightedGraph(range(2))
        with pytest.raises(ValueError):
            dijkstra_path(g, 0, 1)


class TestBoundedDijkstra:
    def test_respects_radius(self):
        g = path_graph(10)
        dist, _ = bounded_dijkstra(g, 0, 3.0)
        assert set(dist) == {0, 1, 2, 3}

    def test_matches_unbounded_within_ball(self, small_er):
        full, _ = dijkstra(small_er, 0)
        bounded, _ = bounded_dijkstra(small_er, 0, 50.0)
        for v, d in bounded.items():
            assert d == pytest.approx(full[v])
        for v, d in full.items():
            if d <= 50.0:
                assert v in bounded

    def test_multi_source(self):
        g = path_graph(9)
        dist, parent = bounded_dijkstra(g, [0, 8], 2.0)
        assert set(dist) == {0, 1, 2, 6, 7, 8}
        assert parent[0] is None and parent[8] is None
        assert dist[7] == 1.0

    def test_multi_source_matches_unbounded(self, small_er):
        full, _ = dijkstra(small_er, [0, 5])
        bounded, _ = bounded_dijkstra(small_er, [0, 5], 40.0)
        assert bounded == {v: d for v, d in full.items() if d <= 40.0}

    def test_rejects_empty_and_string_sources(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            bounded_dijkstra(g, [], 1.0)
        with pytest.raises(ValueError):
            bounded_dijkstra(g, "nope", 1.0)


class TestHopMetrics:
    def test_hop_distances_ignore_weights(self):
        g = path_graph(4, [100.0, 0.5, 7.0])
        hops = hop_distances(g, 0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_hop_diameter_cycle(self):
        assert hop_diameter(cycle_graph(8)) == 4

    def test_hop_diameter_grid(self):
        assert hop_diameter(grid_graph(3, 4)) == 5

    def test_hop_diameter_disconnected_raises(self):
        g = WeightedGraph(range(3))
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            hop_diameter(g)


class TestDiameters:
    def test_eccentricity(self):
        g = path_graph(4, [1.0, 1.0, 1.0])
        assert eccentricity(g, 0) == 3.0
        assert eccentricity(g, 1) == 2.0

    def test_weak_vs_strong_diameter(self):
        # cluster {0, 2} in a triangle with a shortcut through 1
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        assert weak_diameter(g, [0, 2]) == pytest.approx(2.0)
        assert strong_diameter(g, [0, 2]) == pytest.approx(5.0)

    def test_strong_diameter_disconnected_cluster(self):
        g = path_graph(3)
        assert strong_diameter(g, [0, 2]) == float("inf")

    def test_all_pairs_symmetric(self, small_er):
        apsp = all_pairs_shortest_paths(small_er)
        for u in small_er.vertices():
            for v in small_er.vertices():
                assert apsp[u][v] == pytest.approx(apsp[v][u])

    def test_all_pairs_triangle_inequality(self, small_er):
        apsp = all_pairs_shortest_paths(small_er)
        vs = list(small_er.vertices())[:10]
        for u in vs:
            for v in vs:
                for w in vs:
                    assert apsp[u][v] <= apsp[u][w] + apsp[w][v] + 1e-9
