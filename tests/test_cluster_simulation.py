"""Tests for the keyed-max convergecast and the §5 case-1 simulation."""
import random

import pytest

from repro.congest import build_bfs_tree
from repro.congest.keyed_aggregate import keyed_max_convergecast
from repro.core.cluster_simulation import simulate_case1_bucket
from repro.core.light_spanner import _case1_clusters
from repro.graphs import erdos_renyi_graph, grid_graph, path_graph, star_graph
from repro.mst import kruskal_mst
from repro.spanners import elkin_neiman_spanner, sample_shifts
from repro.traversal import compute_euler_tour


class TestKeyedMaxConvergecast:
    def test_single_key_max(self):
        g = path_graph(6)
        tree = build_bfs_tree(g, 0)
        inputs = {v: {"k": (float(v), f"v{v}")} for v in g.vertices()}
        merged, _ = keyed_max_convergecast(g, tree, inputs)
        assert merged == {"k": (5.0, "v5")}

    def test_disjoint_keys_all_collected(self):
        g = grid_graph(3, 3)
        tree = build_bfs_tree(g, 0)
        inputs = {v: {f"key{v}": (1.0, "x")} for v in g.vertices()}
        merged, _ = keyed_max_convergecast(g, tree, inputs)
        assert len(merged) == 9

    def test_rounds_lemma1_shape(self):
        """O(#keys + height) — each tree vertex forwards one message per
        key."""
        g = grid_graph(4, 4)
        tree = build_bfs_tree(g, 0)
        keys = [f"k{i:02d}" for i in range(6)]
        inputs = {
            v: {k: (float(hash((v, k)) % 100), "p") for k in keys}
            for v in g.vertices()
        }
        merged, rounds = keyed_max_convergecast(g, tree, inputs)
        assert len(merged) == 6
        assert rounds <= len(keys) + 2 * tree.height + 6

    def test_empty_inputs(self):
        g = path_graph(4)
        tree = build_bfs_tree(g, 0)
        merged, rounds = keyed_max_convergecast(g, tree, {})
        assert merged == {}
        assert rounds <= 4

    def test_matches_brute_force_merge(self):
        g = erdos_renyi_graph(15, 0.3, seed=1)
        tree = build_bfs_tree(g, 0)
        rng = random.Random(1)
        keys = ["a", "b", "c"]
        inputs = {
            v: {k: (rng.random(), f"src{v}") for k in keys if rng.random() < 0.7}
            for v in g.vertices()
        }
        merged, _ = keyed_max_convergecast(g, tree, inputs)
        for k in keys:
            contributions = [d[k] for d in inputs.values() if k in d]
            if contributions:
                assert merged[k] == max(contributions)

    def test_star_root_at_hub(self):
        g = star_graph(10)
        tree = build_bfs_tree(g, 0)
        inputs = {v: {"m": (float(v), "s")} for v in g.vertices()}
        merged, rounds = keyed_max_convergecast(g, tree, inputs)
        assert merged["m"][0] == 9.0
        assert rounds <= 6


def _case1_setup(n, seed, eps=0.25, bucket_fraction=2.0):
    g = erdos_renyi_graph(n, 0.25, seed=seed)
    tree = build_bfs_tree(g, 0)
    mst = kruskal_mst(g)
    tour = compute_euler_tour(mst, 0)
    big_l = 2 * mst.total_weight()
    eps_wi = eps * big_l / bucket_fraction
    cluster_of = _case1_clusters(tour, eps_wi)
    return g, tree, cluster_of


class TestCase1Simulation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_pure_elkin_neiman(self, seed, k):
        """The message-level simulation must produce exactly the edges of
        the abstract [EN17b] run on the cluster graph."""
        g, tree, cluster_of = _case1_setup(25, seed)
        # build the reference cluster graph
        adjacency = {}
        for c in sorted(set(cluster_of.values()), key=repr):
            adjacency[c] = set()
        for u, v, _ in g.edges():
            cu, cv = cluster_of[u], cluster_of[v]
            if cu != cv:
                adjacency[cu].add(cv)
                adjacency[cv].add(cu)
        shifts = sample_shifts(sorted(adjacency, key=repr), k, random.Random(seed))

        sim = simulate_case1_bucket(g, tree, cluster_of, k, shifts=shifts)
        pure = elkin_neiman_spanner(adjacency, k, shifts=shifts)
        assert sim.edges == pure.edges

    def test_measured_rounds_reasonable(self):
        """Each [EN17b] round costs O(|C_i| + D) measured rounds."""
        g, tree, cluster_of = _case1_setup(30, 3)
        num_clusters = len(set(cluster_of.values()))
        sim = simulate_case1_bucket(g, tree, cluster_of, 2, random.Random(3))
        per_round_cap = 3 * (num_clusters + 2 * tree.height) + 12
        for cc, bc in sim.round_breakdown:
            assert cc + bc <= per_round_cap

    def test_breakdown_length_is_k(self):
        g, tree, cluster_of = _case1_setup(20, 4)
        sim = simulate_case1_bucket(g, tree, cluster_of, 3, random.Random(4))
        assert len(sim.round_breakdown) == 3

    def test_single_cluster_no_edges(self):
        g = path_graph(8)
        tree = build_bfs_tree(g, 0)
        cluster_of = {v: 0 for v in g.vertices()}
        sim = simulate_case1_bucket(g, tree, cluster_of, 2, random.Random(0))
        assert sim.edges == set()

    def test_invalid_k(self):
        g = path_graph(4)
        tree = build_bfs_tree(g, 0)
        with pytest.raises(ValueError):
            simulate_case1_bucket(g, tree, {v: 0 for v in g.vertices()}, 0)

    def test_missing_cluster_rejected(self):
        g = path_graph(4)
        tree = build_bfs_tree(g, 0)
        with pytest.raises(ValueError):
            simulate_case1_bucket(g, tree, {0: 0}, 2)
