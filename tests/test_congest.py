"""Tests for the CONGEST simulator, BFS, primitives and ledger."""

import pytest

from repro.congest import (
    BandwidthViolation,
    CongestAlgorithm,
    RoundLedger,
    SyncNetwork,
    broadcast_rounds,
    build_bfs_tree,
    convergecast_rounds,
    payload_words,
    pipelined_aggregate_rounds,
)
from repro.congest.primitives import local_phase_rounds
from repro.graphs import (
    WeightedGraph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hop_distances,
    path_graph,
    star_graph,
)


class TestPayloadWords:
    def test_scalars(self):
        assert payload_words(5) == 1
        assert payload_words(3.14) == 1
        assert payload_words(True) == 1
        assert payload_words(None) == 0

    def test_strings(self):
        assert payload_words("join") == 1
        assert payload_words("x" * 17) == 3

    def test_containers(self):
        assert payload_words((1, 2.0)) == 2
        assert payload_words([1, 2, 3]) == 3
        assert payload_words({"k": 1}) == 2
        assert payload_words(()) == 1  # a message always costs >= 1 word


class _Flood(CongestAlgorithm):
    """Each node forwards the max value it has seen (test algorithm)."""

    def setup(self, node):
        node.state["val"] = hash(node.id) % 100
        return {nbr: node.state["val"] for nbr in node.neighbors}

    def step(self, node, inbox):
        new = max(inbox.values(), default=node.state["val"])
        if new > node.state["val"]:
            node.state["val"] = new
            return {nbr: new for nbr in node.neighbors}
        return {}


class _Oversender(CongestAlgorithm):
    def setup(self, node):
        return {nbr: tuple(range(100)) for nbr in node.neighbors}


class _NonNeighborSender(CongestAlgorithm):
    def __init__(self, target):
        self.target = target

    def setup(self, node):
        return {self.target: 1}


class TestSyncNetwork:
    def test_flood_converges_to_global_max(self):
        g = cycle_graph(9)
        net = SyncNetwork(g)
        net.run(_Flood())
        vals = {net.view(v).state["val"] for v in g.vertices()}
        assert len(vals) == 1  # everyone agrees

    def test_flood_round_count_bounded_by_diameter(self):
        g = cycle_graph(10)
        net = SyncNetwork(g)
        rounds = net.run(_Flood())
        assert rounds <= 10 // 2 + 2

    def test_bandwidth_enforced(self):
        net = SyncNetwork(path_graph(3), words_per_message=4)
        with pytest.raises(BandwidthViolation):
            net.run(_Oversender())

    def test_bandwidth_relaxed_mode(self):
        net = SyncNetwork(path_graph(3), strict_bandwidth=False)
        net.run(_Oversender(), max_rounds=5)
        assert net.words_sent >= 100

    def test_non_neighbor_send_rejected(self):
        g = path_graph(4)
        net = SyncNetwork(g)
        with pytest.raises(ValueError):
            net.run(_NonNeighborSender(target=3))

    def test_runaway_algorithm_raises(self):
        class Chatter(CongestAlgorithm):
            def setup(self, node):
                return {nbr: 1 for nbr in node.neighbors}

            def step(self, node, inbox):
                return {nbr: 1 for nbr in node.neighbors}

            def is_done(self, node):
                return False

        with pytest.raises(RuntimeError):
            SyncNetwork(path_graph(3)).run(Chatter(), max_rounds=10)

    def test_reset_clears_state_and_counters(self):
        g = cycle_graph(6)
        net = SyncNetwork(g)
        net.run(_Flood())
        net.reset()
        assert net.rounds_executed == 0
        assert net.messages_sent == 0
        assert net.view(0).state == {}

    def test_message_accounting(self):
        g = path_graph(2)
        net = SyncNetwork(g)
        net.run(_Flood())
        assert net.messages_sent >= 2  # at least the setup exchange


class TestSparseEngine:
    def test_stall_raises_contract_error(self):
        """A node that is never done but requests no wake and gets no mail
        can never make progress: the sparse engine fails fast instead of
        spinning to max_rounds like the dense loop."""

        class Sleeper(CongestAlgorithm):
            def is_done(self, node):
                return False

        with pytest.raises(RuntimeError, match="activity contract"):
            SyncNetwork(path_graph(3)).run(Sleeper())
        # the dense engine reproduces the legacy spin-to-max_rounds
        with pytest.raises(RuntimeError, match="did not terminate"):
            SyncNetwork(path_graph(3), dense=True).run(Sleeper(), max_rounds=7)

    def test_always_active_escape_hatch(self):
        """A polling program (steps itself by the global round counter,
        no mail) runs under always_active."""

        class Poller(CongestAlgorithm):
            always_active = True

            def step(self, node, inbox):
                node.state["last_round"] = node.round
                return {}

            def is_done(self, node):
                return node.state.get("last_round", 0) >= 3

        net = SyncNetwork(path_graph(3))
        rounds = net.run(Poller())
        assert rounds >= 3
        for v in range(3):
            assert net.view(v).state["last_round"] >= 3

    def test_wake_request_drives_local_work(self):
        """request_wake steps a node next round even without mail."""

        class Countdown(CongestAlgorithm):
            def setup(self, node):
                node.state["n"] = 3
                node.request_wake()
                return {}

            def step(self, node, inbox):
                node.state["n"] -= 1
                if node.state["n"] > 0:
                    node.request_wake()
                return {}

            def is_done(self, node):
                return node.state["n"] == 0

        net = SyncNetwork(path_graph(2))
        rounds = net.run(Countdown())
        assert rounds >= 3
        assert all(net.view(v).state["n"] == 0 for v in range(2))

    def test_global_round_counter_visible_to_nodes(self):
        class Recorder(CongestAlgorithm):
            always_active = True

            def step(self, node, inbox):
                node.state.setdefault("rounds", []).append(node.round)
                return {}

            def is_done(self, node):
                return len(node.state.get("rounds", [])) >= 4

        net = SyncNetwork(path_graph(2))
        net.run(Recorder())
        assert net.view(0).state["rounds"] == [1, 2, 3, 4]

    def test_active_node_rounds_utilization(self):
        """The flood keeps only changed nodes busy: the sparse engine's
        step count is strictly below the dense n x rounds product."""
        g = cycle_graph(12)
        sparse = SyncNetwork(g)
        sparse.run(_Flood())
        dense = SyncNetwork(g, dense=True)
        dense.run(_Flood())
        assert dense.active_node_rounds == g.n * (dense.rounds_executed - 1)
        assert 0 < sparse.active_node_rounds < dense.active_node_rounds

    def test_lifetime_counters_survive_reset(self):
        g = cycle_graph(6)
        net = SyncNetwork(g)
        net.run(_Flood())
        first = (net.total_rounds, net.total_messages_sent, net.total_words_sent)
        assert first[0] == net.rounds_executed
        net.reset()
        assert net.rounds_executed == 0
        assert (net.total_rounds, net.total_messages_sent, net.total_words_sent) == first
        net.run(_Flood())
        assert net.total_rounds == first[0] + net.rounds_executed
        assert net.total_messages_sent == first[1] + net.messages_sent

    def test_counters_untouched_on_bandwidth_violation(self):
        """The whole outbox is validated before any message is counted, so
        a violation never leaves messages_sent/words_sent half-advanced."""

        class MixedOutbox(CongestAlgorithm):
            def setup(self, node):
                if node.id == 1:
                    return {0: 1, 2: tuple(range(100))}
                return {}

        net = SyncNetwork(path_graph(3), words_per_message=4)
        with pytest.raises(BandwidthViolation):
            net.run(MixedOutbox())
        assert net.messages_sent == 0
        assert net.words_sent == 0

    def test_counters_untouched_on_non_neighbor_send(self):
        net = SyncNetwork(path_graph(4))
        with pytest.raises(ValueError):
            net.run(_NonNeighborSender(target=3))
        assert net.messages_sent == 0
        assert net.words_sent == 0


class TestNodeView:
    def test_neighbors_cached_tuple(self):
        net = SyncNetwork(cycle_graph(5))
        view = net.view(0)
        first = view.neighbors
        assert isinstance(first, tuple)
        assert view.neighbors is first  # no per-access materialization
        assert set(first) == {1, 4}

    def test_payload_words_memoized(self):
        from repro.congest.simulator import _WORDS_CACHE

        payload = ("tag", 1, 2.5)
        expected = payload_words(payload)
        assert payload in _WORDS_CACHE
        assert payload_words(payload) == expected == 3
        # unhashable payloads still compute (uncached path)
        assert payload_words([1, [2, 3]]) == 3


class TestBFS:
    def test_bfs_depths_match_hop_distances(self):
        g = erdos_renyi_graph(30, 0.15, seed=2)
        tree = build_bfs_tree(g, 0)
        expected = hop_distances(g, 0)
        assert tree.depth == expected

    def test_bfs_rounds_close_to_depth(self):
        g = grid_graph(5, 5)
        tree = build_bfs_tree(g, 0)
        assert tree.height == 8
        assert tree.rounds <= tree.height + 3

    def test_bfs_parent_is_one_level_up(self):
        g = grid_graph(4, 4)
        tree = build_bfs_tree(g, 0)
        for v, p in tree.parent.items():
            if p is not None:
                assert tree.depth[v] == tree.depth[p] + 1

    def test_bfs_children_inverse_of_parent(self):
        g = star_graph(8)
        tree = build_bfs_tree(g, 0)
        children = tree.children()
        assert sorted(children[0]) == list(range(1, 8))

    def test_bfs_path_to_root(self):
        g = path_graph(5)
        tree = build_bfs_tree(g, 0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_bfs_disconnected_raises(self):
        g = WeightedGraph(range(3))
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            build_bfs_tree(g, 0)


class TestPrimitives:
    def test_broadcast_rounds_lemma1_shape(self):
        assert broadcast_rounds(10, 5) == 15
        assert convergecast_rounds(10, 5) == 15
        assert pipelined_aggregate_rounds(4, 2) == 6

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            broadcast_rounds(-1, 5)
        with pytest.raises(ValueError):
            local_phase_rounds(-3)

    def test_local_phase_minimum_one(self):
        assert local_phase_rounds(0) == 1


class TestLedger:
    def test_charge_and_total(self):
        led = RoundLedger()
        led.charge("a", 5)
        led.charge("b", 7)
        led.charge("a", 3)
        assert led.total == 15
        assert led.by_phase() == {"a": 8, "b": 7}

    def test_charge_rounds_float(self):
        led = RoundLedger()
        led.charge("x", 2.6)
        assert led.total == 3

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge("x", -1)

    def test_merge_with_prefix(self):
        a = RoundLedger()
        a.charge("p", 1)
        b = RoundLedger()
        b.charge("q", 2)
        a.merge(b, prefix="sub:")
        assert a.by_phase() == {"p": 1, "sub:q": 2}
        assert len(a.entries()) == 2
