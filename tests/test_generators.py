"""Tests for the workload generators."""

import pytest

from repro.graphs import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hop_diameter,
    path_graph,
    random_geometric_graph,
    random_tree,
    ring_of_cliques,
    star_graph,
    unit_ball_graph,
)


class TestDeterministicShapes:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.n == 6
        assert g.m == 15

    def test_path_and_cycle(self):
        assert path_graph(5).m == 4
        assert cycle_graph(5).m == 5
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_plain(self):
        g = star_graph(7)
        assert g.m == 6
        assert g.degree(0) == 6

    def test_star_with_rim(self):
        g = star_graph(7, rim_weight=1.0)
        assert g.m == 6 + 6  # spokes + rim cycle on 6 leaves
        assert g.is_connected()

    def test_grid_dimensions(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_jitter_bounded(self):
        g = grid_graph(4, 4, weight=2.0, jitter=0.5, seed=1)
        for _, _, w in g.edges():
            assert 2.0 <= w <= 3.0

    def test_caterpillar(self):
        g = caterpillar_graph(5, legs_per_vertex=3)
        assert g.n == 5 + 15
        assert g.is_connected()

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 3, inter_weight=9.0)
        assert g.n == 12
        assert g.is_connected()
        assert g.max_weight() == 9.0
        with pytest.raises(ValueError):
            ring_of_cliques(2, 3)


class TestRandomFamilies:
    def test_er_connected_and_seeded(self):
        a = erdos_renyi_graph(40, 0.1, seed=5)
        b = erdos_renyi_graph(40, 0.1, seed=5)
        assert a == b
        assert a.is_connected()

    def test_er_different_seeds_differ(self):
        a = erdos_renyi_graph(40, 0.1, seed=5)
        b = erdos_renyi_graph(40, 0.1, seed=6)
        assert a != b

    def test_er_weights_in_range(self):
        g = erdos_renyi_graph(30, 0.2, min_weight=2.0, max_weight=7.0, seed=1)
        assert g.min_weight() >= 2.0
        assert g.max_weight() <= 7.0

    def test_geometric_connected(self):
        g = random_geometric_graph(50, seed=4)
        assert g.is_connected()
        assert g.min_weight() >= 1.0

    def test_geometric_weights_scale_with_distance(self):
        g = random_geometric_graph(30, seed=9, weight_scale=100.0)
        assert g.max_weight() <= 100.0 * 2 ** 0.5 + 1e-9  # unit square diagonal

    def test_unit_ball_graph_connected(self):
        g = unit_ball_graph(40, seed=2)
        assert g.is_connected()

    def test_random_tree_is_tree(self):
        t = random_tree(25, seed=3)
        assert t.is_tree()

    def test_random_tree_seeded(self):
        assert random_tree(25, seed=3) == random_tree(25, seed=3)


class TestPaperAssumptions:
    """§2: weights in [1, poly(n)] and connectedness."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_er_minimum_weight_at_least_one(self, seed):
        g = erdos_renyi_graph(25, 0.2, seed=seed)
        assert g.min_weight() >= 1.0

    def test_geometric_aspect_ratio_polynomial(self):
        g = random_geometric_graph(60, seed=8)
        assert g.aspect_ratio() <= g.n ** 3

    def test_caterpillar_hop_diameter_large(self):
        g = caterpillar_graph(20, legs_per_vertex=1)
        assert hop_diameter(g) >= 20  # long spine dominates
