"""Tests for the uniform quality reports."""

import random

import pytest

from repro.analysis.report import (
    MetricRow,
    QualityReport,
    net_report,
    slt_report,
    spanner_report,
)
from repro.analysis.validation import ValidationError
from repro.core import build_net, light_spanner, shallow_light_tree
from repro.graphs import WeightedGraph, cycle_graph
from repro.mst.kruskal import kruskal_mst


class TestMetricRow:
    def test_ok_without_bound(self):
        assert MetricRow("x", 5.0).ok

    def test_ok_with_bound(self):
        assert MetricRow("x", 5.0, 5.0).ok
        assert not MetricRow("x", 5.1, 5.0).ok

    def test_render_flags_violation(self):
        assert "VIOLATED" in MetricRow("x", 9.0, 1.0).render()
        assert "VIOLATED" not in MetricRow("x", 0.5, 1.0).render()


class TestQualityReport:
    def test_ok_aggregates(self):
        r = QualityReport("t", [MetricRow("a", 1.0, 2.0), MetricRow("b", 3.0, 2.0)])
        assert not r.ok
        assert r.metric("a").ok

    def test_metric_lookup_missing(self):
        with pytest.raises(KeyError):
            QualityReport("t").metric("nope")

    def test_render_contains_all_rows(self):
        r = QualityReport("title", [MetricRow("alpha", 1.0)])
        text = r.render()
        assert "title" in text and "alpha" in text


class TestSpannerReport:
    def test_real_spanner(self, small_er):
        res = light_spanner(small_er, 2, 0.25, random.Random(0))
        rep = spanner_report(
            small_er, res.spanner,
            stretch_bound=res.stretch_bound, rounds=res.rounds,
        )
        assert rep.ok
        assert rep.metric("stretch").measured <= res.stretch_bound

    def test_foreign_edge_rejected(self, small_er):
        fake = WeightedGraph(small_er.vertices())
        fake.add_edge(0, 1, 12345.0)
        with pytest.raises(ValidationError):
            spanner_report(small_er, fake)

    def test_violation_reported_not_raised(self, small_er):
        mst = kruskal_mst(small_er)
        rep = spanner_report(small_er, mst, stretch_bound=1.0)
        # the MST is a valid subgraph but not a 1-spanner: report flags it
        if rep.metric("stretch").measured > 1.0:
            assert not rep.ok


class TestSLTReport:
    def test_real_slt(self, small_er):
        res = shallow_light_tree(small_er, 0, 6.0)
        rep = slt_report(
            small_er, res.tree, 0,
            stretch_bound=res.stretch_bound, lightness_bound=6.0,
        )
        assert rep.ok

    def test_non_tree_rejected(self, small_er):
        with pytest.raises(ValidationError):
            slt_report(small_er, small_er, 0)


class TestNetReport:
    def test_real_net(self, small_er):
        res = build_net(small_er, 20.0, 0.5, random.Random(1))
        rep = net_report(small_er, res.points, res.alpha, res.beta, rounds=res.rounds)
        assert rep.ok
        assert rep.metric("size").measured == len(res.points)

    def test_bad_net_rejected(self):
        g = cycle_graph(6)
        with pytest.raises(ValidationError):
            net_report(g, {0}, alpha=1.0, beta=0.5)

    def test_singleton_net_has_no_separation_row(self, small_er):
        res = build_net(small_er, 1e9, 0.5, random.Random(2))
        rep = net_report(small_er, res.points, res.alpha, res.beta)
        with pytest.raises(KeyError):
            rep.metric("beta/closest")
