"""Tests for Least-Element lists (Definition 1 / Theorem 4)."""

import math
import random

import pytest

from repro.congest import RoundLedger
from repro.graphs import all_pairs_shortest_paths, erdos_renyi_graph, path_graph
from repro.lelists import compute_le_lists, first_in_ball, fl16_round_cost


def _brute_force_le_lists(graph, active, pi, delta):
    """Definition 1 evaluated literally, on the same rounded graph H."""
    from repro.lelists.le_lists import _rounded_graph

    h = _rounded_graph(graph, delta)
    dist = all_pairs_shortest_paths(h)
    lists = {}
    for v in graph.vertices():
        entries = []
        for u in sorted(active, key=lambda x: pi[x]):
            d = dist[v].get(u, math.inf)
            dominated = any(
                dist[v].get(w, math.inf) <= d and pi[w] < pi[u]
                for w in active
                if w != u
            )
            if not dominated and d < math.inf:
                entries.append((u, d))
        lists[v] = entries
    return lists


class TestExactLELists:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        g = erdos_renyi_graph(18, 0.3, seed=seed)
        active = list(g.vertices())
        rng = random.Random(seed)
        order = list(active)
        rng.shuffle(order)
        pi = {v: i for i, v in enumerate(order)}
        result = compute_le_lists(g, active, delta=0.0, pi=pi)
        expected = _brute_force_le_lists(g, active, pi, 0.0)
        for v in g.vertices():
            assert [(u, pytest.approx(d)) for u, d in expected[v]] == result.lists[v]

    def test_own_entry_present_for_active(self, small_er):
        result = compute_le_lists(g := small_er, active=list(g.vertices()), rng=random.Random(0))
        for v in g.vertices():
            assert (v, 0.0) in result.lists[v]

    def test_first_ranked_vertex_in_every_list(self, small_er):
        g = small_er
        result = compute_le_lists(g, list(g.vertices()), rng=random.Random(1))
        champion = min(result.pi, key=lambda v: result.pi[v])
        for v in g.vertices():
            assert any(u == champion for u, _ in result.lists[v])

    def test_distances_strictly_decreasing_along_list(self, small_er):
        g = small_er
        result = compute_le_lists(g, list(g.vertices()), rng=random.Random(2))
        for v, lst in result.lists.items():
            ds = [d for _, d in lst]
            assert all(a > b for a, b in zip(ds, ds[1:]))

    def test_list_lengths_logarithmic_whp(self):
        """[KKM+12]: uniform π gives O(log n) list lengths w.h.p."""
        g = erdos_renyi_graph(80, 0.15, seed=3)
        result = compute_le_lists(g, list(g.vertices()), rng=random.Random(3))
        assert result.max_list_length() <= 6 * math.ceil(math.log2(80))

    def test_restricted_active_set(self, small_er):
        g = small_er
        active = [v for v in g.vertices() if v % 2 == 0]
        result = compute_le_lists(g, active, rng=random.Random(4))
        for v, lst in result.lists.items():
            assert all(u in set(active) for u, _ in lst)


class TestApproximateLELists:
    def test_distances_within_1_plus_delta(self, small_er):
        g = small_er
        delta = 0.5
        result = compute_le_lists(g, list(g.vertices()), delta=delta, rng=random.Random(5))
        apsp = all_pairs_shortest_paths(g)
        for v, lst in result.lists.items():
            for u, d in lst:
                assert d >= apsp[v][u] - 1e-9
                assert d <= (1 + delta) * apsp[v][u] + 1e-9

    def test_matches_brute_force_on_rounded_graph(self):
        g = erdos_renyi_graph(15, 0.35, seed=7)
        pi = {v: i for i, v in enumerate(sorted(g.vertices()))}
        result = compute_le_lists(g, list(g.vertices()), delta=0.3, pi=pi)
        expected = _brute_force_le_lists(g, list(g.vertices()), pi, 0.3)
        for v in g.vertices():
            assert [(u, pytest.approx(d)) for u, d in expected[v]] == result.lists[v]


class TestFirstInBall:
    def test_identifies_local_minimum(self):
        g = path_graph(5)  # unit weights
        pi = {0: 3, 1: 0, 2: 4, 3: 1, 4: 2}  # vertex 1 is globally first
        result = compute_le_lists(g, list(g.vertices()), pi=pi)
        assert first_in_ball(result, 0, 1.0) == 1
        assert first_in_ball(result, 1, 1.0) == 1
        assert first_in_ball(result, 4, 1.0) == 3  # within distance 1: {3, 4}

    def test_radius_zero_returns_self_for_active(self, small_er):
        g = small_er
        result = compute_le_lists(g, list(g.vertices()), rng=random.Random(6))
        for v in g.vertices():
            assert first_in_ball(result, v, 0.0) == v

    def test_none_when_inactive_and_isolated_from_actives(self):
        g = path_graph(4, [100.0, 1.0, 100.0])
        result = compute_le_lists(g, [0], pi={0: 0})
        assert first_in_ball(result, 3, 10.0) is None


class TestRoundAccounting:
    def test_ledger_charged(self, small_er):
        led = RoundLedger()
        compute_le_lists(
            small_er, list(small_er.vertices()), delta=0.5,
            rng=random.Random(0), bfs_height=4, ledger=led, phase="le",
        )
        assert led.by_phase()["le"] == fl16_round_cost(small_er.n, 4, 0.5)

    def test_cost_decreases_with_larger_delta(self):
        assert fl16_round_cost(400, 10, 0.9) <= fl16_round_cost(400, 10, 0.01)

    def test_cost_superlinear_in_sqrt_n(self):
        assert fl16_round_cost(400, 0, 0.5) >= 20  # at least √n
