"""Tests for the §6 net construction (Theorem 3)."""

import math
import random

import pytest

from repro.analysis import verify_net
from repro.core import build_net, greedy_net
from repro.graphs import (
    erdos_renyi_graph,
    grid_graph,
    path_graph)


class TestBuildNet:
    @pytest.mark.parametrize("delta_param", [5.0, 20.0, 60.0])
    def test_covering_and_separation(self, medium_er, delta_param):
        res = build_net(medium_er, delta_param, 0.5, random.Random(0))
        verify_net(medium_er, res.points, res.alpha, res.beta)

    @pytest.mark.parametrize("delta", [0.25, 0.5, 0.75])
    def test_delta_parameter_sweeps(self, small_er, delta):
        res = build_net(small_er, 15.0, delta, random.Random(1))
        assert res.alpha == pytest.approx((1 + delta) * 15.0)
        assert res.beta == pytest.approx(15.0 / (1 + delta))
        verify_net(small_er, res.points, res.alpha, res.beta)

    def test_tiny_radius_selects_everyone(self, small_er):
        res = build_net(small_er, 0.5, 0.5, random.Random(2))
        assert res.points == set(small_er.vertices())
        assert res.iterations == 1

    def test_huge_radius_selects_single_point(self, small_er):
        res = build_net(small_er, 1e6, 0.5, random.Random(3))
        assert len(res.points) == 1

    def test_iterations_logarithmic(self):
        g = erdos_renyi_graph(80, 0.15, seed=4)
        res = build_net(g, 40.0, 0.5, random.Random(4))
        assert res.iterations <= 4 * math.ceil(math.log2(80))

    def test_active_history_strictly_decreasing(self, medium_er):
        res = build_net(medium_er, 25.0, 0.5, random.Random(5))
        assert res.active_history[0] == medium_er.n
        assert all(a > b for a, b in zip(res.active_history, res.active_history[1:]))

    def test_net_size_decreases_with_radius(self, medium_er):
        sizes = []
        for delta_param in (2.0, 20.0, 200.0):
            res = build_net(medium_er, delta_param, 0.5, random.Random(6))
            sizes.append(len(res.points))
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_rounds_charged_per_iteration(self, small_er):
        res = build_net(small_er, 15.0, 0.5, random.Random(7))
        phases = res.ledger.by_phase()
        assert any("le-lists" in p for p in phases)
        assert any("approx-spt" in p for p in phases)
        assert res.rounds > 0

    def test_path_graph_net_spacing(self):
        g = path_graph(50)  # unit weights
        res = build_net(g, 4.0, 0.5, random.Random(8))
        verify_net(g, res.points, res.alpha, res.beta)
        # at least n / (2α + 1) points are needed to cover a path
        assert len(res.points) >= 50 / (2 * res.alpha + 1) - 1

    def test_invalid_parameters(self, small_er):
        with pytest.raises(ValueError):
            build_net(small_er, -1.0, 0.5)
        with pytest.raises(ValueError):
            build_net(small_er, 5.0, 0.0)
        with pytest.raises(ValueError):
            build_net(small_er, 5.0, 1.0)

    def test_deterministic_given_seed(self, small_er):
        a = build_net(small_er, 20.0, 0.5, random.Random(42))
        b = build_net(small_er, 20.0, 0.5, random.Random(42))
        assert a.points == b.points


class TestGreedyNet:
    @pytest.mark.parametrize("radius", [3.0, 10.0, 40.0])
    def test_is_r_r_net(self, medium_er, radius):
        pts = greedy_net(medium_er, radius)
        verify_net(medium_er, pts, radius, radius)

    def test_first_vertex_always_kept(self, small_er):
        pts = greedy_net(small_er, 10.0)
        assert min(small_er.vertices(), key=repr) in pts

    def test_grid_packing(self):
        g = grid_graph(8, 8)  # unit weights
        pts = greedy_net(g, 2.0)
        verify_net(g, pts, 2.0, 2.0)
        assert 4 <= len(pts) <= 20

    def test_greedy_not_larger_than_distributed_by_much(self, medium_er):
        """Both are maximal-independent-style nets; sizes comparable."""
        g_pts = greedy_net(medium_er, 20.0)
        d_res = build_net(medium_er, 20.0, 0.5, random.Random(0))
        assert len(d_res.points) <= 4 * len(g_pts) + 4
        assert len(g_pts) <= 4 * len(d_res.points) + 4


class TestDistributedNetOnDoublingGraphs:
    def test_geometric_graph(self, geometric):
        res = build_net(geometric, 30.0, 0.5, random.Random(1))
        verify_net(geometric, res.points, res.alpha, res.beta)

    def test_packing_bound_on_net_size(self, geometric):
        """Claim 7: an r-separated set has at most ⌈2L/r⌉ points."""
        from repro.mst.kruskal import kruskal_mst

        res = build_net(geometric, 25.0, 0.5, random.Random(2))
        mst_w = kruskal_mst(geometric).total_weight()
        assert len(res.points) <= math.ceil(2 * mst_w / res.beta)
