"""Tests for the hypercube / random-regular / barbell generators."""

import pytest

from repro.graphs import (
    barbell_graph,
    hop_diameter,
    hypercube_graph,
    random_regular_graph,
)


class TestHypercube:
    def test_shape(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert g.m == 4 * 16 // 2
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_hop_diameter_is_dim(self):
        assert hop_diameter(hypercube_graph(5)) == 5

    def test_jitter_bounds(self):
        g = hypercube_graph(3, weight=2.0, jitter=0.5, seed=1)
        for _, _, w in g.edges():
            assert 2.0 <= w <= 3.0

    def test_connected(self):
        assert hypercube_graph(6).is_connected()


class TestRandomRegular:
    def test_degree_close_to_target(self):
        g = random_regular_graph(40, 4, seed=1)
        degrees = [g.degree(v) for v in g.vertices()]
        assert min(degrees) >= 3  # pairing + backbone
        assert max(degrees) <= 7

    def test_connected(self):
        assert random_regular_graph(50, 3, seed=2).is_connected()

    def test_seeded_deterministic(self):
        assert random_regular_graph(30, 3, seed=5) == random_regular_graph(30, 3, seed=5)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 5)

    def test_expander_like_small_diameter(self):
        g = random_regular_graph(64, 4, seed=3)
        assert hop_diameter(g) <= 8  # log-ish diameter


class TestBarbell:
    def test_shape(self):
        g = barbell_graph(5, 6)
        assert g.n == 5 + 6 + 5
        assert g.is_connected()

    def test_large_hop_diameter(self):
        g = barbell_graph(4, 20)
        assert hop_diameter(g) >= 20

    def test_cliques_are_complete(self):
        g = barbell_graph(4, 3)
        for i in range(4):
            for j in range(i + 1, 4):
                assert g.has_edge(i, j)

    def test_works_as_slt_workload(self):
        """The D-dominated regime: constructions still meet guarantees."""
        from repro.analysis import verify_slt
        from repro.core import shallow_light_tree

        g = barbell_graph(5, 12)
        res = shallow_light_tree(g, 0, alpha=6.0)
        verify_slt(g, res.tree, 0, res.stretch_bound, 6.0)
