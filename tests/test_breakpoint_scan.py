"""Tests for the native §4.1 interval scan."""

import math

import pytest

from repro.congest import SyncNetwork
from repro.core.breakpoint_scan import run_interval_scan
from repro.core.slt import _select_break_points
from repro.congest.ledger import RoundLedger
from repro.graphs import erdos_renyi_graph, random_geometric_graph, random_tree
from repro.mst import kruskal_mst
from repro.spt import approx_spt
from repro.traversal import compute_euler_tour


def _setup(n, seed, eps=0.5):
    g = erdos_renyi_graph(n, 0.2, seed=seed)
    mst = kruskal_mst(g)
    tour = compute_euler_tour(mst, 0)
    spt = approx_spt(g, 0, eps)
    return g, tour, spt


class TestNativeScanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    def test_matches_sequential_reference(self, seed, eps):
        g, tour, spt = _setup(30, seed, eps)
        alpha = math.isqrt(g.n - 1) + 1
        native = run_interval_scan(g, tour, spt.dist, eps, alpha)
        ledger = RoundLedger()
        bp1, _, _ = _select_break_points(tour, spt.dist, eps, alpha, ledger, 5)
        assert native.bp1 == bp1

    def test_geometric_workload(self):
        g = random_geometric_graph(25, seed=5)
        mst = kruskal_mst(g)
        tour = compute_euler_tour(mst, 0)
        spt = approx_spt(g, 0, 0.5)
        alpha = math.isqrt(g.n - 1) + 1
        native = run_interval_scan(g, tour, spt.dist, 0.5, alpha)
        ledger = RoundLedger()
        bp1, _, _ = _select_break_points(tour, spt.dist, 0.5, alpha, ledger, 5)
        assert native.bp1 == bp1


class TestNativeScanRounds:
    def test_rounds_at_most_alpha_plus_constant(self):
        """§4.1: "After α − 1 rounds this procedure ends"."""
        g, tour, spt = _setup(40, 7)
        alpha = math.isqrt(g.n - 1) + 1
        native = run_interval_scan(g, tour, spt.dist, 0.5, alpha)
        assert native.rounds <= alpha + 2

    def test_parallelism_across_intervals(self):
        """Rounds depend on α, not on the number of intervals: a longer
        tour with the same α costs the same rounds."""
        g1, tour1, spt1 = _setup(20, 8)
        g2, tour2, spt2 = _setup(60, 8)
        alpha = 6
        r1 = run_interval_scan(g1, tour1, spt1.dist, 0.5, alpha).rounds
        r2 = run_interval_scan(g2, tour2, spt2.dist, 0.5, alpha).rounds
        assert abs(r1 - r2) <= 2

    def test_bandwidth_respected(self):
        """Tokens are 2-word messages; no edge ever carries two tokens in
        the same direction (each tour edge-direction is traversed once)."""
        g, tour, spt = _setup(30, 9)
        net = SyncNetwork(g, words_per_message=2)
        native = run_interval_scan(g, tour, spt.dist, 0.5, network=net)
        assert native.bp1 is not None  # completed without violations


class TestScanOnTrees:
    def test_tree_graph_scan(self):
        t = random_tree(30, seed=10)
        tour = compute_euler_tour(t, 0)
        spt = approx_spt(t, 0, 0.5)
        alpha = 6
        native = run_interval_scan(t, tour, spt.dist, 0.5, alpha)
        ledger = RoundLedger()
        bp1, _, _ = _select_break_points(tour, spt.dist, 0.5, alpha, ledger, 5)
        assert native.bp1 == bp1

    def test_huge_eps_selects_only_root_positions(self):
        """With eps huge, Equation (2) can only fire where d(rt, v) = 0 —
        i.e. at later appearances of the root itself."""
        t = random_tree(20, seed=11)
        tour = compute_euler_tour(t, 0)
        spt = approx_spt(t, 0, 0.5)
        native = run_interval_scan(t, tour, spt.dist, eps=1e9, alpha=5)
        assert set(native.bp1) <= set(tour.appearances[0])

    def test_tiny_eps_selects_everything_selectable(self):
        """With eps → 0 every non-anchor position with positive tour
        progress joins."""
        t = random_tree(20, seed=12)
        tour = compute_euler_tour(t, 0)
        spt = approx_spt(t, 0, 0.5)
        alpha = 5
        native = run_interval_scan(t, tour, spt.dist, eps=1e-12, alpha=alpha)
        expected = [
            j for j in range(1, tour.size)
            if j % alpha != 0 and tour.order[j] != 0
        ]
        # positions at the root (dist 0) join only if progress > 0
        assert set(native.bp1) >= set(expected) - {0}
