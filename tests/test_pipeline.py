"""Tests for the native pipelined broadcast/convergecast (Lemma 1)."""

from repro.congest import (
    broadcast_messages,
    broadcast_rounds,
    build_bfs_tree,
    convergecast_messages,
    convergecast_rounds,
)
from repro.graphs import erdos_renyi_graph, grid_graph, path_graph, star_graph


def _payloads(graph, per_vertex):
    return {
        v: [f"m{v}-{i}" for i in range(per_vertex)] for v in graph.vertices()
    }


class TestConvergecast:
    def test_all_messages_reach_root(self):
        g = grid_graph(4, 4)
        tree = build_bfs_tree(g, 0)
        payloads = _payloads(g, 2)
        received, rounds = convergecast_messages(g, tree, payloads)
        expected = sorted(m for msgs in payloads.values() for m in msgs)
        assert sorted(received) == expected

    def test_rounds_within_lemma1(self):
        g = grid_graph(5, 5)
        tree = build_bfs_tree(g, 0)
        payloads = _payloads(g, 1)
        total = sum(len(v) for v in payloads.values())
        _, rounds = convergecast_messages(g, tree, payloads)
        assert rounds <= convergecast_rounds(total, tree.height) + 3

    def test_empty_payloads(self):
        g = path_graph(5)
        tree = build_bfs_tree(g, 0)
        received, rounds = convergecast_messages(g, tree, {})
        assert received == []
        assert rounds <= 3

    def test_single_sender_far_from_root(self):
        g = path_graph(10)
        tree = build_bfs_tree(g, 0)
        received, rounds = convergecast_messages(g, tree, {9: ["hello"]})
        assert received == ["hello"]
        assert rounds <= tree.height + 3  # latency-dominated


class TestBroadcast:
    def test_everyone_receives_everything(self):
        g = erdos_renyi_graph(20, 0.2, seed=1)
        tree = build_bfs_tree(g, 0)
        payloads = {0: ["a"], 7: ["b"], 13: ["c", "d"]}
        received, _ = broadcast_messages(g, tree, payloads)
        expected = sorted("abcd")
        for v in g.vertices():
            assert sorted(received[v]) == expected

    def test_rounds_within_lemma1_two_way(self):
        """Up-cast + down-cast: M + 2·height + O(1)."""
        g = grid_graph(4, 5)
        tree = build_bfs_tree(g, 0)
        payloads = _payloads(g, 1)
        total = sum(len(v) for v in payloads.values())
        _, rounds = broadcast_messages(g, tree, payloads)
        assert rounds <= total + 2 * tree.height + 4

    def test_star_topology_bandwidth_respected(self):
        """On a star, the hub forwards one message per edge per round —
        the run must still finish within Lemma 1's budget and never trip
        the bandwidth checker."""
        g = star_graph(12)
        tree = build_bfs_tree(g, 0)
        payloads = _payloads(g, 1)
        received, rounds = broadcast_messages(g, tree, payloads)
        assert all(len(received[v]) == 12 for v in g.vertices())
        assert rounds <= 12 + 2 * tree.height + 4

    def test_ledger_model_is_an_upper_bound_in_practice(self):
        """The Lemma-1 charge (M + height) must not underestimate the
        real one-way pipeline by more than the two-way constant."""
        g = erdos_renyi_graph(25, 0.15, seed=2)
        tree = build_bfs_tree(g, 0)
        payloads = {v: ["x"] for v in list(g.vertices())[:10]}
        _, measured = broadcast_messages(g, tree, payloads)
        charged = broadcast_rounds(10, tree.height)
        assert measured <= 2 * charged + 4
