"""Tests for the native CONGEST Elkin–Neiman node program."""

import random

import pytest

from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph
from repro.spanners import (
    elkin_neiman_distributed,
    elkin_neiman_spanner,
    sample_shifts,
)


def _adjacency(g):
    return {v: set(g.neighbors(v)) for v in g.vertices()}


class TestEquivalenceWithPureFunction:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 3])
    def test_same_edges_given_same_shifts(self, seed, k):
        g = erdos_renyi_graph(30, 0.2, seed=seed)
        shifts = sample_shifts(list(g.vertices()), k, random.Random(seed))
        native, _ = elkin_neiman_distributed(g, k, shifts=shifts)
        pure = elkin_neiman_spanner(_adjacency(g), k, shifts=shifts)
        assert native.edges == pure.edges

    def test_same_on_grid(self):
        g = grid_graph(5, 5)
        shifts = sample_shifts(list(g.vertices()), 2, random.Random(9))
        native, _ = elkin_neiman_distributed(g, 2, shifts=shifts)
        pure = elkin_neiman_spanner(_adjacency(g), 2, shifts=shifts)
        assert native.edges == pure.edges


class TestNativeExecution:
    def test_measured_rounds_is_k_plus_constant(self):
        g = erdos_renyi_graph(40, 0.2, seed=4)
        _, rounds = elkin_neiman_distributed(g, 3, random.Random(4))
        assert rounds <= 3 + 3  # k delivery rounds + setup/teardown

    def test_stretch_guarantee_native(self):
        from tests.test_spanners import _unweighted_stretch

        g = erdos_renyi_graph(35, 0.2, seed=5)
        run, _ = elkin_neiman_distributed(g, 2, random.Random(5))
        assert _unweighted_stretch(_adjacency(g), run.edges) <= 3

    def test_bandwidth_never_violated(self):
        """Messages are (id, float) pairs — 2 words, inside the budget."""
        from repro.congest import SyncNetwork

        g = cycle_graph(20)
        net = SyncNetwork(g, words_per_message=2)
        run, _ = elkin_neiman_distributed(g, 2, random.Random(6), network=net)
        assert run.edges  # completed without BandwidthViolation

    def test_invalid_k(self):
        g = cycle_graph(5)
        with pytest.raises(ValueError):
            elkin_neiman_distributed(g, 0)
