"""Tests for the exact and approximate shortest-path trees."""

import pytest

from repro.graphs import WeightedGraph, dijkstra, erdos_renyi_graph, path_graph
from repro.spt import (
    approx_spt,
    bkkl_round_cost,
    bounded_approx_spt,
    exact_spt_distributed,
)
from repro.analysis import verify_spanning_tree
from repro.congest import RoundLedger


class TestDistributedBellmanFord:
    def test_matches_dijkstra(self, small_er):
        spt = exact_spt_distributed(small_er, 0)
        exact, _ = dijkstra(small_er, 0)
        for v, d in exact.items():
            assert spt.dist[v] == pytest.approx(d)

    def test_rounds_bounded_by_hop_radius(self):
        g = path_graph(20)
        spt = exact_spt_distributed(g, 0)
        assert spt.rounds <= 20 + 3

    def test_tree_is_valid_spanning_tree(self, small_er):
        spt = exact_spt_distributed(small_er, 0)
        verify_spanning_tree(small_er, spt.as_graph(small_er))

    def test_path_to_root_follows_parents(self, small_er):
        spt = exact_spt_distributed(small_er, 0)
        for v in small_er.vertices():
            path = spt.path_to_root(v)
            assert path[0] == v and path[-1] == 0
            total = sum(
                small_er.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert total == pytest.approx(spt.dist[v])

    def test_disconnected_raises(self):
        g = WeightedGraph(range(3))
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            exact_spt_distributed(g, 0)


class TestApproxSPT:
    @pytest.mark.parametrize("eps", [0.1, 0.25, 0.5, 1.0])
    def test_equation_1_holds(self, medium_er, eps):
        """d_G <= dist <= (1+ε)·d_G — Equation (1) of the paper."""
        spt = approx_spt(medium_er, 0, eps)
        exact, _ = dijkstra(medium_er, 0)
        for v, d in exact.items():
            assert spt.dist[v] >= d - 1e-9
            assert spt.dist[v] <= (1 + eps) * d + 1e-9

    def test_approximation_is_genuine(self):
        """On some graph the approximate SPT must differ from the exact one
        (the rounding is real, not cosmetic)."""
        differs = False
        for seed in range(8):
            g = erdos_renyi_graph(40, 0.2, seed=seed)
            spt = approx_spt(g, 0, 0.5)
            exact, _ = dijkstra(g, 0)
            if any(abs(spt.dist[v] - exact[v]) > 1e-9 for v in g.vertices()):
                differs = True
                break
        assert differs

    def test_tree_is_subgraph_spanning_tree(self, medium_er):
        spt = approx_spt(medium_er, 0, 0.3)
        verify_spanning_tree(medium_er, spt.as_graph(medium_er))

    def test_dist_is_true_tree_path_weight(self, small_er):
        spt = approx_spt(small_er, 0, 0.4)
        tree = spt.as_graph(small_er)
        tree_dist, _ = dijkstra(tree, 0)
        for v in small_er.vertices():
            assert spt.dist[v] == pytest.approx(tree_dist[v])

    def test_eps_zero_is_exact(self, small_er):
        spt = approx_spt(small_er, 0, 0.0)
        exact, _ = dijkstra(small_er, 0)
        for v, d in exact.items():
            assert spt.dist[v] == pytest.approx(d)

    def test_rounds_charged_to_ledger(self, small_er):
        led = RoundLedger()
        spt = approx_spt(small_er, 0, 0.25, ledger=led, phase="my-spt")
        assert led.by_phase()["my-spt"] == spt.rounds
        assert spt.rounds == bkkl_round_cost(small_er.n, 6, 0.25)

    def test_round_cost_grows_with_inverse_eps(self):
        assert bkkl_round_cost(100, 5, 0.1) > bkkl_round_cost(100, 5, 0.5)

    def test_stretch_to_root_helper(self, small_er):
        spt = approx_spt(small_er, 0, 0.3)
        exact, _ = dijkstra(small_er, 0)
        assert spt.stretch_to_root(exact) <= 1.3 + 1e-9


class TestBoundedApproxSPT:
    def test_multi_source_within_radius(self, medium_er):
        sources = [0, 1, 2]
        dist, parent, origin = bounded_approx_spt(medium_er, sources, 60.0, 0.25)
        exact, _ = dijkstra(medium_er, sources)
        for v, d in dist.items():
            assert d <= 60.0 + 1e-9
            assert d >= exact[v] - 1e-9

    def test_origin_points_to_a_source(self, medium_er):
        sources = [0, 5]
        dist, parent, origin = bounded_approx_spt(medium_er, sources, 100.0, 0.2)
        for v in dist:
            assert origin[v] in sources
            # walking parents ends at the origin
            node = v
            while parent[node] is not None:
                node = parent[node]
            assert node == origin[v]

    def test_everything_reached_with_huge_radius(self, small_er):
        dist, _, _ = bounded_approx_spt(small_er, [0], 1e9, 0.2)
        assert set(dist) == set(small_er.vertices())

    def test_radius_zero_reaches_only_sources(self, small_er):
        dist, _, _ = bounded_approx_spt(small_er, [0, 3], 0.0, 0.2)
        assert set(dist) == {0, 3}

    def test_path_weights_are_true_weights(self, small_er):
        dist, parent, origin = bounded_approx_spt(small_er, [0], 80.0, 0.3)
        for v in dist:
            node, total = v, 0.0
            while parent[node] is not None:
                total += small_er.weight(node, parent[node])
                node = parent[node]
            assert total == pytest.approx(dist[v])
