"""Hypothesis property-based tests on the core invariants.

Strategy: generate random connected weighted graphs of modest size and
assert the paper's *deterministic* guarantees (stretch of spanners, SLT
validity, net covering/separation, tour identities) on every sample.
"""
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    lightness,
    root_stretch,
    verify_net,
    verify_spanner,
    verify_spanning_tree,
)
from repro.core import build_net, light_spanner, slt_base
from repro.graphs import WeightedGraph, dijkstra
from repro.mst import decompose_fragments, kruskal_mst
from repro.spanners import baswana_sen_spanner, greedy_spanner
from repro.spt import approx_spt
from repro.traversal import compute_euler_tour

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, min_n=3, max_n=16):
    """Random connected weighted graph: spanning tree + extra edges."""
    n = draw(st.integers(min_n, max_n))
    g = WeightedGraph(range(n))
    weights = st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        g.add_edge(parent, v, draw(weights))
    extra = draw(st.integers(0, min(12, n * (n - 1) // 2 - (n - 1))))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, draw(weights))
    return g


class TestGraphInvariants:
    @given(connected_graphs())
    @settings(**_SETTINGS)
    def test_mst_is_minimum(self, g):
        t = kruskal_mst(g)
        verify_spanning_tree(g, t)
        # no non-tree edge may be lighter than the heaviest tree edge on
        # the cycle it closes (cut optimality via networkx cross-check)
        import networkx as nx

        nxw = nx.minimum_spanning_tree(g.to_networkx()).size(weight="weight")
        assert t.total_weight() == pytest.approx(nxw)

    @given(connected_graphs())
    @settings(**_SETTINGS)
    def test_dijkstra_triangle_inequality(self, g):
        dist, _ = dijkstra(g, 0)
        for u, v, w in g.edges():
            assert dist[v] <= dist[u] + w + 1e-9
            assert dist[u] <= dist[v] + w + 1e-9


class TestTourInvariants:
    @given(connected_graphs())
    @settings(**_SETTINGS)
    def test_tour_identities(self, g):
        t = kruskal_mst(g)
        tour = compute_euler_tour(t, 0)
        assert tour.size == 2 * g.n - 1
        assert tour.length == pytest.approx(2 * t.total_weight())
        for v in t.vertices():
            expected = t.degree(v) + (1 if v == 0 else 0)
            assert len(tour.appearances[v]) == expected

    @given(connected_graphs())
    @settings(**_SETTINGS)
    def test_fragments_partition(self, g):
        t = kruskal_mst(g)
        decomp = decompose_fragments(t, 0)
        members = [v for f in decomp.fragments for v in f.members]
        assert sorted(members, key=repr) == sorted(t.vertices(), key=repr)


class TestSpannerInvariants:
    @given(connected_graphs(), st.integers(1, 3))
    @settings(**_SETTINGS)
    def test_greedy_stretch(self, g, k):
        h = greedy_spanner(g, 2 * k - 1)
        verify_spanner(g, h, 2 * k - 1)

    @given(connected_graphs(), st.integers(1, 3), st.integers(0, 10))
    @settings(**_SETTINGS)
    def test_baswana_sen_stretch(self, g, k, seed):
        h = baswana_sen_spanner(g, k, random.Random(seed))
        verify_spanner(g, h, 2 * k - 1)

    @given(connected_graphs(), st.integers(1, 3), st.integers(0, 10))
    @settings(**_SETTINGS)
    def test_light_spanner_stretch_and_mst(self, g, k, seed):
        res = light_spanner(g, k, 0.25, random.Random(seed))
        verify_spanner(g, res.spanner, res.stretch_bound)
        mst = kruskal_mst(g)
        for u, v, _ in mst.edges():
            assert res.spanner.has_edge(u, v)


class TestSLTInvariants:
    @given(connected_graphs(), st.sampled_from([0.25, 0.5, 1.0]))
    @settings(**_SETTINGS)
    def test_slt_guarantees(self, g, eps):
        res = slt_base(g, 0, eps)
        verify_spanning_tree(g, res.tree)
        assert root_stretch(g, res.tree, 0) <= res.stretch_bound + 1e-9
        assert lightness(g, res.tree) <= res.lightness_bound + 1 + 1e-9


class TestSPTInvariants:
    @given(connected_graphs(), st.sampled_from([0.1, 0.5, 1.0]))
    @settings(**_SETTINGS)
    def test_equation_1(self, g, eps):
        spt = approx_spt(g, 0, eps)
        exact, _ = dijkstra(g, 0)
        for v, d in exact.items():
            assert spt.dist[v] >= d - 1e-9
            assert spt.dist[v] <= (1 + eps) * d + 1e-6


class TestNetInvariants:
    @given(
        connected_graphs(),
        st.sampled_from([2.0, 10.0, 50.0]),
        st.integers(0, 5),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_net_validity(self, g, delta_param, seed):
        res = build_net(g, delta_param, 0.5, random.Random(seed))
        verify_net(g, res.points, res.alpha, res.beta)
