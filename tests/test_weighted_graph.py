"""Unit tests for the core graph structure."""

import pytest

from repro.graphs import WeightedGraph
from repro.graphs.weighted_graph import canonical_edge


class TestConstruction:
    def test_empty_graph(self):
        g = WeightedGraph()
        assert g.n == 0
        assert g.m == 0
        assert g.is_connected()  # vacuously

    def test_add_vertex_idempotent(self):
        g = WeightedGraph()
        g.add_vertex(1)
        g.add_vertex(1)
        assert g.n == 1

    def test_add_edge_creates_endpoints(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 2.0)
        assert g.has_vertex("a") and g.has_vertex("b")
        assert g.weight("a", "b") == 2.0
        assert g.weight("b", "a") == 2.0  # undirected

    def test_add_edge_overwrites_weight(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 3.0)
        assert g.weight(0, 1) == 3.0
        assert g.m == 1

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge(0, 0, 1.0)

    def test_nonpositive_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -2.0)

    def test_initial_vertices(self):
        g = WeightedGraph(range(5))
        assert g.n == 5
        assert g.m == 0


class TestRemoval:
    def test_remove_edge(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.remove_edge(0, 1)
        assert g.m == 0
        assert g.n == 2  # vertices stay

    def test_remove_missing_edge_raises(self):
        g = WeightedGraph(range(2))
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_vertex_cleans_incident_edges(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.remove_vertex(1)
        assert g.n == 2
        assert g.m == 0
        assert not g.has_edge(0, 1)


class TestInspection:
    def test_edges_iterates_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert triangle.m == 3

    def test_degree_and_neighbors(self, triangle):
        assert triangle.degree(1) == 2
        assert set(triangle.neighbors(0)) == {1, 2}

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(5.5)

    def test_min_max_weight(self, triangle):
        assert triangle.min_weight() == 1.0
        assert triangle.max_weight() == 2.5

    def test_aspect_ratio(self, triangle):
        assert triangle.aspect_ratio() == pytest.approx(2.5)

    def test_aspect_ratio_edgeless(self):
        assert WeightedGraph(range(3)).aspect_ratio() == 1.0

    def test_contains_iter_len(self, triangle):
        assert 0 in triangle
        assert 9 not in triangle
        assert sorted(triangle) == [0, 1, 2]
        assert len(triangle) == 3

    def test_edge_set_is_canonical(self, triangle):
        es = triangle.edge_set()
        assert (0, 1) in es and (1, 0) not in es

    def test_canonical_edge(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_canonical_edge_int_order_is_numeric(self):
        # direct comparison, not the old repr()-lexicographic order
        # (which would have put 10 before 2)
        assert canonical_edge(10, 2) == (2, 10)
        assert canonical_edge(2, 10) == (2, 10)

    def test_canonical_edge_mixed_types_pinned(self):
        # mixed int/str vertices: ordered by (type name, repr) —
        # "int" < "str", so the int always comes first, from both sides
        assert canonical_edge(1, "a") == (1, "a")
        assert canonical_edge("a", 1) == (1, "a")
        assert canonical_edge(10, "2") == (10, "2")
        assert canonical_edge("2", 10) == (10, "2")
        # same-type strings compare directly
        assert canonical_edge("b", "a") == ("a", "b")

    def test_edges_once_with_mixed_vertex_types(self):
        g = WeightedGraph()
        g.add_edge(1, "a", 1.0)
        g.add_edge("a", 2, 2.0)
        g.add_edge(2, 1, 3.0)
        edges = list(g.edges())
        assert len(edges) == 3 == g.m
        assert {(u, v) for u, v, _ in edges} == {(1, "a"), (2, "a"), (1, 2)}
        # every yielded edge is in canonical order
        for u, v, _ in edges:
            assert canonical_edge(u, v) == (u, v)


class TestDerivedGraphs:
    def test_copy_is_deep(self, triangle):
        c = triangle.copy()
        c.add_edge(0, 3, 1.0)
        assert not triangle.has_vertex(3)
        assert c == triangle.union(c)

    def test_subgraph_induced(self, triangle):
        s = triangle.subgraph([0, 1])
        assert s.n == 2
        assert s.m == 1
        assert s.weight(0, 1) == 1.0

    def test_edge_subgraph_spans_by_default(self, triangle):
        s = triangle.edge_subgraph([(0, 1)])
        assert s.n == 3  # all vertices kept
        assert s.m == 1

    def test_edge_subgraph_without_spanning(self, triangle):
        s = triangle.edge_subgraph([(0, 1)], include_all_vertices=False)
        assert s.n == 2

    def test_union_keeps_lighter_weight(self):
        a = WeightedGraph()
        a.add_edge(0, 1, 5.0)
        b = WeightedGraph()
        b.add_edge(0, 1, 2.0)
        b.add_edge(1, 2, 1.0)
        u = a.union(b)
        assert u.weight(0, 1) == 2.0
        assert u.m == 2

    def test_reweighted(self, triangle):
        doubled = triangle.reweighted(lambda u, v, w: 2 * w)
        assert doubled.total_weight() == pytest.approx(11.0)
        assert triangle.total_weight() == pytest.approx(5.5)  # original intact


class TestConnectivity:
    def test_connected_component(self):
        g = WeightedGraph(range(4))
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        assert g.connected_component(0) == {0, 1}
        assert len(g.connected_components()) == 2
        assert not g.is_connected()

    def test_is_tree(self):
        g = WeightedGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        assert g.is_tree()
        g.add_edge(0, 2, 1.0)
        assert not g.is_tree()

    def test_disconnected_forest_is_not_tree(self):
        g = WeightedGraph(range(4))
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        assert not g.is_tree()


class TestInterop:
    def test_networkx_roundtrip(self, small_er):
        nxg = small_er.to_networkx()
        back = WeightedGraph.from_networkx(nxg)
        assert back == small_er

    def test_networkx_distances_agree(self, small_er):
        import networkx as nx

        from repro.graphs import dijkstra

        nxg = small_er.to_networkx()
        expected = nx.single_source_dijkstra_path_length(nxg, 0)
        dist, _ = dijkstra(small_er, 0)
        for v, d in expected.items():
            assert dist[v] == pytest.approx(d)

    def test_equality_and_hash(self, triangle):
        assert triangle == triangle.copy()
        assert triangle != WeightedGraph()
        with pytest.raises(TypeError):
            hash(triangle)
