"""Cross-module integration tests: full pipelines on shared workloads."""

import math
import random

import pytest

from repro.analysis import (
    lightness,
    max_pairwise_stretch,
    root_stretch,
    verify_net,
    verify_slt,
    verify_spanner,
)
from repro.baselines import kry_slt
from repro.congest import build_bfs_tree
from repro.core import (
    build_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.graphs import (
    erdos_renyi_graph,
    hop_diameter,
    random_geometric_graph,
)
from repro.mst import boruvka_mst, kruskal_mst
from repro.spanners import greedy_spanner
from repro.spt import exact_spt_distributed


class TestFullPipelineGeneralGraph:
    """One graph, every §4–§6 construction, all guarantees cross-checked."""

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi_graph(50, 0.2, seed=42)

    def test_mst_agreement_between_algorithms(self, graph):
        assert boruvka_mst(graph).tree == kruskal_mst(graph)

    def test_spanner_quality_matches_paper_form(self, graph):
        """Lightness must respect the paper's O(k·n^{1/k}) form (constant
        4), and the greedy baseline certifies the same stretch with fewer
        edges — the price of distribution."""
        rng = random.Random(0)
        ours = light_spanner(graph, 2, 0.25, rng)
        base = greedy_spanner(graph, ours.stretch_bound)
        verify_spanner(graph, ours.spanner, ours.stretch_bound)
        k, n = 2, graph.n
        assert lightness(graph, ours.spanner) <= 4 * k * n ** (1 / k)
        assert base.m <= ours.spanner.m  # greedy is the quality frontier

    def test_slt_vs_kry_quality(self, graph):
        ours = shallow_light_tree(graph, 0, alpha=5.0)
        base = kry_slt(graph, 0, eps=0.5)  # lightness 1+2/ε = 5 too
        verify_slt(graph, ours.tree, 0, ours.stretch_bound, 5.0)
        assert root_stretch(graph, ours.tree, 0) <= 5 * max(
            1.0, root_stretch(graph, base.tree, 0)
        )

    def test_slt_rounds_beat_sequential_scan_asymptotics(self, graph):
        """§4's point: the two-phase selection avoids the Ω(n) scan; on a
        sparse graph the charged rounds stay o(n)·polylog-ish."""
        ours = shallow_light_tree(graph, 0, alpha=5.0)
        phases = ours.ledger.by_phase()
        assert phases["bp1-interval-scan"] < graph.n

    def test_net_of_spanner_is_net_of_graph_up_to_stretch(self, graph):
        """Composing constructions: a net built on a t-spanner is an
        (α·t, β/1)-net of the original graph."""
        rng = random.Random(1)
        sp = light_spanner(graph, 2, 0.25, rng)
        t = sp.stretch_bound
        net = build_net(sp.spanner, 30.0, 0.5, rng)
        verify_net(graph, net.points, net.alpha, net.beta / t)

    def test_mst_weight_estimate_consistency(self, graph):
        est = estimate_mst_weight_via_nets(graph, net_method="greedy")
        assert est.approximation_ratio >= 1.0 - 1e-9
        assert est.approximation_ratio <= 16 * est.alpha * math.log2(graph.n)


class TestFullPipelineDoublingGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_geometric_graph(35, seed=7)

    def test_doubling_spanner_beats_general_lightness(self, graph):
        """On doubling inputs the §7 spanner at small ε should be at least
        competitive with the general §5 spanner at k=1 on stretch."""
        rng = random.Random(2)
        doub = doubling_spanner(graph, 0.1, rng, net_method="greedy")
        assert max_pairwise_stretch(graph, doub.spanner) <= 1.0 + 30 * 0.1

    def test_bfs_and_spt_agree_on_root_reachability(self, graph):
        bfs = build_bfs_tree(graph, 0)
        spt = exact_spt_distributed(graph, 0)
        assert set(bfs.depth) == set(spt.dist)

    def test_spt_rounds_at_most_hops_times_slack(self, graph):
        spt = exact_spt_distributed(graph, 0)
        assert spt.rounds <= graph.n + 2


class TestRoundScalingAcrossConstructions:
    """The Table-1 rounds columns, checked as growth rates."""

    @staticmethod
    def _graph(n, seed=0):
        return erdos_renyi_graph(n, min(1.0, 6.0 / n), seed=seed)

    def test_spanner_rounds_sublinear(self):
        r1 = light_spanner(self._graph(36), 2, 0.25, random.Random(0)).rounds
        r2 = light_spanner(self._graph(144), 2, 0.25, random.Random(0)).rounds
        # Õ(n^{1/2+1/10}): 4x n → ~2.3x rounds; allow 3.5x
        assert r2 <= 3.5 * r1

    def test_slt_rounds_sublinear(self):
        r1 = shallow_light_tree(self._graph(36), 0, 8.0).rounds
        r2 = shallow_light_tree(self._graph(144), 0, 8.0).rounds
        assert r2 <= 3.5 * r1

    def test_net_rounds_superlinear_floor(self):
        from repro.core import congest_round_floor

        g = self._graph(64)
        res = build_net(g, 30.0, 0.5, random.Random(1))
        assert res.rounds >= congest_round_floor(g.n, hop_diameter(g))
