#!/usr/bin/env python3
"""Broadcast backbone selection with shallow-light trees.

The paper's §1.2 motivation ([ABP90, ABP92]): a root station broadcasts
to a network; sending over edge e costs ``w(e)`` per message, and the
latency to v is the tree distance from the root.  The MST minimizes total
cost but can have terrible latency; the SPT minimizes latency but can be
very heavy.  An (α, β)-SLT interpolates: lightness β (total cost) with
root-stretch α (latency).

This example builds the three backbones on a "metro ring" topology —
heavy long-haul ring edges plus cheap local links — and prints the
cost/latency frontier the SLT trades along.

Run:  python examples/broadcast_backbone.py
"""

from repro.analysis import lightness
from repro.core import shallow_light_tree
from repro.graphs import WeightedGraph, dijkstra, star_graph
from repro.mst.kruskal import kruskal_mst
from repro.spt.approx_spt import approx_spt


def backbone_metrics(graph: WeightedGraph, tree: WeightedGraph, root) -> dict:
    """Total link cost and worst/avg delivery latency of a backbone."""
    dist, _ = dijkstra(tree, root)
    true, _ = dijkstra(graph, root)
    worst = max(
        dist[v] / true[v] for v in graph.vertices() if v != root and true[v] > 0
    )
    return {
        "cost": tree.total_weight(),
        "worst_latency_stretch": worst,
        "max_latency": max(dist.values()),
    }


def main() -> None:
    # hub-and-ring: long-haul spokes from the root station, cheap local
    # ring links between the leaf sites — the classic SLT motivation:
    # the MST (ring + one spoke) is light but has latency stretch ~n,
    # the SPT (all spokes) is fast but ~n/2 times heavier.
    g = star_graph(40, spoke_weight=5.0, rim_weight=1.0)
    root = 0
    mst = kruskal_mst(g)
    spt = approx_spt(g, root, eps=0.0).as_graph(g)  # exact SPT

    print(f"hub-and-ring network: {g}")
    print(f"{'backbone':<26}{'total cost':>12}{'cost/MST':>10}"
          f"{'latency stretch':>17}")

    rows = [("MST (min cost)", mst), ("SPT (min latency)", spt)]
    for alpha in (1.3, 2.0, 5.0):
        res = shallow_light_tree(g, root, alpha)
        rows.append((f"SLT alpha={alpha}", res.tree))

    for name, tree in rows:
        m = backbone_metrics(g, tree, root)
        print(
            f"{name:<26}{m['cost']:>12.1f}"
            f"{lightness(g, tree):>10.2f}"
            f"{m['worst_latency_stretch']:>17.2f}"
        )

    print(
        "\nThe SLT rows interpolate the frontier: near-MST cost at bounded"
        "\nlatency stretch — the broadcast application of Theorem 1."
    )


if __name__ == "__main__":
    main()
