#!/usr/bin/env python3
"""Network synchronizer over a light spanner.

§1.1's classical application ([Awe85, PU89]): a synchronizer lets a
synchronous algorithm run on an asynchronous network by sending "pulse"
acknowledgements over a sparse, light subgraph each round.  The per-pulse
communication cost is the total weight of the overlay; its per-pulse
latency penalty is the overlay's stretch.

This example compares three overlays on a random network — the full
graph, the MST, and the §5 light spanner — and prints the per-pulse cost
and the worst detour any edge's acknowledgement takes.

Run:  python examples/synchronizer_overlay.py
"""

import random

from repro.analysis import lightness, max_edge_stretch, sparsity
from repro.core import light_spanner
from repro.graphs import erdos_renyi_graph
from repro.mst.kruskal import kruskal_mst


def main() -> None:
    g = erdos_renyi_graph(80, 0.8, seed=11)
    print(f"network: {g}\n")

    mst = kruskal_mst(g)
    sp = light_spanner(g, k=3, eps=0.25, rng=random.Random(11))

    overlays = [
        ("full graph", g),
        ("MST", mst),
        ("light spanner (k=3)", sp.spanner),
    ]
    print(f"{'overlay':<22}{'edges':>7}{'pulse cost w(H)':>17}"
          f"{'cost/MST':>10}{'worst detour':>14}")
    for name, h in overlays:
        print(
            f"{name:<22}{sparsity(h):>7}{h.total_weight():>17.0f}"
            f"{lightness(g, h):>10.2f}"
            f"{max_edge_stretch(g, h):>14.2f}"
        )

    print(
        "\nThe MST minimizes pulse cost but an acknowledgement between"
        f"\nadjacent nodes can detour by {max_edge_stretch(g, mst):.1f}x; the"
        " spanner caps the detour"
        f"\nat its stretch guarantee ({sp.stretch_bound:.2f}) for"
        f" {lightness(g, sp.spanner) / lightness(g, g) * 100:.0f}% of the"
        " full graph's pulse cost."
        f"\nConstruction took {sp.rounds} charged CONGEST rounds"
        " (Theorem 2: sublinear in n)."
    )


if __name__ == "__main__":
    main()
