#!/usr/bin/env python3
"""Serve approximate-distance queries from a spanner via repro.oracle.

Builds a Baswana–Sen 3-spanner of an ER graph, preprocesses it into a
:class:`~repro.oracle.DistanceOracle` (seeded far-sampled landmarks +
ALT potentials), and serves a repeat-heavy query mix — demonstrating
the exact-on-structure contract (answers equal Dijkstra on the spanner,
hence within the paper's stretch bound of the true distance), the LRU
cache's effect on repeated traffic, k-nearest serving, and the pickle
hand-off between a build process and a serve process.

Run:  python examples/distance_oracle.py
"""

import pickle
import random
import time

from repro.analysis import sample_pairwise_stretch, verify_oracle
from repro.graphs import erdos_renyi_graph
from repro.graphs.shortest_paths import dijkstra
from repro.oracle import build_oracle
from repro.spanners import baswana_sen_spanner


def main() -> None:
    rng = random.Random(0)
    g = erdos_renyi_graph(250, 0.06, seed=4)
    k = 2
    h = baswana_sen_spanner(g, k, rng)
    print(f"host graph  {g}")
    print(f"spanner     {h}  (stretch guarantee {2 * k - 1})")

    # -- preprocess once ------------------------------------------------
    t0 = time.perf_counter()
    oracle = build_oracle(h, landmarks=8, strategy="far", seed=0)
    print(f"\noracle      {oracle}  built in {time.perf_counter() - t0:.3f}s")
    verify_oracle(h, oracle, pairs=25, seed=1)
    print("contract    25 spot-checked pairs == Dijkstra-on-spanner: ok")

    # -- query many -----------------------------------------------------
    verts = list(g.vertices())
    hot = [(rng.choice(verts), rng.choice(verts)) for _ in range(20)]
    mix = [hot[rng.randrange(len(hot))] if rng.random() < 0.6
           else (rng.choice(verts), rng.choice(verts)) for _ in range(500)]
    t0 = time.perf_counter()
    answers = oracle.query_many(mix)
    serve_s = time.perf_counter() - t0
    info = oracle.cache_info()
    print(f"\nserved      {len(mix)} queries in {serve_s * 1000:.1f}ms "
          f"({len(mix) / serve_s:.0f} q/s)")
    print(f"cache       {info['hits']} hits / {info['misses']} misses "
          f"({info['pinched']} pinched by landmark bounds, "
          f"{info['searches']} bidirectional searches)")

    u, v = mix[0]
    exact_h = dijkstra(h, u)[0][v]
    exact_g = dijkstra(g, u)[0][v]
    print(f"\nsample pair d_H({u}, {v}) = {answers[0]:.4f} "
          f"(Dijkstra agrees: {exact_h:.4f}; true d_G = {exact_g:.4f}, "
          f"stretch {answers[0] / exact_g:.3f} <= {2 * k - 1})")

    near = oracle.k_nearest(u, 5)
    print("k-nearest   " + "  ".join(f"{w}@{d:.3f}" for w, d in near))

    # -- analysis reuses the oracle for spot-checks ---------------------
    sampled = sample_pairwise_stretch(g, h, pairs=64, seed=2,
                                      spanner_oracle=oracle)
    print(f"\nsampled pairwise stretch over 64 seeded pairs: {sampled:.3f} "
          f"(bound {2 * k - 1})")

    # -- ship the oracle to a serving process ---------------------------
    blob = pickle.dumps(oracle)
    served = pickle.loads(blob)
    assert served.query_many(mix) == answers
    print(f"\npickled     {len(blob) / 1024:.0f} KiB; thawed copy answers the "
          f"whole mix identically (cache rebuilt cold)")


if __name__ == "__main__":
    main()
