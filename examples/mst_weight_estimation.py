#!/usr/bin/env python3
"""MST-weight estimation from net cardinalities (§8, Theorem 7).

The reduction that powers the paper's lower bound, run forward: O(log n)
net-oracle calls produce Ψ = Σ n_i·α·2^{i+1} with L <= Ψ <= O(α·log n)·L.
Because approximating L needs Ω̃(√n) rounds on the Das-Sarma-style family,
so does building nets.

The example plants three MST weights in the hard family and shows Ψ
tracking them, then prints the per-scale net sizes for one instance.

Run:  python examples/mst_weight_estimation.py
"""

import math

from repro.core import estimate_mst_weight_via_nets
from repro.graphs import das_sarma_hard_graph, hop_diameter


def main() -> None:
    print("planted-weight sweep on the hard family (n ~ 120):\n")
    print(f"{'planted w':>10}{'L = w(MST)':>14}{'Psi':>14}{'Psi/L':>8}")
    for planted in (1.0, 100.0, 10_000.0):
        g, mst_w = das_sarma_hard_graph(120, planted_weight=planted, seed=1)
        est = estimate_mst_weight_via_nets(g, net_method="greedy")
        print(
            f"{planted:>10.0f}{mst_w:>14.0f}{est.psi:>14.0f}"
            f"{est.approximation_ratio:>8.2f}"
        )

    g, mst_w = das_sarma_hard_graph(120, planted_weight=100.0, seed=1)
    est = estimate_mst_weight_via_nets(g, net_method="greedy")
    upper = est.alpha * 16 * math.log2(g.n)
    print(
        f"\nguarantee: 1 <= Psi/L <= O(alpha log n) ~ {upper:.0f}"
        f"   (alpha = {est.alpha:.2f}, D = {hop_diameter(g)})"
    )

    print("\nper-scale net sizes (Claim 7: n_i <= ceil(2L / 2^i)):")
    print(f"{'i':>4}{'2^i':>12}{'|N_i|':>8}{'Claim-7 cap':>14}")
    for i in sorted(est.net_sizes):
        cap = math.ceil(2 * mst_w / 2.0 ** i)
        print(f"{i:>4}{2.0 ** i:>12.2f}{est.net_sizes[i]:>8}{cap:>14}")

    print(
        "\nEach scale's net is 2^i-separated, so its size caps the MST"
        "\nweight from below; covering caps it from above — Theorem 7."
    )


if __name__ == "__main__":
    main()
