#!/usr/bin/env python3
"""Quickstart: every Table-1 construction on one small network.

Run:  python examples/quickstart.py
"""

import random

from repro.analysis import (
    lightness,
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
    verify_net,
    verify_slt,
    verify_spanner,
)
from repro.core import (
    build_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.graphs import erdos_renyi_graph, hop_diameter, random_geometric_graph


def main() -> None:
    rng = random.Random(0)
    g = erdos_renyi_graph(60, 0.2, seed=1)
    print(f"input graph: {g}  (hop-diameter D = {hop_diameter(g)})")

    # --- §5: light spanner --------------------------------------------
    sp = light_spanner(g, k=2, eps=0.25, rng=rng)
    verify_spanner(g, sp.spanner, sp.stretch_bound)
    print(
        f"\n[§5] light spanner, k=2:"
        f"\n     stretch   {max_edge_stretch(g, sp.spanner):.3f}"
        f"  (guaranteed <= {sp.stretch_bound:.2f})"
        f"\n     lightness {lightness(g, sp.spanner):.2f}"
        f"\n     edges     {sp.spanner.m} of {g.m}"
        f"\n     rounds    {sp.rounds} (charged CONGEST rounds)"
    )

    # --- §4: shallow-light tree ---------------------------------------
    slt = shallow_light_tree(g, root=0, alpha=5.0)
    verify_slt(g, slt.tree, 0, slt.stretch_bound, 5.0)
    print(
        f"\n[§4] shallow-light tree, lightness budget alpha=5:"
        f"\n     lightness    {lightness(g, slt.tree):.3f}  (<= 5)"
        f"\n     root-stretch {root_stretch(g, slt.tree, 0):.3f}"
        f"  (guaranteed <= {slt.stretch_bound:.1f})"
        f"\n     rounds       {slt.rounds}"
    )

    # --- §6: net -------------------------------------------------------
    net = build_net(g, delta_param=30.0, delta=0.5, rng=rng)
    verify_net(g, net.points, net.alpha, net.beta)
    print(
        f"\n[§6] ({net.alpha:.0f}, {net.beta:.0f})-net:"
        f"\n     {len(net.points)} points in {net.iterations} kill iterations"
        f"\n     rounds {net.rounds}"
    )

    # --- §7: doubling spanner -----------------------------------------
    gg = random_geometric_graph(35, seed=2)
    ds = doubling_spanner(gg, eps=0.1, rng=rng, net_method="greedy")
    print(
        f"\n[§7] doubling spanner on a geometric graph (n={gg.n}):"
        f"\n     stretch   {max_pairwise_stretch(gg, ds.spanner):.4f}"
        f"  (guaranteed <= {ds.stretch_bound:.2f})"
        f"\n     lightness {lightness(gg, ds.spanner):.1f}"
        f"\n     edges     {ds.spanner.m}"
    )

    # --- §8: MST-weight estimation via nets ----------------------------
    est = estimate_mst_weight_via_nets(g, net_method="greedy")
    print(
        f"\n[§8] MST weight via net cardinalities:"
        f"\n     Psi = {est.psi:.0f} vs L = {est.mst_weight:.0f}"
        f"  (ratio {est.approximation_ratio:.2f}, guaranteed O(alpha log n))"
    )


if __name__ == "__main__":
    main()
