#!/usr/bin/env python3
"""Serve a spanner from shared memory and drive load at the daemon.

Builds a Baswana–Sen 3-spanner, preprocesses it into a
:class:`~repro.oracle.DistanceOracle`, and publishes it once through
:class:`~repro.serve.Server` — two worker processes attach zero-copy
views of the same frozen CSR + landmark potentials (one payload, not
one pickled oracle per worker). A :class:`~repro.serve.ServeClient`
exercises the frame protocol (queries, batch, k-nearest, typed errors,
merged worker metrics), then the load generator measures a small
qps-vs-concurrency curve closed-loop and replays a seeded Poisson
schedule open-loop — the same drivers behind ``repro loadgen`` and the
committed ``benchmarks/BENCH_serve_speedup.json`` curve.

Run:  python examples/serve_loadgen.py
"""

import random
import threading

from repro.graphs import erdos_renyi_graph
from repro.harness.loadgen import (
    poisson_schedule,
    run_closed_level,
    run_open_level,
    schedule_digest,
)
from repro.oracle import build_oracle
from repro.serve import ProtocolError, ServeClient, Server
from repro.spanners import baswana_sen_spanner


def main() -> None:
    rng = random.Random(0)
    g = erdos_renyi_graph(200, 0.06, seed=4)
    h = baswana_sen_spanner(g, 2, rng)
    oracle = build_oracle(h, landmarks=6, strategy="far", seed=0)
    print(f"host {g}  ->  spanner {h}  ->  {oracle}")

    # -- publish once, serve from two crash-isolated workers ------------
    server = Server(oracle, workers=2, port=0, warm=2)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    print(f"daemon up at {host}:{port}, workers=2, "
          f"shared payload {server.payload_bytes} bytes")

    try:
        with ServeClient.open(server.address) as client:
            # -- the protocol, one op at a time -------------------------
            d = client.query("0", "7")
            batch = client.query_many([("0", "7"), ("3", "12"), ("0", "7")])
            nearest = client.k_nearest("5", k=3)
            print(f"query d(0,7) = {d:.4f}   batch {batch}")
            print(f"k-nearest(5) = {nearest}")

            # failures are typed envelopes, never tracebacks or hangs
            try:
                client.query("0", "no-such-vertex")
            except ProtocolError as err:
                print(f"typed error  code={err.code!r}: {err}")

            stats = client.stats()
            requests = stats["snapshot"]["serve.worker.requests"]["value"]
            print(f"merged metrics from {stats['workers']} workers: "
                  f"{requests} compute requests so far")

            # -- closed loop: a fixed-concurrency qps curve -------------
            pairs = [(str(rng.randrange(200)), str(rng.randrange(200)))
                     for _ in range(120)]
            print("\nclosed loop (every client replays its share "
                  "back-to-back):")
            for concurrency in (1, 2, 4):
                level, _ = run_closed_level(
                    server.address, pairs, concurrency, repeats=2
                )
                print(f"  c={concurrency}: {level.requests} req, "
                      f"p50 {level.p50_ms:.3f} ms, p99 {level.p99_ms:.3f} ms, "
                      f"{level.qps:.0f} q/s, "
                      f"failures {level.failure_rate:.1%}")

            # -- open loop: seeded Poisson arrivals on a wall clock -----
            schedule = poisson_schedule(pairs, rate=300.0, duration=1.0,
                                        seed=42)
            level = run_open_level(server.address, schedule, clients=4)
            print(f"\nopen loop (Poisson 300/s for 1 s, "
                  f"schedule sha256 {schedule_digest(schedule)[:12]}...):")
            print(f"  {level.requests} req at {level.offered_rate:.0f}/s "
                  f"offered, p50 {level.p50_ms:.3f} ms, "
                  f"p99 {level.p99_ms:.3f} ms, "
                  f"failures {level.failure_rate:.1%}")
            print("  (latency is measured from the scheduled arrival — "
                  "queueing delay counts)")
    finally:
        server.request_shutdown()
        thread.join(timeout=30)
    print("\ndaemon drained and stopped; shared segment unlinked")


if __name__ == "__main__":
    main()
