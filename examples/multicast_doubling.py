#!/usr/bin/env python3
"""Ad-hoc wireless multicast over a doubling spanner.

§1.3 motivation ([BDS04, PV04]): wireless ad-hoc networks are unit-ball
graphs in a doubling metric.  Keeping the full topology is wasteful; a
(1+ε)-spanner with ε^{-O(ddim)}·log n lightness is a sparse routing
overlay that preserves all routes up to 1+ε.

The example builds the §7 spanner on a unit-ball graph, then simulates a
multicast from a source to a random subscriber group over (a) the full
graph and (b) the spanner, comparing kept-state (edges) and total route
cost.

Run:  python examples/multicast_doubling.py
"""

import random

from repro.analysis import lightness, max_pairwise_stretch
from repro.core import doubling_spanner
from repro.graphs import dijkstra, doubling_dimension_estimate, unit_ball_graph


def multicast_cost(graph, source, group) -> float:
    """Sum of shortest-route costs from source to each subscriber."""
    dist, _ = dijkstra(graph, source)
    return sum(dist[v] for v in group)


def main() -> None:
    rng = random.Random(7)
    g = unit_ball_graph(45, seed=7)
    print(f"wireless topology: {g}")
    print(f"estimated doubling dimension: {doubling_dimension_estimate(g):.1f}")

    res = doubling_spanner(g, eps=0.1, rng=rng, net_method="greedy")
    h = res.spanner
    print(
        f"\n(1+eps)-spanner overlay (eps=0.1):"
        f"\n  edges kept   {h.m} / {g.m}"
        f" ({100 * h.m / g.m:.0f}% of links)"
        f"\n  lightness    {lightness(g, h):.1f}"
        f"\n  stretch      {max_pairwise_stretch(g, h):.4f}"
        f" (guaranteed <= {res.stretch_bound:.2f})"
    )

    source = 0
    group = rng.sample([v for v in g.vertices() if v != source], 10)
    full = multicast_cost(g, source, group)
    overlay = multicast_cost(h, source, group)
    print(
        f"\nmulticast to {len(group)} subscribers:"
        f"\n  full-topology route cost  {full:.1f}"
        f"\n  spanner route cost        {overlay:.1f}"
        f"  (+{100 * (overlay / full - 1):.2f}%)"
    )
    print(
        "\nThe overlay keeps a fraction of the links and pays a route-cost"
        "\npremium bounded by eps — the multicast application of Theorem 5."
    )


if __name__ == "__main__":
    main()
