"""§8 — lower bounds: the net→MST-weight reduction and the Ω̃(√n+D) floor.

Theorem 7's reduction is run end-to-end: the estimator Ψ from O(log n)
net-oracle calls must sandwich the MST weight, and *because* it does, any
net algorithm inherits the [SHK+12] Ω̃(√n) floor — shown here by placing
every construction's charged rounds against the floor.
"""

from __future__ import annotations

import math
import random

import pytest

from conftest import print_table, run_once, workload

from repro.core import (
    build_net,
    congest_round_floor,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.graphs import hop_diameter
from repro.mst import kruskal_mst


@pytest.mark.parametrize("planted", [1.0, 100.0, 10_000.0])
def test_theorem7_reduction_on_hard_family(benchmark, planted):
    g = workload("estimate-lower-bound", planted_weight=planted)
    mst_w = kruskal_mst(g).total_weight()
    est = run_once(benchmark, estimate_mst_weight_via_nets, g, net_method="greedy")
    upper = 16 * est.alpha * math.log2(g.n)
    print_table(
        f"Theorem 7 reduction, planted weight {planted}",
        ["quantity", "value"],
        [
            ["w(MST) = L", f"{mst_w:.0f}"],
            ["Psi", f"{est.psi:.0f}"],
            ["Psi / L", f"{est.approximation_ratio:.2f}"],
            ["guarantee", f"1 <= Psi/L <= O(alpha log n) ~ {upper:.0f}"],
            ["net scales used", f"{len(est.net_sizes)}"],
        ],
    )
    benchmark.extra_info.update(planted=planted, ratio=est.approximation_ratio)
    assert 1.0 - 1e-9 <= est.approximation_ratio <= upper


def test_estimator_distinguishes_planted_weights(benchmark):
    """The crux of the hardness transfer: Ψ separates light/heavy plants."""

    instances = [
        (planted, workload("estimate-lower-bound", n=100, planted_weight=planted, seed=2))
        for planted in (1.0, 100.0, 10_000.0)
    ]
    weights = {planted: kruskal_mst(g).total_weight() for planted, g in instances}

    def run():
        return [
            (planted, weights[planted],
             estimate_mst_weight_via_nets(g, net_method="greedy").psi)
            for planted, g in instances
        ]

    rows = run_once(benchmark, run)
    print_table(
        "Psi tracks the planted MST weight",
        ["planted w", "L", "Psi"],
        [[p, f"{l:.0f}", f"{psi:.0f}"] for p, l, psi in rows],
    )
    assert rows[2][2] > rows[0][2]


def test_distributed_net_oracle_reduction(benchmark):
    """Same reduction with the actual Theorem-3 nets (rounds now real
    charges — this is the object the lower bound constrains)."""
    g = workload("net-er", n=40, seed=3)
    est = run_once(
        benchmark, estimate_mst_weight_via_nets, g,
        net_method="distributed", rng=random.Random(3),
    )
    floor = congest_round_floor(g.n, hop_diameter(g))
    print_table(
        "Theorem 7 with distributed nets (n=40)",
        ["quantity", "value"],
        [
            ["Psi / L", f"{est.approximation_ratio:.2f}"],
            ["total charged rounds", f"{est.ledger.total}"],
            ["Omega~(sqrt n + D) floor", f"{floor:.0f}"],
        ],
    )
    assert est.ledger.total >= floor


def test_all_constructions_respect_round_floor(benchmark):
    """Theorem 6: light spanners and SLTs cannot beat Ω̃(√n + D)."""
    g = workload("net-er", n=64, p=0.15, seed=4)
    d = hop_diameter(g)
    floor = congest_round_floor(g.n, d)

    def run():
        sp = light_spanner(g, 2, 0.25, random.Random(4))
        sl = shallow_light_tree(g, 0, 8.0)
        nt = build_net(g, 30.0, 0.5, random.Random(4))
        return sp.rounds, sl.rounds, nt.rounds

    sp_r, sl_r, nt_r = run_once(benchmark, run)
    print_table(
        f"Charged rounds vs the Omega~(sqrt(n)+D) floor (n=64, D={d})",
        ["construction", "rounds", "floor", "rounds/floor"],
        [
            ["light spanner (Thm 2)", sp_r, f"{floor:.0f}", f"{sp_r / floor:.1f}"],
            ["SLT (Thm 1)", sl_r, f"{floor:.0f}", f"{sl_r / floor:.1f}"],
            ["net (Thm 3)", nt_r, f"{floor:.0f}", f"{nt_r / floor:.1f}"],
        ],
    )
    assert min(sp_r, sl_r, nt_r) >= floor
