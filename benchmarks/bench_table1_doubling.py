"""Table 1, row 4 — light spanners for doubling graphs (§7, Theorem 5).

Paper bounds: distortion 1+ε, lightness ε^{−O(ddim)}·log n, size
n·ε^{−O(ddim)}·log n, rounds (√n + D)·ε^{−Õ(√log n + ddim)}.
The benchmark sweeps ε on a ddim≈2 workload and checks the packing-driven
quantities (per-vertex exploration overlap, per-scale net sizes).
"""

from __future__ import annotations
import random

import pytest

from conftest import print_table, run_once, workload

from repro.analysis import lightness, max_pairwise_stretch
from repro.core import doubling_spanner
from repro.graphs import doubling_dimension_estimate

N = 40


@pytest.mark.parametrize("eps", [0.04, 0.08, 0.12])
def test_doubling_eps_sweep(benchmark, eps):
    g = workload("doubling-geometric")
    res = run_once(benchmark, doubling_spanner, g, eps, random.Random(1), net_method="greedy")
    ms = max_pairwise_stretch(g, res.spanner)
    ml = lightness(g, res.spanner)
    print_table(
        f"Table 1 row 4 (doubling spanner), eps={eps}, n={N}",
        ["metric", "paper bound", "measured"],
        [
            ["distortion", f"1+eps (cert. 1+30eps = {res.stretch_bound:.2f})", f"{ms:.4f}"],
            ["lightness", "eps^-O(ddim) log n", f"{ml:.1f}"],
            ["size", "n eps^-O(ddim) log n", f"{res.spanner.m}"],
            ["rounds", "(sqrt(n)+D) eps^-~O(sqrt(log n)+ddim)", f"{res.rounds}"],
        ],
    )
    benchmark.extra_info.update(eps=eps, stretch=ms, lightness=ml,
                                edges=res.spanner.m, rounds=res.rounds)
    assert ms <= res.stretch_bound + 1e-9


def test_doubling_lightness_grows_as_eps_shrinks(benchmark):
    """The ε^{-O(ddim)} shape: smaller ε must cost more weight."""
    g = workload("doubling-geometric", seed=22)

    def sweep():
        return [
            (eps, lightness(g, doubling_spanner(
                g, eps, random.Random(2), net_method="greedy").spanner))
            for eps in (0.12, 0.06, 0.03)
        ]

    points = run_once(benchmark, sweep)
    print_table(
        "Doubling spanner lightness vs eps",
        ["eps", "lightness"],
        [[e, f"{l:.1f}"] for e, l in points],
    )
    lights = [l for _, l in points]
    assert lights[-1] >= lights[0] - 1e-9  # finer eps is at least as heavy


def test_doubling_packing_overlap(benchmark):
    """Lemma 6 in action: the max number of 2Δ-explorations any vertex
    joins must stay far below the net size (it is ε^{-O(ddim)})."""
    g = workload("doubling-grid", rows=6, cols=6, jitter=0.2, seed=23)
    res = run_once(benchmark, doubling_spanner, g, 0.1, random.Random(3), net_method="greedy")
    rows = [
        [s.index, f"{s.scale:.1f}", s.net_size, s.paths_added, s.max_overlap]
        for s in res.scales
        if s.paths_added > 0
    ][:12]
    print_table(
        "Per-scale stats (grid 6x6, eps=0.1)",
        ["scale idx", "Delta", "net size", "paths", "max overlap"],
        rows,
    )
    worst = max(s.max_overlap for s in res.scales)
    benchmark.extra_info.update(worst_overlap=worst)
    assert worst <= g.n


def test_doubling_vs_general_spanner(benchmark):
    """§7's motivation: on doubling inputs, the specialized construction
    achieves ~1+ε stretch, far below any (2k−1)-spanner's."""
    from repro.core import light_spanner

    g = workload("doubling-geometric", seed=24)
    ddim = doubling_dimension_estimate(g)

    def both():
        d = doubling_spanner(g, 0.1, random.Random(4), net_method="greedy")
        s = light_spanner(g, 2, 0.25, random.Random(4))
        return d, s

    d, s = run_once(benchmark, both)
    print_table(
        f"Doubling (1+eps) vs general (2k-1)(1+eps) spanner, ddim~{ddim:.1f}",
        ["construction", "stretch bound", "measured stretch", "edges"],
        [
            ["doubling, eps=0.1", f"{d.stretch_bound:.2f}", f"{max_pairwise_stretch(g, d.spanner):.3f}", d.spanner.m],
            ["general, k=2", f"{s.stretch_bound:.2f}", f"{max_pairwise_stretch(g, s.spanner):.3f}", s.spanner.m],
        ],
    )
    assert max_pairwise_stretch(g, d.spanner) <= d.stretch_bound
