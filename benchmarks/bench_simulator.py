"""Microbenchmarks of the CONGEST substrate itself.

Validates the cost model that every composed construction charges
against: measured BFS rounds vs hop-diameter, pipelined broadcast vs the
Lemma-1 formula, keyed aggregation vs O(#keys + height), and the native
§5 case-1 simulation vs the ledger charge the light spanner uses.
"""

from __future__ import annotations

import random

import pytest

from conftest import print_table, run_once

from repro.congest import (
    broadcast_messages,
    broadcast_rounds,
    build_bfs_tree,
)
from repro.congest.keyed_aggregate import keyed_max_convergecast
from repro.congest.primitives import pipelined_aggregate_rounds
from repro.core import simulate_case1_bucket
from repro.core.light_spanner import _case1_clusters
from repro.graphs import (
    barbell_graph,
    erdos_renyi_graph,
    grid_graph,
    hop_diameter,
    hypercube_graph,
)
from repro.mst import kruskal_mst
from repro.traversal import compute_euler_tour


@pytest.mark.parametrize(
    "name,graph",
    [
        ("grid 8x8", grid_graph(8, 8)),
        ("hypercube d=6", hypercube_graph(6)),
        ("barbell 5+20", barbell_graph(5, 20)),
        ("ER(60, .15)", erdos_renyi_graph(60, 0.15, seed=1)),
    ],
)
def test_bfs_rounds_track_diameter(benchmark, name, graph):
    d = hop_diameter(graph)
    tree = run_once(benchmark, build_bfs_tree, graph, min(graph.vertices(), key=repr))
    print_table(
        f"BFS on {name}",
        ["hop diameter", "BFS height", "measured rounds"],
        [[d, tree.height, tree.rounds]],
    )
    assert tree.rounds <= d + 3
    benchmark.extra_info.update(diameter=d, rounds=tree.rounds)


@pytest.mark.parametrize("messages", [5, 20, 60])
def test_broadcast_measured_vs_lemma1(benchmark, messages):
    g = grid_graph(6, 6)
    tree = build_bfs_tree(g, 0)
    payloads = {v: ["x"] for v in list(g.vertices())[:messages]}

    def run():
        return broadcast_messages(g, tree, payloads)

    _, measured = run_once(benchmark, run)
    charged = broadcast_rounds(messages, tree.height)
    print_table(
        f"Pipelined broadcast, M={messages}",
        ["M", "height", "Lemma-1 charge (M+h)", "measured (two-way)"],
        [[messages, tree.height, charged, measured]],
    )
    assert measured <= 2 * charged + 6
    benchmark.extra_info.update(M=messages, measured=measured, charged=charged)


@pytest.mark.parametrize("keys", [3, 10, 30])
def test_keyed_aggregate_scaling(benchmark, keys):
    g = grid_graph(6, 6)
    tree = build_bfs_tree(g, 0)
    rng = random.Random(keys)
    inputs = {
        v: {f"k{i:02d}": (rng.random(), "s") for i in range(keys)}
        for v in g.vertices()
    }

    def run():
        return keyed_max_convergecast(g, tree, inputs)

    merged, rounds = run_once(benchmark, run)
    charged = pipelined_aggregate_rounds(keys, tree.height)
    print_table(
        f"Keyed-max convergecast, {keys} keys",
        ["keys", "height", "charge (K+h)", "measured"],
        [[keys, tree.height, charged, rounds]],
    )
    assert len(merged) == keys
    assert rounds <= 2 * charged + 8
    benchmark.extra_info.update(keys=keys, measured=rounds)


def test_case1_simulation_measured_vs_charged(benchmark):
    """The §5 light spanner charges each case-1 [EN17b] round at
    1 + 2(|C_i| + height); the native execution must land within a small
    constant of that."""
    g = erdos_renyi_graph(30, 0.25, seed=7)
    tree = build_bfs_tree(g, 0)
    mst = kruskal_mst(g)
    tour = compute_euler_tour(mst, 0)
    eps_wi = 0.25 * 2 * mst.total_weight() / 2.0
    cluster_of = _case1_clusters(tour, eps_wi)
    num_clusters = len(set(cluster_of.values()))
    k = 2

    sim = run_once(
        benchmark, simulate_case1_bucket, g, tree, cluster_of, k, random.Random(7)
    )
    charged_per_round = 1 + 2 * (num_clusters + tree.height)
    rows = [
        [r + 1, cc, bc, charged_per_round]
        for r, (cc, bc) in enumerate(sim.round_breakdown)
    ]
    print_table(
        f"§5 case-1 native simulation ({num_clusters} clusters, k={k})",
        ["EN round", "convergecast", "broadcast", "ledger charge"],
        rows,
    )
    for cc, bc in sim.round_breakdown:
        assert cc + bc <= 3 * charged_per_round + 12
    benchmark.extra_info.update(total=sim.rounds)
