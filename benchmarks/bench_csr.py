"""Dict backend vs indexed CSR fast path.

Times the same operation on both backends of Table-1-sized instances
(n >= 2000) and prints the speedup: single-source Dijkstra, the full
edge sweep (the §5 bucketing pattern), the Baswana–Sen spanner, and the
one-off freeze cost that buys all of it.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import print_table, run_once

from repro.graphs import dijkstra, erdos_renyi_graph
from repro.graphs.shortest_paths import _dict_dijkstra
from repro.spanners.baswana_sen import baswana_sen_spanner


def _timed(fn, *args, repeat: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return result, best


@pytest.mark.parametrize("n,p", [(2000, 0.01), (4000, 0.005)])
def test_dijkstra_csr_vs_dict(benchmark, n, p):
    g = erdos_renyi_graph(n, p, seed=n)
    csr = g.to_csr()
    # _dict_dijkstra is the label-keyed adjacency-map path; the public
    # dijkstra() auto-freezes WeightedGraph inputs, so calling it with g
    # would time CSR against CSR
    (dist_dict, _), t_dict = _timed(_dict_dijkstra, g, 0)
    (dist_csr, _), t_csr = _timed(dijkstra, csr, 0)
    assert dist_dict == dist_csr
    _, t_freeze = _timed(g.to_csr)
    run_once(benchmark, dijkstra, csr, 0)
    print_table(
        f"Dijkstra, ER(n={n}, p={p}), m={g.m}",
        ["backend", "seconds", "speedup"],
        [
            ["dict", f"{t_dict:.4f}", "1.0x"],
            ["CSR", f"{t_csr:.4f}", f"{t_dict / t_csr:.2f}x"],
            ["(freeze cost)", f"{t_freeze:.4f}", "amortized"],
        ],
    )
    benchmark.extra_info.update(n=n, dict_s=t_dict, csr_s=t_csr)
    assert t_csr < t_dict, "CSR Dijkstra must beat the dict backend"


@pytest.mark.parametrize("n,p", [(2000, 0.01)])
def test_edge_sweep_csr_vs_dict(benchmark, n, p):
    g = erdos_renyi_graph(n, p, seed=7)
    csr = g.to_csr()
    threshold = 50.0

    def sweep(graph):
        return sum(1 for _, _, w in graph.edges() if w <= threshold)

    count_dict, t_dict = _timed(sweep, g, repeat=5)
    count_csr, t_csr = _timed(sweep, csr, repeat=5)
    assert count_dict == count_csr
    run_once(benchmark, sweep, csr)
    print_table(
        f"Full edge sweep, ER(n={n}, p={p}), m={g.m}",
        ["backend", "seconds", "speedup"],
        [
            ["dict", f"{t_dict:.4f}", "1.0x"],
            ["CSR", f"{t_csr:.4f}", f"{t_dict / t_csr:.2f}x"],
        ],
    )
    benchmark.extra_info.update(n=n, dict_s=t_dict, csr_s=t_csr)


def test_baswana_sen_on_csr(benchmark):
    """The spanner's cluster scans run on the frozen view internally;
    this pins the end-to-end construction time on an n=2000 instance."""
    g = erdos_renyi_graph(2000, 0.01, seed=21)
    h, t_total = _timed(
        lambda: baswana_sen_spanner(g, 3, random.Random(5)), repeat=1
    )
    run_once(benchmark, baswana_sen_spanner, g, 3, random.Random(5))
    print_table(
        f"Baswana-Sen k=3 on ER(2000, 0.01), m={g.m}",
        ["quantity", "value"],
        [
            ["spanner edges", h.m],
            ["seconds", f"{t_total:.3f}"],
        ],
    )
    assert h.m <= 4 * 3 * 2000 ** (1 + 1 / 3)
    benchmark.extra_info.update(edges=h.m, seconds=t_total)
