"""Oracle serving-speedup evidence: repeated queries vs fresh Dijkstras.

The serving layer's reason to exist is the preprocess-once/query-many
regime: build a :class:`repro.oracle.DistanceOracle` over a structure
once, then answer repeat-heavy query traffic from landmark-pruned
bidirectional searches and the LRU cache instead of paying a full SSSP
per question.  This script measures that claim on the repository's
canonical evidence workload (the same ER(2000, 0.01) + Baswana–Sen k=3
instance ``bench_certify.py`` uses): 1000 seeded queries drawn from a
100-pair hot set, served

* by the oracle (cache-assisted, after one preprocessing pass), vs
* by one fresh full Dijkstra per query — the no-serving-layer baseline;

plus a fresh-traffic variant (1000 distinct pairs, every query a cache
miss) to show the ALT search wins even without the cache.  It writes the
committed evidence files

* ``benchmarks/BENCH_oracle_speedup.txt`` — human-readable table;
* ``benchmarks/BENCH_oracle_speedup.json`` — the record CI's
  ``oracle-smoke`` job gates on (>= 10x for the repeated mix).

Run modes::

    python benchmarks/bench_oracle.py --run    # measure + rewrite both files
    python benchmarks/bench_oracle.py --check  # validate the committed JSON

Not a pytest file on purpose: the per-query-Dijkstra baseline alone
costs ~8s, which does not belong in the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

#: the acceptance bar: oracle must beat per-query Dijkstra by this factor
#: on the repeated (cache-friendly) mix
REQUIRED_SPEEDUP = 10.0

HERE = Path(__file__).resolve().parent
TXT_PATH = HERE / "BENCH_oracle_speedup.txt"
JSON_PATH = HERE / "BENCH_oracle_speedup.json"

REQUIRED_JSON_KEYS = {
    "workload", "landmarks", "strategy", "build_seconds",
    "repeated_queries", "hot_pairs", "repeated_oracle_seconds",
    "repeated_dijkstra_seconds", "repeated_speedup", "cache_hits",
    "fresh_queries", "fresh_oracle_seconds", "fresh_dijkstra_seconds",
    "fresh_speedup", "required_speedup",
}


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def run() -> int:
    from repro.graphs import erdos_renyi_graph
    from repro.graphs.shortest_paths import dijkstra
    from repro.oracle import DistanceOracle
    from repro.spanners.baswana_sen import baswana_sen_spanner

    n, p, k = 2000, 0.01, 3
    graph = erdos_renyi_graph(n, p, seed=21)
    spanner = baswana_sen_spanner(graph, k, random.Random(5))
    spanner.freeze()  # both serving paths ride the same cached CSR view

    oracle, build_s = _timed(
        DistanceOracle.build, spanner, landmarks=8, strategy="far", seed=0
    )

    verts = list(spanner.vertices())
    rng = random.Random(7)
    hot = [(rng.choice(verts), rng.choice(verts)) for _ in range(100)]
    repeated = [hot[rng.randrange(len(hot))] for _ in range(1000)]
    fresh = [(rng.choice(verts), rng.choice(verts)) for _ in range(1000)]

    def _per_query_dijkstra(pairs):
        inf = float("inf")
        return [dijkstra(spanner, u)[0].get(v, inf) for u, v in pairs]

    oracle_repeated, oracle_repeated_s = _timed(oracle.query_many, repeated)
    hits_after_repeated = oracle.cache_info()["hits"]
    dijkstra_repeated, dijkstra_repeated_s = _timed(_per_query_dijkstra, repeated)

    oracle.reset_cache()
    oracle_fresh, oracle_fresh_s = _timed(oracle.query_many, fresh)
    dijkstra_fresh, dijkstra_fresh_s = _timed(_per_query_dijkstra, fresh)

    for name, got, want in (
        ("repeated", oracle_repeated, dijkstra_repeated),
        ("fresh", oracle_fresh, dijkstra_fresh),
    ):
        for (u, v), a, b in zip(repeated if name == "repeated" else fresh, got, want):
            if abs(a - b) > 1e-9 and a != b:
                print(f"FATAL: oracle disagrees with Dijkstra on {name} "
                      f"pair ({u!r}, {v!r}): {a!r} vs {b!r}")
                return 1

    repeated_speedup = dijkstra_repeated_s / oracle_repeated_s
    fresh_speedup = dijkstra_fresh_s / oracle_fresh_s
    workload = (f"1k queries, ER(n={n}, p={p}) m={graph.m}, "
                f"Baswana-Sen k={k} spanner m={spanner.m}")
    lines = [
        f"=== Oracle serving speedup: {workload} ===",
        "",
        f"{'serving path':<44} {'seconds':>9} {'speedup':>9}",
        "-" * 66,
        f"{'per-query fresh Dijkstra, repeated mix':<44}"
        f" {dijkstra_repeated_s:>9.3f} {'1.0x':>9}",
        f"{'oracle, repeated mix (100-pair hot set)':<44}"
        f" {oracle_repeated_s:>9.3f} {repeated_speedup:>8.1f}x",
        f"{'per-query fresh Dijkstra, fresh mix':<44}"
        f" {dijkstra_fresh_s:>9.3f} {'1.0x':>9}",
        f"{'oracle, fresh mix (no cache reuse)':<44}"
        f" {oracle_fresh_s:>9.3f} {fresh_speedup:>8.1f}x",
        "",
        f"oracle preprocessing (8 far-sampled landmarks): {build_s:.3f}s, "
        f"amortized over the repeated mix in "
        f"{build_s / max(dijkstra_repeated_s - oracle_repeated_s, 1e-9) * 1000:.1f}"
        f" queries-worth of savings per 1000",
        f"cache hits on the repeated mix: {hits_after_repeated}/1000",
        f"acceptance bar: >= {REQUIRED_SPEEDUP:.0f}x on the repeated mix "
        f"(achieved {repeated_speedup:.1f}x)",
    ]
    TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))

    record = {
        "workload": {"n": n, "p": p, "k": k, "m": graph.m,
                     "spanner_m": spanner.m, "graph_seed": 21,
                     "spanner_seed": 5, "query_seed": 7},
        "landmarks": 8,
        "strategy": "far",
        "build_seconds": round(build_s, 4),
        "repeated_queries": len(repeated),
        "hot_pairs": len(hot),
        "repeated_oracle_seconds": round(oracle_repeated_s, 4),
        "repeated_dijkstra_seconds": round(dijkstra_repeated_s, 4),
        "repeated_speedup": round(repeated_speedup, 2),
        "cache_hits": hits_after_repeated,
        "fresh_queries": len(fresh),
        "fresh_oracle_seconds": round(oracle_fresh_s, 4),
        "fresh_dijkstra_seconds": round(dijkstra_fresh_s, 4),
        "fresh_speedup": round(fresh_speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {TXT_PATH.name} and {JSON_PATH.name}")
    if repeated_speedup < REQUIRED_SPEEDUP:
        print(f"FATAL: repeated-mix speedup {repeated_speedup:.1f}x is below "
              f"the {REQUIRED_SPEEDUP:.0f}x acceptance bar")
        return 1
    return 0


def check() -> int:
    """Validate the committed JSON evidence (CI's oracle-smoke gate)."""
    if not JSON_PATH.exists():
        print(f"FATAL: {JSON_PATH} is missing — run with --run and commit it")
        return 1
    try:
        record = json.loads(JSON_PATH.read_text())
    except json.JSONDecodeError as exc:
        print(f"FATAL: {JSON_PATH} does not parse: {exc}")
        return 1
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FATAL: {JSON_PATH} lacks keys: {sorted(missing)}")
        return 1
    if record["required_speedup"] != REQUIRED_SPEEDUP:
        print(f"FATAL: committed bar {record['required_speedup']} != "
              f"code bar {REQUIRED_SPEEDUP}")
        return 1
    if record["repeated_speedup"] < REQUIRED_SPEEDUP:
        print(f"FATAL: committed repeated-mix speedup "
              f"{record['repeated_speedup']}x is below the "
              f"{REQUIRED_SPEEDUP:.0f}x acceptance bar")
        return 1
    if record["repeated_queries"] < 1000:
        print("FATAL: the evidence must cover >= 1000 repeated queries")
        return 1
    print(f"ok: oracle serves 1k repeated queries "
          f"{record['repeated_speedup']}x faster than per-query Dijkstra "
          f"(fresh mix: {record['fresh_speedup']}x; bar "
          f">= {REQUIRED_SPEEDUP:.0f}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed JSON evidence")
    args = parser.parse_args(argv)
    return run() if args.run else check()


if __name__ == "__main__":
    sys.exit(main())
