"""Observability overhead evidence: tracing disabled must cost ~nothing.

``repro.obs`` instruments the oracle / certify / CONGEST / harness
layers with spans and registry metrics, and its core promise is that
the *disabled* path — the default for every user who never passes
``--trace`` — stays within 2% of the pre-instrumentation runtime.  This
script measures that claim on the smoke suite::

    run_suite(all_profiles(), tier="smoke", measure_memory=False)

timed in fresh subprocesses, *interleaved* against the identical
harness running the pre-instrumentation tree (commit
``BASELINE_COMMIT``, checked out into a temporary ``git worktree``).
Interleaving matters: single-core containers drift by far more than 2%
over minutes, so a baseline timed yesterday — or even ten minutes ago —
cannot gate a 2% bar; pairing the two sides run-for-run and comparing
*minima* (the run least disturbed by the rest of the machine) does.

It writes the committed evidence files

* ``benchmarks/BENCH_obs_overhead.txt`` — human-readable table;
* ``benchmarks/BENCH_obs_overhead.json`` — the record CI's
  ``obs-smoke`` job gates on (disabled-mode overhead <= 2%).

CI validates the *committed* record (like ``bench_oracle.py --check``)
instead of re-timing on shared runners, and additionally schema-checks
a live ``repro bench --trace`` artifact via ``--check --trace``.

Run modes::

    python benchmarks/bench_obs.py --run            # measure + rewrite
    python benchmarks/bench_obs.py --check          # validate committed JSON
    python benchmarks/bench_obs.py --check --trace out.jsonl
                                   # ...plus schema-check a JSONL trace

Not a pytest file on purpose: ~30 smoke-suite subprocess runs cost
~30s, which does not belong in the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: the acceptance bar: disabled-mode min runtime within 2% of baseline.
MAX_OVERHEAD_PCT = 2.0

#: last commit before repro.obs existed — the uninstrumented harness.
BASELINE_COMMIT = "8322100"

#: interleaved (baseline, instrumented) suite-timing pairs per --run.
PAIRS = 10

HERE = Path(__file__).resolve().parent
REPO = HERE.parent
TXT_PATH = HERE / "BENCH_obs_overhead.txt"
JSON_PATH = HERE / "BENCH_obs_overhead.json"

REQUIRED_JSON_KEYS = {
    "harness", "baseline_commit", "baseline", "disabled", "traced",
    "noop_span_ns_per_call", "disabled_overhead_pct",
    "traced_overhead_pct", "max_overhead_pct",
}

#: span names a harness trace must cover (the build/certify/query phases
#: the acceptance criterion names, plus the suite root).
REQUIRED_TRACE_SPANS = {
    "harness.suite", "harness.profile", "harness.generate",
    "harness.build", "harness.certify",
}

#: the workload both sides time, printed seconds on stdout.
_TIMER_SCRIPT = """\
import sys, time
from repro.harness import all_profiles, run_suite

t0 = time.perf_counter()
run_suite(all_profiles(), tier="smoke", measure_memory=False)
sys.stdout.write(str(time.perf_counter() - t0))
"""


def _suite_seconds(src: Path) -> float:
    """One smoke-suite run in a fresh subprocess against ``src``."""
    proc = subprocess.run(
        [sys.executable, "-c", _TIMER_SCRIPT],
        capture_output=True,
        env={"PYTHONPATH": str(src)},
        timeout=300,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"suite run failed: {proc.stderr.decode()}")
    return float(proc.stdout)


def _stats(runs) -> dict:
    return {
        "runs_s": [round(t, 4) for t in runs],
        "median_s": round(statistics.median(runs), 4),
        "min_s": round(min(runs), 4),
    }


def run() -> int:
    from repro.obs import trace as obs_trace

    with tempfile.TemporaryDirectory(prefix="obs-baseline-") as tmp:
        baseline_tree = Path(tmp) / "tree"
        subprocess.run(
            ["git", "-C", str(REPO), "worktree", "add", "--detach",
             str(baseline_tree), BASELINE_COMMIT],
            check=True, capture_output=True,
        )
        try:
            _suite_seconds(REPO / "src")  # warm OS caches
            baseline, disabled = [], []
            for _ in range(PAIRS):
                baseline.append(_suite_seconds(baseline_tree / "src"))
                disabled.append(_suite_seconds(REPO / "src"))
        finally:
            subprocess.run(
                ["git", "-C", str(REPO), "worktree", "remove", "--force",
                 str(baseline_tree)],
                check=False, capture_output=True,
            )

    traced = []
    for _ in range(3):
        obs_trace.enable()
        t0 = time.perf_counter()
        from repro.harness import all_profiles, run_suite

        run_suite(all_profiles(), tier="smoke", measure_memory=False)
        traced.append(time.perf_counter() - t0)
        obs_trace.disable()

    n_calls = 1_000_000
    t0 = time.perf_counter()
    for _ in range(n_calls):
        with obs_trace.span("bench.noop"):
            pass
    noop_ns = (time.perf_counter() - t0) / n_calls * 1e9

    baseline_min = min(baseline)
    disabled_min = min(disabled)
    traced_min = min(traced)
    overhead_pct = (disabled_min - baseline_min) / baseline_min * 100.0
    traced_pct = (traced_min - baseline_min) / baseline_min * 100.0

    record = {
        "harness": "run_suite(all_profiles(), tier='smoke', "
                   f"measure_memory=False); {PAIRS} interleaved "
                   "subprocess pairs vs the baseline worktree; "
                   "overhead compares minima",
        "baseline_commit": BASELINE_COMMIT,
        "baseline": _stats(baseline),
        "disabled": _stats(disabled),
        "traced": _stats(traced),
        "noop_span_ns_per_call": round(noop_ns, 1),
        "disabled_overhead_pct": round(overhead_pct, 2),
        "traced_overhead_pct": round(traced_pct, 2),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    lines = [
        "=== repro.obs overhead: smoke suite, interleaved minima ===",
        "",
        f"{'configuration':<44} {'min':>8} {'median':>8} {'vs baseline':>12}",
        "-" * 76,
        f"{'pre-instrumentation (commit %s)' % BASELINE_COMMIT:<44}"
        f" {baseline_min:>7.3f}s {statistics.median(baseline):>7.3f}s"
        f" {'baseline':>12}",
        f"{'instrumented, tracing disabled (default)':<44}"
        f" {disabled_min:>7.3f}s {statistics.median(disabled):>7.3f}s"
        f" {overhead_pct:>+10.2f}%",
        f"{'instrumented, tracing enabled (--trace)':<44}"
        f" {traced_min:>7.3f}s {statistics.median(traced):>7.3f}s"
        f" {traced_pct:>+10.2f}%",
        "",
        f"no-op span() fast path: {noop_ns:.0f} ns/call "
        f"(one global read + the shared null singleton)",
        f"acceptance bar: disabled-mode overhead <= {MAX_OVERHEAD_PCT:.0f}% "
        f"(achieved {overhead_pct:+.2f}%)",
    ]
    TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nwrote {TXT_PATH.name} and {JSON_PATH.name}")

    if overhead_pct > MAX_OVERHEAD_PCT:
        print(f"FATAL: disabled-mode overhead {overhead_pct:+.2f}% exceeds "
              f"the {MAX_OVERHEAD_PCT:.0f}% acceptance bar")
        return 1
    return 0


def check_trace(path: str) -> int:
    """Schema-check a JSONL trace from ``repro bench --trace`` (CI)."""
    from repro.obs import read_jsonl

    try:
        spans = read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"FATAL: trace {path} does not load: {exc}")
        return 1
    if not spans:
        print(f"FATAL: trace {path} is empty")
        return 1
    ids = [s.span_id for s in spans]
    if len(set(ids)) != len(ids):
        print(f"FATAL: trace {path} has duplicate span ids")
        return 1
    if sorted(ids) != list(range(1, len(ids) + 1)):
        print(f"FATAL: span ids are not sequential from 1: {sorted(ids)[:10]}...")
        return 1
    known = set(ids)
    dangling = [s.span_id for s in spans
                if s.parent_id is not None and s.parent_id not in known]
    if dangling:
        print(f"FATAL: spans with dangling parent ids: {dangling}")
        return 1
    names = {s.name for s in spans}
    missing = REQUIRED_TRACE_SPANS - names
    if missing:
        print(f"FATAL: trace lacks required harness spans: {sorted(missing)}")
        return 1
    print(f"ok: {path} parses ({len(spans)} spans) and covers "
          f"{sorted(REQUIRED_TRACE_SPANS)}")
    return 0


def check() -> int:
    """Validate the committed JSON evidence (CI's obs-smoke gate)."""
    if not JSON_PATH.exists():
        print(f"FATAL: {JSON_PATH} is missing — run with --run and commit it")
        return 1
    try:
        record = json.loads(JSON_PATH.read_text())
    except json.JSONDecodeError as exc:
        print(f"FATAL: {JSON_PATH} does not parse: {exc}")
        return 1
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FATAL: {JSON_PATH} lacks keys: {sorted(missing)}")
        return 1
    if record["max_overhead_pct"] != MAX_OVERHEAD_PCT:
        print(f"FATAL: committed bar {record['max_overhead_pct']} != "
              f"code bar {MAX_OVERHEAD_PCT}")
        return 1
    if record["baseline_commit"] != BASELINE_COMMIT:
        print(f"FATAL: committed baseline commit "
              f"{record['baseline_commit']} != code {BASELINE_COMMIT}")
        return 1
    if len(record["baseline"]["runs_s"]) < PAIRS:
        print(f"FATAL: evidence must cover >= {PAIRS} interleaved pairs")
        return 1
    if record["disabled_overhead_pct"] > MAX_OVERHEAD_PCT:
        print(f"FATAL: committed disabled-mode overhead "
              f"{record['disabled_overhead_pct']:+.2f}% is above the "
              f"{MAX_OVERHEAD_PCT:.0f}% acceptance bar")
        return 1
    print(f"ok: disabled-mode overhead {record['disabled_overhead_pct']:+.2f}% "
          f"(bar <= {MAX_OVERHEAD_PCT:.0f}%), no-op span "
          f"{record['noop_span_ns_per_call']:.0f} ns/call")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed JSON evidence")
    parser.add_argument("--trace", metavar="OUT.jsonl",
                        help="with --check: also schema-check this JSONL "
                             "trace (CI runs the smoke suite with --trace "
                             "and validates the artifact here)")
    args = parser.parse_args(argv)
    if args.run:
        return run()
    rc = check()
    if rc == 0 and args.trace:
        rc = check_trace(args.trace)
    return rc


if __name__ == "__main__":
    sys.exit(main())
