"""Certification-engine speedup evidence: legacy full-SSSP vs bounded engine.

The PR-1 CSR work left ``max_edge_stretch`` on ER(2000, 0.01) at 15.3s —
one full Dijkstra in H per vertex.  The bounded-radius batched engine
(:mod:`repro.analysis.certify`) certifies the same instance with
targeted, radius-truncated searches; this script measures both on the
exact workload ``bench_csr.py`` used (same generator seed, same
Baswana–Sen k=3 spanner) and writes the committed evidence files:

* ``benchmarks/BENCH_certify_speedup.txt`` — the human-readable table;
* ``benchmarks/BENCH_certify_speedup.json`` — the machine-readable
  record CI's ``certify-smoke`` job gates on (structure + the >= 3x
  acceptance bar).

Run modes::

    python benchmarks/bench_certify.py --run    # measure + rewrite both files
    python benchmarks/bench_certify.py --check  # validate the committed JSON

Not a pytest file on purpose: the legacy pass alone costs ~15s, which
does not belong in the tier-1 suite, and --check must be runnable
without pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

#: the acceptance bar: engine must beat the legacy certifier by this factor
REQUIRED_SPEEDUP = 3.0
#: the PR-1 measurement this PR's motivation quotes (same workload)
PR1_BASELINE_SECONDS = 15.3

HERE = Path(__file__).resolve().parent
TXT_PATH = HERE / "BENCH_certify_speedup.txt"
JSON_PATH = HERE / "BENCH_certify_speedup.json"

REQUIRED_JSON_KEYS = {
    "workload", "legacy_seconds", "engine_seconds", "speedup",
    "bounded_seconds", "parallel_seconds", "sampled_seconds",
    "max_stretch", "certification", "required_speedup",
    "pr1_baseline_seconds",
}


def _legacy_max_edge_stretch(graph, spanner):
    """The pre-engine certifier: one full SSSP in H per vertex."""
    from repro.graphs.shortest_paths import dijkstra

    inf = float("inf")
    worst = 1.0
    for u in graph.vertices():
        incident = list(graph.neighbor_items(u))
        if not incident:
            continue
        dist, _ = dijkstra(spanner, u)
        for v, w in incident:
            d = dist.get(v, inf)
            if d == inf:
                return inf
            worst = max(worst, d / w)
    return worst


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def run() -> int:
    from repro.analysis.certify import certify_edge_stretch
    from repro.graphs import erdos_renyi_graph
    from repro.spanners.baswana_sen import baswana_sen_spanner

    n, p, k = 2000, 0.01, 3
    graph = erdos_renyi_graph(n, p, seed=21)
    spanner = baswana_sen_spanner(graph, k, random.Random(5))
    bound = 2 * k - 1
    graph.freeze()
    spanner.freeze()  # both certifiers ride the same cached CSR views

    legacy_value, legacy_s = _timed(_legacy_max_edge_stretch, graph, spanner)
    exact, exact_s = _timed(certify_edge_stretch, graph, spanner)
    bounded, bounded_s = _timed(certify_edge_stretch, graph, spanner, bound=bound)
    parallel, parallel_s = _timed(
        certify_edge_stretch, graph, spanner, bound=bound, workers=2
    )
    sampled, sampled_s = _timed(
        certify_edge_stretch, graph, spanner, sample=0.25, seed=11
    )

    for name, cert in (("exact", exact), ("bounded", bounded), ("parallel", parallel)):
        if abs(cert.max_stretch - legacy_value) > 1e-9:
            print(f"FATAL: {name} engine disagrees with the legacy certifier: "
                  f"{cert.max_stretch!r} vs {legacy_value!r}")
            return 1
    if sampled.max_stretch > legacy_value + 1e-9:
        print("FATAL: sampled mode exceeded the exact maximum")
        return 1

    speedup = legacy_s / exact_s
    workload = f"max_edge_stretch, ER(n={n}, p={p}) m={graph.m}, Baswana-Sen k={k}"
    lines = [
        f"=== Certification engine speedup: {workload} ===",
        "",
        f"{'certifier':<38} {'seconds':>9} {'speedup':>9}  value",
        "-" * 78,
        f"{'legacy (full SSSP per vertex)':<38} {legacy_s:>9.3f} {'1.0x':>9}"
        f"  {legacy_value:.6f}",
        f"{'engine, exact':<38} {exact_s:>9.3f} {legacy_s / exact_s:>8.1f}x"
        f"  {exact.max_stretch:.6f}",
        f"{'engine, bounded (radius (2k-1)w)':<38} {bounded_s:>9.3f}"
        f" {legacy_s / bounded_s:>8.1f}x  {bounded.max_stretch:.6f}",
        f"{'engine, bounded + 2 workers':<38} {parallel_s:>9.3f}"
        f" {legacy_s / parallel_s:>8.1f}x  {parallel.max_stretch:.6f}",
        f"{'engine, sampled 25% of edges':<38} {sampled_s:>9.3f}"
        f" {legacy_s / sampled_s:>8.1f}x  {sampled.max_stretch:.6f}"
        f" (lower bound, {sampled.sampled_edges} edges)",
        "",
        f"edges pruned as already-in-spanner: {exact.edges_in_spanner}"
        f"/{exact.edges_total}; sources short-circuited:"
        f" {exact.sources_short_circuited}, explored: {exact.sources_explored}",
        f"PR-1 quoted baseline for this workload: {PR1_BASELINE_SECONDS:.1f}s;"
        f" acceptance bar: >= {REQUIRED_SPEEDUP:.0f}x over the measured legacy"
        f" run (achieved {speedup:.1f}x)",
    ]
    TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))

    record = {
        "workload": {"n": n, "p": p, "k": k, "m": graph.m,
                     "graph_seed": 21, "spanner_seed": 5},
        "legacy_seconds": round(legacy_s, 4),
        "engine_seconds": round(exact_s, 4),
        "bounded_seconds": round(bounded_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "sampled_seconds": round(sampled_s, 4),
        "speedup": round(speedup, 2),
        "max_stretch": legacy_value,
        "certification": exact.to_dict(),
        "required_speedup": REQUIRED_SPEEDUP,
        "pr1_baseline_seconds": PR1_BASELINE_SECONDS,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {TXT_PATH.name} and {JSON_PATH.name}")
    if speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{REQUIRED_SPEEDUP:.0f}x acceptance bar")
        return 1
    return 0


def check() -> int:
    """CI gate: the committed JSON must exist, parse, and clear the bar."""
    if not JSON_PATH.exists():
        print(f"FAIL: {JSON_PATH} is missing (run --run and commit it)")
        return 1
    record = json.loads(JSON_PATH.read_text())
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FAIL: {JSON_PATH.name} lacks keys: {sorted(missing)}")
        return 1
    # gate against the script's own constant, not the committed file's
    # copy of it — a regressed re-run must not lower the bar it is
    # measured against
    if record["speedup"] < REQUIRED_SPEEDUP:
        print(f"FAIL: committed speedup {record['speedup']}x is below the "
              f"{REQUIRED_SPEEDUP}x bar")
        return 1
    if not TXT_PATH.exists():
        print(f"FAIL: {TXT_PATH} is missing (run --run and commit it)")
        return 1
    cert = record["certification"]
    if cert["mode"] != "exact" or cert["edges_total"] <= 0:
        print("FAIL: committed certification block is not an exact-mode run")
        return 1
    print(f"OK: committed evidence shows {record['speedup']}x "
          f"(bar {record['required_speedup']}x) on "
          f"ER(n={record['workload']['n']}, p={record['workload']['p']})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the committed evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed evidence (the CI gate)")
    args = parser.parse_args(argv)
    return run() if args.run else check()


if __name__ == "__main__":
    sys.exit(main())
