"""Table 1, row 3 — (γ, β)-nets (§6, Theorem 3).

Paper bounds: a ((1+δ)Δ, Δ/(1+δ))-net in
``(√n + D)·2^{Õ(√(log n·log(1/δ)))}`` rounds, O(log n) kill iterations
w.h.p., with the active-pair count halving per iteration in expectation.
"""

from __future__ import annotations

import math
import random

import pytest

from conftest import print_table, run_once, workload

from repro.analysis import verify_net
from repro.core import build_net, greedy_net
from repro.graphs import hop_diameter, random_geometric_graph

N = 70


@pytest.mark.parametrize("delta", [0.25, 0.5])
@pytest.mark.parametrize("scale", [10.0, 40.0])
def test_net_parameter_sweep(benchmark, delta, scale):
    g = workload("net-er", seed=int(scale))
    res = run_once(benchmark, build_net, g, scale, delta, random.Random(1))
    verify_net(g, res.points, res.alpha, res.beta)
    print_table(
        f"Table 1 row 3 (net), Delta={scale}, delta={delta}, n={N}",
        ["metric", "paper bound", "measured"],
        [
            ["covering (alpha)", f"(1+d)Delta = {res.alpha:.1f}", "verified"],
            ["separation (beta)", f"Delta/(1+d) = {res.beta:.1f}", "verified"],
            ["iterations", f"O(log n) = {math.ceil(math.log2(N))}", f"{res.iterations}"],
            ["net size", "-", f"{len(res.points)}"],
            ["rounds", "(sqrt(n)+D) 2^~O(sqrt(log n log(1/d)))", f"{res.rounds}"],
        ],
    )
    benchmark.extra_info.update(
        delta=delta, scale=scale, iterations=res.iterations,
        size=len(res.points), rounds=res.rounds,
    )
    assert res.iterations <= 4 * math.ceil(math.log2(N))


def test_net_active_set_decay(benchmark):
    """§6's engine: the active set decays geometrically (O(log n)
    iterations w.h.p.; at these sizes typically 1–3 — each iteration
    kills far more than the half the analysis guarantees)."""
    g = workload("net-geometric")
    res = run_once(benchmark, build_net, g, 40.0, 0.5, random.Random(3))
    rows = [
        [i + 1, a, f"{res.active_history[i + 1] / a:.2f}" if i + 1 < len(res.active_history) else "-"]
        for i, a in enumerate(res.active_history)
    ]
    print_table(
        "Net kill-iteration decay (|A_i| per iteration)",
        ["iteration", "|A_i|", "survival ratio"],
        rows,
    )
    benchmark.extra_info.update(history=res.active_history)
    assert res.active_history[0] == 100


@pytest.mark.parametrize("n", [36, 72, 144])
def test_net_rounds_scaling(benchmark, n):
    """Rounds floor is Ω̃(√n + D) (Theorem 7); measured charge scales
    with √n times the sub-polynomial LE-list factor."""
    g = workload("net-er", n=n, p=min(1.0, 8.0 / n), seed=n)
    res = run_once(benchmark, build_net, g, 30.0, 0.5, random.Random(n))
    print_table(
        f"Net rounds scaling, n={n}",
        ["n", "D", "rounds", "rounds/sqrt(n)"],
        [[n, hop_diameter(g), res.rounds, f"{res.rounds / n ** 0.5:.0f}"]],
    )
    benchmark.extra_info.update(n=n, rounds=res.rounds)


def test_net_vs_greedy_size(benchmark):
    """The distributed net should not be much larger than the sequential
    greedy net at comparable radii (same packing argument)."""
    g = random_geometric_graph(60, seed=4)

    def both():
        d = build_net(g, 30.0, 0.5, random.Random(4))
        s = greedy_net(g, 30.0)
        return d, s

    d, s = run_once(benchmark, both)
    print_table(
        "Distributed vs greedy net size (Delta=30)",
        ["method", "size", "covering", "separation"],
        [
            ["distributed (Thm 3)", len(d.points), f"{d.alpha:.1f}", f"{d.beta:.1f}"],
            ["greedy (sequential)", len(s), "30.0", "30.0"],
        ],
    )
    benchmark.extra_info.update(distributed=len(d.points), greedy=len(s))
    assert len(d.points) <= 5 * len(s) + 5
