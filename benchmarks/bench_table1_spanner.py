"""Table 1, row 1 — light spanners for general graphs (§5, Theorem 2).

Paper bounds:
    distortion (2k−1)(1+ε)   lightness O(k·n^{1/k})
    size O(k·n^{1+1/k})       rounds Õ(n^{1/2+1/(4k+2)} + D)

The benchmark sweeps k on fixed workloads (the *who-wins shape*: stretch
rises with k, lightness/size fall) and sweeps n at fixed k (the rounds
scaling: sublinear in n, unlike any sequential scan).
"""

from __future__ import annotations
import random

import pytest

from conftest import print_table, run_once, workload

from repro.analysis import lightness, max_edge_stretch, sparsity
from repro.core import light_spanner
from repro.graphs import hop_diameter

EPS = 0.25
N = 80


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_spanner_k_sweep(benchmark, k):
    """Stretch/lightness/size trade-off across k — the row-1 columns.

    Dense workload (p = 0.8) so the O(k·n^{1+1/k}) size bound actually
    bites and the k-trade-off is visible."""
    g = workload("spanner-er")
    res = run_once(benchmark, light_spanner, g, k, EPS, random.Random(k))

    measured_stretch = max_edge_stretch(g, res.spanner)
    measured_light = lightness(g, res.spanner)
    measured_size = sparsity(res.spanner)
    bound_stretch = (2 * k - 1) * (1 + EPS)
    # §5.1: E[w(H)] = O(L·k·n^{1/k}/ε^{2+1/k}); constant taken as 1
    bound_light = k * N ** (1 / k) / EPS ** (2 + 1 / k)
    bound_size = 4 * k * N ** (1 + 1 / k)

    print_table(
        f"Table 1 row 1 (spanner), k={k}, n={N}",
        ["metric", "paper bound", "measured"],
        [
            ["distortion", f"(2k-1)(1+eps) = {bound_stretch:.2f}", f"{measured_stretch:.3f}"],
            ["lightness", f"O(k n^(1/k)/eps^(2+1/k)) <= {bound_light:.1f}", f"{measured_light:.2f}"],
            ["size", f"O(k n^(1+1/k)) <= {bound_size:.0f}", f"{measured_size}"],
            ["rounds", "~O(n^(1/2+1/(4k+2)) + D)", f"{res.rounds}"],
        ],
    )
    benchmark.extra_info.update(
        k=k, n=N, stretch=measured_stretch, lightness=measured_light,
        edges=measured_size, rounds=res.rounds,
    )
    assert measured_stretch <= res.stretch_bound + 1e-9
    assert measured_light <= bound_light
    assert measured_size <= bound_size


@pytest.mark.parametrize("n", [36, 72, 144])
def test_spanner_rounds_scaling(benchmark, n):
    """Rounds must grow like n^{1/2+1/(4k+2)} (k=2 → n^{0.6}), not n."""
    g = workload("spanner-er", n=n, p=min(1.0, 8.0 / n), seed=n)
    res = run_once(benchmark, light_spanner, g, 2, EPS, random.Random(n))
    predicted = n ** (0.5 + 1.0 / 10.0)
    print_table(
        f"Spanner rounds scaling, n={n} (k=2)",
        ["n", "D", "rounds", "n^0.6 (shape)", "rounds / n^0.6"],
        [[n, hop_diameter(g), res.rounds, f"{predicted:.0f}", f"{res.rounds / predicted:.1f}"]],
    )
    benchmark.extra_info.update(n=n, rounds=res.rounds)


def test_spanner_round_breakdown(benchmark):
    """Where the rounds go: MST/tour vs per-bucket simulation (§5 phases)."""
    g = workload("spanner-er", p=0.25, seed=9)
    res = run_once(benchmark, light_spanner, g, 2, EPS, random.Random(9))
    phases = res.ledger.by_phase()
    groups = {"infrastructure": 0, "E' (Baswana-Sen)": 0, "buckets": 0}
    for phase, rounds in phases.items():
        if phase.startswith("bucket"):
            groups["buckets"] += rounds
        elif phase.startswith("E'"):
            groups["E' (Baswana-Sen)"] += rounds
        else:
            groups["infrastructure"] += rounds
    print_table(
        "Spanner round breakdown (k=2)",
        ["phase group", "rounds", "share"],
        [[k, v, f"{100 * v / res.rounds:.0f}%"] for k, v in groups.items()],
    )
    benchmark.extra_info.update(**{k: v for k, v in groups.items()})


def test_spanner_geometric_workload(benchmark):
    """Same construction on a doubling workload (cross-family sanity)."""
    g = workload("spanner-geometric")
    res = run_once(benchmark, light_spanner, g, 2, EPS, random.Random(5))
    print_table(
        "Spanner on geometric workload (k=2, n=60)",
        ["metric", "value"],
        [
            ["stretch", f"{max_edge_stretch(g, res.spanner):.3f}"],
            ["lightness", f"{lightness(g, res.spanner):.2f}"],
            ["edges", sparsity(res.spanner)],
            ["rounds", res.rounds],
        ],
    )
    assert max_edge_stretch(g, res.spanner) <= res.stretch_bound + 1e-9
