"""Serving-daemon speedup evidence: workers=4 vs workers=1 qps.

The workload is the CI smoke profile (``slt-er`` at the smoke tier):
the oracle is built once, published to shared memory once, and two
in-process daemons — one worker, then four — serve the same seeded
closed-loop mix at the saturation concurrency.  The evidence has two
halves:

* **throughput scaling** — the qps-vs-concurrency curve at workers=4
  plus the saturation ratio against workers=1.  The >= 3x acceptance
  bar is only *measurable* on a machine with >= 4 usable cores; the
  committed JSON records the core count of the machine that produced
  it, and ``--check`` gates on the bar that machine could honestly
  measure.  On fewer cores the gate degrades to no-collapse: the
  4-worker daemon must keep >= MIN_NO_COLLAPSE of the single-worker
  throughput (shared-memory fan-out is not allowed to cost real
  performance even where it cannot win any).
* **shared-memory residency** — four workers must not hold four
  pickled oracle copies.  A probe subprocess attaches the published
  segment and touches every array value; a control subprocess unpickles
  its own private copy and touches the same values.  The attach side's
  private-memory delta must stay under half the copy side's.

Run modes::

    python benchmarks/bench_serve.py --run    # measure + rewrite evidence
    python benchmarks/bench_serve.py --check  # validate committed JSON (CI)

Not a pytest file on purpose: a saturated load run costs tens of
seconds; --check is stdlib-only and instant.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import subprocess
import sys
import tempfile
import textwrap
import threading
from pathlib import Path

#: acceptance bar on a machine with >= GATE_CORES usable cores
REQUIRED_SPEEDUP = 3.0
GATE_CORES = 4
#: fallback gate below GATE_CORES: workers=4 keeps this fraction of
#: the workers=1 throughput (the fan-out must not collapse)
MIN_NO_COLLAPSE = 0.7
#: residency gate: attach-side private delta vs copy-side private delta
MAX_RESIDENCY_RATIO = 0.5

PROFILE, TIER = "slt-er", "smoke"
SATURATION_CONCURRENCY = 8
CURVE_CONCURRENCIES = (1, 2, 4, 8)
REPEATS = 3  # qps is max-of-repeats on both sides (min-variance for rates)

#: the residency probe needs a payload that dwarfs page-granularity
#: noise — the smoke oracle is ~3 KB, so residency is measured on a
#: dedicated ~1 MB ER oracle instead
RESIDENCY_N, RESIDENCY_P, RESIDENCY_LANDMARKS = 3000, 0.006, 6
MIN_RESIDENCY_PAYLOAD = 500_000

HERE = Path(__file__).resolve().parent
TXT_PATH = HERE / "BENCH_serve_speedup.txt"
JSON_PATH = HERE / "BENCH_serve_speedup.json"

REQUIRED_JSON_KEYS = {
    "workload", "cores", "saturation_concurrency", "curve",
    "qps_workers_1", "qps_workers_4", "speedup", "gate",
    "residency_workload",
    "payload_bytes", "attach_private_bytes", "copy_private_bytes",
    "residency_ratio", "repeats", "required_speedup", "min_no_collapse",
}

RESIDENCY_PROBE = textwrap.dedent("""\
    import json
    import pickle
    import sys

    from multiprocessing import resource_tracker

    from repro.serve import attach_oracle


    def private_bytes() -> int:
        total = 0
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith(("Private_Dirty:", "Private_Clean:")):
                    total += int(line.split()[1]) * 1024
        return total


    mode, source = sys.argv[1], sys.argv[2]
    before = private_bytes()
    if mode == "attach":
        handle = attach_oracle(source)
        oracle = handle.oracle
        # this probe has its own resource tracker (it is not a
        # multiprocessing child); pre-3.13 attach registered the
        # segment there, and exiting would unlink it from under the
        # publisher — hand the registration back before exiting
        resource_tracker.unregister("/" + source.lstrip("/"), "shared_memory")
    else:
        with open(source, "rb") as fh:
            oracle = pickle.loads(fh.read())
    touched = (
        sum(oracle.csr.weights)
        + sum(oracle.csr.indptr)
        + sum(sum(p) for p in oracle.potentials)
    )
    print(json.dumps({"delta": private_bytes() - before, "touched": touched}))
""")


def _measure_residency(oracle, payload_share):
    """(attach delta, copy delta) of private bytes, via probe children."""
    src = str(HERE.parent / "src")
    env = {"PYTHONPATH": src, "PATH": os.environ.get("PATH", "/usr/bin:/bin")}
    with tempfile.TemporaryDirectory() as tmp:
        script = Path(tmp) / "residency_probe.py"
        script.write_text(RESIDENCY_PROBE)
        pickled = Path(tmp) / "oracle.pkl"
        pickled.write_bytes(pickle.dumps(oracle))

        def probe(mode, source):
            out = subprocess.run(
                [sys.executable, str(script), mode, source],
                capture_output=True, text=True, timeout=300, env=env,
            )
            if out.returncode != 0:
                raise RuntimeError(f"residency probe failed: {out.stderr}")
            return json.loads(out.stdout)

        attach = probe("attach", payload_share.name)
        copy = probe("copy", str(pickled))
        if abs(attach["touched"] - copy["touched"]) > 1e-6:
            raise RuntimeError("residency probes touched different data")
        return attach["delta"], copy["delta"]


def _serve(oracle, workers):
    """(server, serving thread) for an in-process daemon."""
    from repro.serve import Server

    server = Server(oracle, workers=workers, port=0, warm=2)
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _best_level(address, pairs, concurrency, repeats):
    """Best-of-``repeats`` closed-loop level at one concurrency."""
    from repro.harness.loadgen import run_closed_level

    best = None
    for _ in range(repeats):
        result, _answers = run_closed_level(
            address, pairs, concurrency, repeats=2
        )
        if result.failures:
            raise RuntimeError(
                f"{result.failures} failed requests at c={concurrency}"
            )
        if best is None or result.qps > best.qps:
            best = result
    return best


def run() -> int:
    from repro.harness import get_profile
    from repro.harness.loadgen import build_profile_structure
    from repro.harness.queries import QUERY_MIXES, build_query_mix
    from repro.oracle import DistanceOracle
    from repro.serve import publish_oracle

    from repro.graphs import erdos_renyi_graph
    from repro.oracle import build_oracle

    cores = len(os.sched_getaffinity(0))
    profile = get_profile(PROFILE)
    graph, structure, _gen_s, _build_s = build_profile_structure(profile, TIER)
    mix = QUERY_MIXES[TIER]
    raw_pairs, _sources = build_query_mix(structure, mix, profile.seed)
    pairs = [(str(u), str(v)) for u, v in raw_pairs]
    oracle = DistanceOracle.build(
        structure, landmarks=mix.landmarks, seed=profile.seed
    )

    # ---- residency evidence (a dedicated ~1 MB oracle; see above)
    big = build_oracle(
        erdos_renyi_graph(RESIDENCY_N, RESIDENCY_P, seed=5),
        landmarks=RESIDENCY_LANDMARKS, seed=9,
    )
    share = publish_oracle(big)
    try:
        payload_bytes = share.payload_bytes
        attach_delta, copy_delta = _measure_residency(big, share)
    finally:
        share.unlink()
    residency_ratio = attach_delta / max(1, copy_delta)

    # ---- workers=1 saturation throughput
    server, thread = _serve(oracle, workers=1)
    try:
        base = _best_level(
            server.address, pairs, SATURATION_CONCURRENCY, REPEATS
        )
    finally:
        server.request_shutdown()
        thread.join(timeout=30)

    # ---- workers=4: the committed curve + saturation throughput
    server, thread = _serve(oracle, workers=4)
    try:
        curve = [
            _best_level(server.address, pairs, c, REPEATS)
            for c in CURVE_CONCURRENCIES
        ]
    finally:
        server.request_shutdown()
        thread.join(timeout=30)
    scaled = max(curve, key=lambda r: r.qps)

    speedup = scaled.qps / base.qps
    gate = "scaling" if cores >= GATE_CORES else "no-collapse"
    workload = (
        f"{PROFILE}@{TIER} (n={graph.n}, m={graph.m}), "
        f"{len(pairs)}-pair seeded mix, closed loop"
    )
    lines = [
        f"=== Serving throughput: {workload} ===",
        "",
        f"machine: {cores} usable core(s) -> gate mode '{gate}'",
        f"residency (ER n={RESIDENCY_N}, {RESIDENCY_LANDMARKS} landmarks): "
        f"shared payload {payload_bytes} bytes; worker private delta "
        f"{attach_delta} (attach) vs {copy_delta} (own copy) -> "
        f"ratio {residency_ratio:.2f} (bar < {MAX_RESIDENCY_RATIO})",
        "",
        f"{'workers':>8} {'concurrency':>12} {'qps':>10} {'p50':>9} {'p99':>9}",
        "-" * 52,
        f"{1:>8} {SATURATION_CONCURRENCY:>12} {base.qps:>10.0f} "
        f"{base.p50_ms:>8.3f}m {base.p99_ms:>8.3f}m",
    ]
    for result in curve:
        lines.append(
            f"{4:>8} {int(result.level):>12} {result.qps:>10.0f} "
            f"{result.p50_ms:>8.3f}m {result.p99_ms:>8.3f}m"
        )
    lines += [
        "",
        f"saturation speedup (workers=4 / workers=1): {speedup:.2f}x "
        f"(best of {REPEATS}; bar >= {REQUIRED_SPEEDUP:.0f}x on "
        f">= {GATE_CORES} cores, >= {MIN_NO_COLLAPSE} no-collapse below)",
    ]
    TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))

    record = {
        "workload": {
            "profile": PROFILE, "tier": TIER, "n": graph.n, "m": graph.m,
            "pairs": len(pairs), "landmarks": mix.landmarks,
            "seed": profile.seed,
        },
        "cores": cores,
        "saturation_concurrency": SATURATION_CONCURRENCY,
        "curve": [
            {
                "concurrency": int(r.level),
                "qps": round(r.qps, 1),
                "p50_ms": round(r.p50_ms, 3),
                "p99_ms": round(r.p99_ms, 3),
            }
            for r in curve
        ],
        "qps_workers_1": round(base.qps, 1),
        "qps_workers_4": round(scaled.qps, 1),
        "speedup": round(speedup, 3),
        "gate": gate,
        "residency_workload": {
            "family": "er", "n": RESIDENCY_N, "p": RESIDENCY_P,
            "landmarks": RESIDENCY_LANDMARKS,
        },
        "payload_bytes": payload_bytes,
        "attach_private_bytes": attach_delta,
        "copy_private_bytes": copy_delta,
        "residency_ratio": round(residency_ratio, 4),
        "repeats": REPEATS,
        "required_speedup": REQUIRED_SPEEDUP,
        "min_no_collapse": MIN_NO_COLLAPSE,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {TXT_PATH.name} and {JSON_PATH.name}")
    return _gate(record)


def _gate(record) -> int:
    """Apply the core-aware gate to an evidence record; 0 iff it holds."""
    if record["residency_ratio"] >= MAX_RESIDENCY_RATIO:
        print(f"FAIL: residency ratio {record['residency_ratio']} >= "
              f"{MAX_RESIDENCY_RATIO} — workers are holding private copies")
        return 1
    if record["payload_bytes"] < MIN_RESIDENCY_PAYLOAD:
        print(f"FAIL: residency payload {record['payload_bytes']} bytes is "
              f"below {MIN_RESIDENCY_PAYLOAD} — too small to measure")
        return 1
    # gate on the bar the *recording* machine could honestly measure —
    # a 1-core container cannot demonstrate parallel speedup, only
    # absence of collapse; the 3x bar re-arms wherever >= 4 cores exist
    if record["cores"] >= GATE_CORES:
        if record["speedup"] < REQUIRED_SPEEDUP:
            print(f"FAIL: speedup {record['speedup']}x below the "
                  f"{REQUIRED_SPEEDUP}x bar on {record['cores']} cores")
            return 1
    elif record["speedup"] < MIN_NO_COLLAPSE:
        print(f"FAIL: workers=4 collapsed to {record['speedup']}x of "
              f"workers=1 (bar >= {MIN_NO_COLLAPSE}x on "
              f"{record['cores']} core(s))")
        return 1
    print(f"OK: {record['gate']} gate holds — speedup "
          f"{record['speedup']}x on {record['cores']} core(s), "
          f"residency ratio {record['residency_ratio']}")
    return 0


def check() -> int:
    """CI gate: the committed JSON must exist, parse, and clear its bar."""
    if not JSON_PATH.exists():
        print(f"FAIL: {JSON_PATH} is missing (run --run and commit it)")
        return 1
    record = json.loads(JSON_PATH.read_text())
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FAIL: {JSON_PATH.name} lacks keys: {sorted(missing)}")
        return 1
    if not TXT_PATH.exists():
        print(f"FAIL: {TXT_PATH} is missing (run --run and commit it)")
        return 1
    if len(record["curve"]) < 3:
        print("FAIL: committed curve has fewer than 3 concurrency levels")
        return 1
    return _gate(record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the committed evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed evidence (the CI gate)")
    args = parser.parse_args(argv)
    return run() if args.run else check()


if __name__ == "__main__":
    sys.exit(main())
