"""Whole-program lint performance evidence: warm runs must be incremental.

``repro lint --program`` parses, summarises and cross-analyzes the
whole tree; its per-file work is cached by content hash
(:mod:`repro.lint.cache`), so a warm run — the one every developer and
every CI invocation after the first pays — re-reads only the facts
pickles and the cheap cross-file passes.  The acceptance bar: the warm
``--program`` run over ``src/`` completes in under
:data:`MAX_WARM_SECONDS` seconds.

This script measures both sides in fresh subprocesses against a
throwaway cache directory::

    python benchmarks/bench_lint.py --run     # measure + rewrite evidence
    python benchmarks/bench_lint.py --check   # validate committed JSON
    python benchmarks/bench_lint.py --run --out other.json
                                   # measure without touching the evidence

It writes the committed evidence files

* ``benchmarks/BENCH_lint_program.txt`` — human-readable table;
* ``benchmarks/BENCH_lint_program.json`` — the record CI's
  ``static-analysis`` job gates on (warm run < 5s).

CI validates the *committed* record and re-measures on its own
hardware (``--run --out``) so a regression shows up in the job log
even before the evidence is refreshed.

Not a pytest file on purpose: repeated subprocess lint runs cost
several seconds each and belong next to the other BENCH evidence
scripts, not in the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: the acceptance bar: warm (hash-cached) --program run over src/.
MAX_WARM_SECONDS = 5.0

#: timed warm runs (the cold run is timed once: it fills the cache).
WARM_RUNS = 5

HERE = Path(__file__).resolve().parent
REPO = HERE.parent
TXT_PATH = HERE / "BENCH_lint_program.txt"
JSON_PATH = HERE / "BENCH_lint_program.json"

REQUIRED_JSON_KEYS = {
    "harness", "files_linted", "cold_s", "warm", "speedup",
    "max_warm_seconds",
}


def _lint_seconds(cache_dir: Path) -> float:
    """One ``repro lint --program src`` subprocess against ``cache_dir``."""
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--program",
         "--cache-dir", str(cache_dir), "src"],
        capture_output=True,
        env={"PYTHONPATH": str(REPO / "src")},
        cwd=str(REPO),
        timeout=300,
    )
    elapsed = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"lint --program found issues or failed:\n{proc.stdout.decode()}"
            f"{proc.stderr.decode()}"
        )
    return elapsed


def _count_files() -> int:
    return sum(
        1 for p in (REPO / "src").rglob("*.py") if "__pycache__" not in p.parts
    )


def run(out: Path | None) -> int:
    with tempfile.TemporaryDirectory(prefix="lint-bench-cache-") as tmp:
        cache_dir = Path(tmp) / "cache"
        cold = _lint_seconds(cache_dir)  # fills the cache
        warm = [_lint_seconds(cache_dir) for _ in range(WARM_RUNS)]

    warm_min = min(warm)
    warm_median = statistics.median(warm)
    record = {
        "harness": f"repro lint --program src in fresh subprocesses; one "
                   f"cold run fills a throwaway cache, {WARM_RUNS} warm "
                   f"runs re-use it; the bar gates the warm median",
        "files_linted": _count_files(),
        "cold_s": round(cold, 3),
        "warm": {
            "runs_s": [round(t, 3) for t in warm],
            "median_s": round(warm_median, 3),
            "min_s": round(warm_min, 3),
        },
        "speedup": round(cold / warm_median, 1),
        "max_warm_seconds": MAX_WARM_SECONDS,
    }
    target = out or JSON_PATH
    target.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")

    lines = [
        "=== repro lint --program: cold vs warm (content-hash cache) ===",
        "",
        f"{'configuration':<40} {'time':>9}",
        "-" * 52,
        f"{'cold (empty cache, %d files)' % record['files_linted']:<40}"
        f" {cold:>8.3f}s",
        f"{'warm median (%d runs)' % WARM_RUNS:<40} {warm_median:>8.3f}s",
        f"{'warm min':<40} {warm_min:>8.3f}s",
        "",
        f"warm speedup: {record['speedup']:.1f}x",
        f"acceptance bar: warm median < {MAX_WARM_SECONDS:.0f}s "
        f"(achieved {warm_median:.3f}s)",
    ]
    if out is None:
        TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nwrote {target.name}" + ("" if out else f" and {TXT_PATH.name}"))

    if warm_median >= MAX_WARM_SECONDS:
        print(f"FATAL: warm median {warm_median:.3f}s is not under the "
              f"{MAX_WARM_SECONDS:.0f}s acceptance bar")
        return 1
    return 0


def check() -> int:
    """Validate the committed JSON evidence (CI's static-analysis gate)."""
    if not JSON_PATH.exists():
        print(f"FATAL: {JSON_PATH} is missing — run with --run and commit it")
        return 1
    try:
        record = json.loads(JSON_PATH.read_text())
    except json.JSONDecodeError as exc:
        print(f"FATAL: {JSON_PATH} does not parse: {exc}")
        return 1
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FATAL: {JSON_PATH} lacks keys: {sorted(missing)}")
        return 1
    if record["max_warm_seconds"] != MAX_WARM_SECONDS:
        print(f"FATAL: committed bar {record['max_warm_seconds']} != "
              f"code bar {MAX_WARM_SECONDS}")
        return 1
    if len(record["warm"]["runs_s"]) < WARM_RUNS:
        print(f"FATAL: evidence must cover >= {WARM_RUNS} warm runs")
        return 1
    if record["warm"]["median_s"] >= MAX_WARM_SECONDS:
        print(f"FATAL: committed warm median {record['warm']['median_s']}s "
              f"is not under the {MAX_WARM_SECONDS:.0f}s acceptance bar")
        return 1
    print(f"ok: warm --program median {record['warm']['median_s']}s over "
          f"{record['files_linted']} files "
          f"(bar < {MAX_WARM_SECONDS:.0f}s, cold {record['cold_s']}s, "
          f"{record['speedup']}x speedup)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed JSON evidence")
    parser.add_argument("--out", metavar="OUT.json", type=Path,
                        help="with --run: write the record here instead of "
                             "the committed evidence (CI re-measurement)")
    args = parser.parse_args(argv)
    if args.run:
        return run(args.out)
    return check()


if __name__ == "__main__":
    sys.exit(main())
