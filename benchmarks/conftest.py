"""Shared benchmark helpers.

Every benchmark prints a table in the shape of the corresponding paper
row (Table 1) with columns  *paper bound* vs *measured*, and attaches the
measured quantities to ``benchmark.extra_info`` so the pytest-benchmark
JSON output carries them too.  Construction timing uses
``benchmark.pedantic(rounds=1)`` — the object of study is the *round
complexity and quality* of the constructions, not Python wall-time, so
one timed round keeps the harness fast while still recording wall-time.

Workload graphs come from the :mod:`repro.harness.profiles` registry via
:func:`workload`, so the scenario definitions (family, sizes, seeds)
live in exactly one place, shared with ``python -m repro bench``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.harness import get_profile


def workload(profile_name: str, tier: str = "table1", **overrides):
    """Build the named harness profile's workload graph at ``tier``.

    ``overrides`` patch individual generator kwargs (including ``seed``)
    so sweep-style benchmarks can vary one axis while the base scenario
    stays defined in the profile registry.
    """
    return get_profile(profile_name).build_graph(tier, **overrides)


def print_table(title: str, columns: List[str], rows: Iterable[Iterable]) -> None:
    """Render an aligned ASCII table to stdout (shown with pytest -s)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn, *args, **kwargs):
    """Time a single construction run via pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
