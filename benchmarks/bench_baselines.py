"""B1 — baselines: greedy spanner, Baswana–Sen, KRY95 SLT vs. the paper's
constructions on shared workloads (quality sanity)."""

from __future__ import annotations

import random

import pytest

from conftest import print_table, run_once, workload

from repro.analysis import lightness, max_edge_stretch, root_stretch, sparsity
from repro.baselines import kry_slt
from repro.core import light_spanner, shallow_light_tree
from repro.spanners import baswana_sen_spanner, greedy_spanner

N = 60


@pytest.mark.parametrize("k", [2, 3])
def test_spanner_three_way(benchmark, k):
    g = workload("baswana-sen-er")
    t = 2 * k - 1

    def run():
        ours = light_spanner(g, k, 0.25, random.Random(41))
        bs = baswana_sen_spanner(g, k, random.Random(41))
        gr = greedy_spanner(g, t)
        return ours, bs, gr

    ours, bs, gr = run_once(benchmark, run)
    rows = [
        [
            "light spanner (Thm 2)",
            f"{max_edge_stretch(g, ours.spanner):.2f}",
            f"{lightness(g, ours.spanner):.2f}",
            sparsity(ours.spanner),
            "yes",
        ],
        [
            "Baswana–Sen [BS07]",
            f"{max_edge_stretch(g, bs):.2f}",
            f"{lightness(g, bs):.2f}",
            sparsity(bs),
            "no (unbounded)",
        ],
        [
            "greedy [ADD+93]",
            f"{max_edge_stretch(g, gr):.2f}",
            f"{lightness(g, gr):.2f}",
            sparsity(gr),
            "sequential only",
        ],
    ]
    print_table(
        f"B1: spanners at k={k} (stretch budget {t}(1+eps))",
        ["construction", "stretch", "lightness", "edges", "lightness guarantee?"],
        rows,
    )
    benchmark.extra_info.update(k=k)
    # the paper's point: [BS07] bounds only size; lightness can exceed the
    # Thm-2 guarantee — while ours must respect it (§5.1's full formula,
    # O(k·n^{1/k}/ε^{2+1/k}), with constant 1).
    assert lightness(g, ours.spanner) <= k * N ** (1 / k) / 0.25 ** (2 + 1 / k)


def test_slt_two_way(benchmark):
    g = workload("spanner-geometric", n=N, seed=42)
    root = 0

    def run():
        ours = shallow_light_tree(g, root, 5.0)
        seq = kry_slt(g, root, 0.5)  # same lightness budget (1+2/ε = 5)
        return ours, seq

    ours, seq = run_once(benchmark, run)
    print_table(
        "B1: SLT at lightness budget 5",
        ["construction", "lightness", "root-stretch", "rounds model"],
        [
            [
                "distributed (Thm 1)",
                f"{lightness(g, ours.tree):.3f}",
                f"{root_stretch(g, ours.tree, root):.3f}",
                f"~O(sqrt(n)+D) = {ours.rounds} charged",
            ],
            [
                "sequential [KRY95]",
                f"{lightness(g, seq.tree):.3f}",
                f"{root_stretch(g, seq.tree, root):.3f}",
                f"Omega(n) scan = {seq.rounds} charged",
            ],
        ],
    )
    assert lightness(g, ours.tree) <= 5.0 + 1e-9
    assert lightness(g, seq.tree) <= 5.0 + 1e-9
