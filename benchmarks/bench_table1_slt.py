"""Table 1, row 2 — shallow-light trees (§4, Theorem 1).

Paper bounds: stretch ``1 + O(1)/(α−1)`` at lightness α, rounds
``Õ(√n + D)·poly(1/(α−1))``.  The benchmark traces the trade-off curve in
both regimes (direct construction for large α, the [BFN16] reduction for
lightness → 1) and the rounds scaling in n.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_once, workload

from repro.analysis import lightness, root_stretch
from repro.core import shallow_light_tree
from repro.graphs import hop_diameter

N = 80
ROOT = 0


@pytest.mark.parametrize("alpha", [1.2, 1.5, 2.0, 5.0, 9.0, 17.0])
def test_slt_tradeoff_curve(benchmark, alpha):
    """The (α, 1+O(1)/(α−1)) frontier: lightness ≤ α at all points, stretch
    decreasing in α — the [KRY95]-optimal shape."""
    g = workload("slt-er")
    res = run_once(benchmark, shallow_light_tree, g, ROOT, alpha)
    ms = root_stretch(g, res.tree, ROOT)
    ml = lightness(g, res.tree)
    print_table(
        f"Table 1 row 2 (SLT), alpha={alpha}, n={N}",
        ["metric", "paper bound", "measured"],
        [
            ["lightness", f"alpha = {alpha}", f"{ml:.3f}"],
            ["root-stretch", f"1 + O(1)/(alpha-1) <= {res.stretch_bound:.1f}", f"{ms:.3f}"],
            ["rounds", "~O(sqrt(n)+D) poly(1/(alpha-1))", f"{res.rounds}"],
        ],
    )
    benchmark.extra_info.update(alpha=alpha, stretch=ms, lightness=ml, rounds=res.rounds)
    assert ml <= alpha + 1e-9
    assert ms <= res.stretch_bound + 1e-9


def test_slt_stretch_monotone_in_alpha(benchmark):
    """Crossover shape: as α grows the tree leans on the MST (stretch up,
    weight down); the measured curve must be the paper's frontier shape."""
    g = workload("slt-star-rim")

    def curve():
        out = []
        for alpha in (1.1, 2.0, 8.0, 30.0):
            res = shallow_light_tree(g, 0, alpha)
            out.append(
                (alpha, lightness(g, res.tree), root_stretch(g, res.tree, 0))
            )
        return out

    points = run_once(benchmark, curve)
    print_table(
        "SLT trade-off on star+rim (MST root-stretch is terrible)",
        ["alpha", "lightness", "root-stretch"],
        [[a, f"{l:.3f}", f"{s:.3f}"] for a, l, s in points],
    )
    assert all(x <= a + 1e-9 for (a, x, _) in points)


@pytest.mark.parametrize("n", [36, 72, 144])
def test_slt_rounds_scaling(benchmark, n):
    """Rounds ~ Õ(√n + D): quadrupling n should roughly double rounds."""
    g = workload("slt-er", n=n, p=min(1.0, 8.0 / n), seed=n)
    res = run_once(benchmark, shallow_light_tree, g, ROOT, 8.0)
    print_table(
        f"SLT rounds scaling, n={n}",
        ["n", "D", "rounds", "rounds/sqrt(n)"],
        [[n, hop_diameter(g), res.rounds, f"{res.rounds / n ** 0.5:.1f}"]],
    )
    benchmark.extra_info.update(n=n, rounds=res.rounds)
