"""Hierarchical nets — the per-scale structure behind §7.

Reports level sizes against the Claim-7 cap (``n_i <= ceil(2L/2^i)``-style
packing at each scale) and the nesting behaviour of the net-tree variant.
"""

from __future__ import annotations

import math

from conftest import print_table, run_once

from repro.core import build_net_hierarchy
from repro.graphs import random_geometric_graph
from repro.mst.kruskal import kruskal_mst


def test_hierarchy_level_sizes(benchmark):
    g = random_geometric_graph(50, seed=17)
    mst_w = kruskal_mst(g).total_weight()
    h = run_once(
        benchmark, build_net_hierarchy, g, eps=1.0, method="greedy", nested=True
    )
    rows = []
    for lvl in h.levels:
        cap = math.ceil(2 * mst_w / lvl.beta)
        rows.append([lvl.index, f"{lvl.scale:.0f}", len(lvl.points), cap])
        assert len(lvl.points) <= cap
    print_table(
        "Nested net hierarchy (geometric n=50, base 2)",
        ["level", "scale", "|N_i|", "Claim-7 cap"],
        rows,
    )
    benchmark.extra_info.update(levels=h.num_levels)


def test_nested_vs_independent_sizes(benchmark):
    """Nesting loses little: level sizes of the net-tree stay within a
    small factor of the independently-built nets."""
    g = random_geometric_graph(40, seed=18)

    def run():
        nested = build_net_hierarchy(g, eps=1.0, method="greedy", nested=True)
        indep = build_net_hierarchy(g, eps=1.0, method="greedy", nested=False)
        return nested, indep

    nested, indep = run_once(benchmark, run)
    rows = [
        [a.index, len(a.points), len(b.points)]
        for a, b in zip(nested.levels, indep.levels)
    ]
    print_table(
        "Nested vs independent per-level net sizes",
        ["level", "nested", "independent"],
        rows,
    )
    for a, b in zip(nested.levels, indep.levels):
        assert len(a.points) <= 4 * len(b.points) + 4
