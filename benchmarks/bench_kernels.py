"""Kernel speedup evidence: pure-Python SSSP vs the numpy kernels.

The tentpole workload is the huge-tier shape at stress scale: a packed
ring-chords instance (n=500k, 6 chord offsets -> ~6M arcs), 16 sources
of batched SSSP plus the fixed-point residual certification of every
row — construction + certification, the exact pipeline
``run_huge_profile`` executes.  The pure-Python kernels run it
per-source on the same mmapped columns; the numpy kernels settle the
whole (sources × nodes) matrix in one frontier-relaxation pass and fold
the residual over rows with one fused sweep.

Both sides take the min over ``REPEATS`` timed runs — wall-clock noise
on shared machines swings either side by tens of percent, and the
minimum is the standard low-variance estimator for CPU-bound loops.

Committed evidence files (CI's ``kernels-smoke`` job gates on them):

* ``benchmarks/BENCH_kernels_speedup.txt`` — the human-readable table;
* ``benchmarks/BENCH_kernels_speedup.json`` — the machine-readable
  record with the >= 10x acceptance bar.

Run modes::

    python benchmarks/bench_kernels.py --run    # measure + rewrite both
    python benchmarks/bench_kernels.py --check  # validate committed JSON

Not a pytest file on purpose: the python side alone costs ~2 minutes,
which does not belong in the tier-1 suite; --check is stdlib-only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: the acceptance bar: numpy kernels must beat pure Python by this factor
REQUIRED_SPEEDUP = 10.0

#: workload: huge-tier shape at stress scale (fits CI memory comfortably)
N, CHORDS, SEED, SOURCES = 500_000, 6, 0, 16

#: timed repetitions per side; min-of-repeats on BOTH sides keeps the
#: ratio honest under machine noise (symmetric estimator)
REPEATS = 2

HERE = Path(__file__).resolve().parent
TXT_PATH = HERE / "BENCH_kernels_speedup.txt"
JSON_PATH = HERE / "BENCH_kernels_speedup.json"

REQUIRED_JSON_KEYS = {
    "workload", "python_sssp_seconds", "python_residual_seconds",
    "numpy_prepare_seconds", "numpy_sssp_seconds", "numpy_residual_seconds",
    "python_total_seconds", "numpy_total_seconds", "speedup",
    "max_residual", "unsettled_arcs", "repeats", "required_speedup",
}


def _min_timed(fn, repeats=REPEATS):
    """(last result, min wall seconds) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def run() -> int:
    from repro.kernels import ensure_packed, has_numpy, load_packed, npkern, pykern

    if not has_numpy():
        print("FAIL: numpy is required to measure the kernel speedup "
              "(pip install -e .[fast])")
        return 1

    path = ensure_packed(N, CHORDS, SEED)
    pg = load_packed(path, verify=False)
    try:
        ip, idx, w = pg.indptr, pg.indices, pg.weights
        sources = [(k * pg.n) // SOURCES for k in range(SOURCES)]

        # ---- pure-Python side: per-source Dijkstra + residual loop
        py_matrix, py_sssp_s = _min_timed(
            lambda: pykern.sssp_matrix(ip, idx, w, sources)
        )

        def py_residual():
            worst, unsettled = 0.0, 0
            for row in py_matrix:
                r, u = pykern.residual(ip, idx, w, row)
                worst = max(worst, r)
                unsettled += u
            return worst, unsettled

        (py_worst, py_unsettled), py_res_s = _min_timed(py_residual)

        # ---- numpy side: one prepared batched pass + fused residual
        prep, np_prep_s = _min_timed(lambda: npkern.prepare(ip, idx, w))
        np_matrix, np_sssp_s = _min_timed(
            lambda: npkern.sssp_matrix_prepared(prep, sources)
        )
        (np_worst, np_unsettled), np_res_s = _min_timed(
            lambda: npkern.residual_matrix_prepared(prep, np_matrix)
        )

        # parity spot-check before any timing is trusted: one full row
        row0 = np_matrix[0]
        for v in range(0, pg.n, max(1, pg.n // 5000)):
            if abs(py_matrix[0][v] - float(row0[v])) > 1e-9:
                print(f"FATAL: kernels disagree at vertex {v}: "
                      f"{py_matrix[0][v]!r} vs {float(row0[v])!r}")
                return 1
        m_arcs = pg.m_arcs
    finally:
        pg.close()

    if py_unsettled or np_unsettled or py_worst > 1e-6 or np_worst > 1e-6:
        print(f"FATAL: certification failed (python {py_worst}/{py_unsettled},"
              f" numpy {np_worst}/{np_unsettled})")
        return 1

    py_total = py_sssp_s + py_res_s
    np_total = np_prep_s + np_sssp_s + np_res_s
    speedup = py_total / np_total
    workload = (f"ring-chords n={N} ({m_arcs} arcs), {SOURCES}-source batched "
                f"SSSP + residual certification")
    lines = [
        f"=== Kernel speedup: {workload} ===",
        "",
        f"{'stage':<34} {'python':>10} {'numpy':>10}",
        "-" * 58,
        f"{'prepare (CSR conversion)':<34} {'-':>10} {np_prep_s:>9.3f}s",
        f"{'batched SSSP (' + str(SOURCES) + ' sources)':<34}"
        f" {py_sssp_s:>9.3f}s {np_sssp_s:>9.3f}s",
        f"{'fixed-point residual (all rows)':<34}"
        f" {py_res_s:>9.3f}s {np_res_s:>9.3f}s",
        f"{'total':<34} {py_total:>9.3f}s {np_total:>9.3f}s",
        "",
        f"speedup: {speedup:.1f}x (min over {REPEATS} runs per side; "
        f"acceptance bar >= {REQUIRED_SPEEDUP:.0f}x)",
        f"certified: residual {max(py_worst, np_worst):.2e}, "
        f"0 unsettled arcs on both kernels",
    ]
    TXT_PATH.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))

    record = {
        "workload": {"family": "ring-chords", "n": N, "chords": CHORDS,
                     "seed": SEED, "m_arcs": m_arcs, "sources": SOURCES},
        "python_sssp_seconds": round(py_sssp_s, 4),
        "python_residual_seconds": round(py_res_s, 4),
        "numpy_prepare_seconds": round(np_prep_s, 4),
        "numpy_sssp_seconds": round(np_sssp_s, 4),
        "numpy_residual_seconds": round(np_res_s, 4),
        "python_total_seconds": round(py_total, 4),
        "numpy_total_seconds": round(np_total, 4),
        "speedup": round(speedup, 2),
        "max_residual": max(py_worst, np_worst),
        "unsettled_arcs": int(py_unsettled + np_unsettled),
        "repeats": REPEATS,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {TXT_PATH.name} and {JSON_PATH.name}")
    if speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"{REQUIRED_SPEEDUP:.0f}x acceptance bar")
        return 1
    return 0


def check() -> int:
    """CI gate: the committed JSON must exist, parse, and clear the bar."""
    if not JSON_PATH.exists():
        print(f"FAIL: {JSON_PATH} is missing (run --run and commit it)")
        return 1
    record = json.loads(JSON_PATH.read_text())
    missing = REQUIRED_JSON_KEYS - set(record)
    if missing:
        print(f"FAIL: {JSON_PATH.name} lacks keys: {sorted(missing)}")
        return 1
    # gate against the script's own constant, not the committed file's
    # copy — a regressed re-run must not lower the bar it is measured by
    if record["speedup"] < REQUIRED_SPEEDUP:
        print(f"FAIL: committed speedup {record['speedup']}x is below the "
              f"{REQUIRED_SPEEDUP}x bar")
        return 1
    if record["unsettled_arcs"] != 0 or record["max_residual"] > 1e-6:
        print("FAIL: committed run was not a certified fixed point")
        return 1
    if not TXT_PATH.exists():
        print(f"FAIL: {TXT_PATH} is missing (run --run and commit it)")
        return 1
    wl = record["workload"]
    print(f"OK: committed evidence shows {record['speedup']}x "
          f"(bar {record['required_speedup']}x) on ring-chords "
          f"n={wl['n']} x {wl['sources']} sources")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--run", action="store_true",
                      help="measure and rewrite the committed evidence files")
    mode.add_argument("--check", action="store_true",
                      help="validate the committed evidence (the CI gate)")
    args = parser.parse_args(argv)
    return run() if args.run else check()


if __name__ == "__main__":
    sys.exit(main())
