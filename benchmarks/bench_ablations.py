"""Ablations of the paper's design choices (DESIGN.md A1–A3).

A1 — two-phase break-point selection (§4.1) vs the sequential scan
     ([KRY95]): the paper claims the two-step choice "loses only a
     constant factor in the lightness" while replacing the Ω(n) scan with
     O(√n)-round phases.
A2 — the [BFN16] reduction (§4.4) vs naively running the base
     construction with large ε: naive gives O(1/γ²) distortion where the
     reduction gives O(1/γ).
A3 — bucket granularity ε (§5): more buckets (smaller ε) buy stretch at
     the price of rounds.
"""

from __future__ import annotations

import random

import pytest

from conftest import print_table, run_once

from repro.analysis import lightness, max_edge_stretch, root_stretch
from repro.baselines import kry_slt
from repro.core import light_spanner, shallow_light_tree, slt_base
from repro.graphs import erdos_renyi_graph

N = 70


def test_a1_two_phase_vs_sequential_breakpoints(benchmark):
    g = erdos_renyi_graph(N, 0.2, seed=31)
    eps = 0.5

    def run():
        ours = slt_base(g, 0, eps)
        seq = kry_slt(g, 0, eps)
        return ours, seq

    ours, seq = run_once(benchmark, run)
    rows = [
        [
            "two-phase (§4.1)",
            f"{lightness(g, ours.intermediate):.3f}",
            f"{root_stretch(g, ours.tree, 0):.3f}",
            len(ours.break_points),
            ours.ledger.by_phase()["bp1-interval-scan"]
            + ours.ledger.by_phase()["bp2-convergecast"]
            + ours.ledger.by_phase()["bp2-broadcast"],
        ],
        [
            "sequential [KRY95]",
            f"{lightness(g, seq.intermediate):.3f}",
            f"{root_stretch(g, seq.tree, 0):.3f}",
            len(seq.break_points),
            seq.ledger.by_phase()["sequential-scan"],
        ],
    ]
    print_table(
        "A1: break-point selection (lightness of H, selection rounds)",
        ["method", "lightness(H)", "root-stretch", "#BP", "selection rounds"],
        rows,
    )
    # the constant-factor-loss claim of §4.1:
    assert lightness(g, ours.intermediate) <= 3 * lightness(g, seq.intermediate)
    benchmark.extra_info.update(
        two_phase_light=lightness(g, ours.intermediate),
        sequential_light=lightness(g, seq.intermediate),
    )


@pytest.mark.parametrize("gamma", [0.1, 0.25, 0.5])
def test_a2_bfn_vs_naive_large_eps(benchmark, gamma):
    """Target lightness 1+γ both ways; the reduction should win on stretch
    (O(1/γ) vs O(1/γ²) bounds; measured values reflect the same ordering
    on stress inputs)."""
    g = erdos_renyi_graph(N, 0.2, seed=32)

    def run():
        with_bfn = shallow_light_tree(g, 0, 1.0 + gamma)
        naive = slt_base(g, 0, 1.0)  # the largest legal raw ε
        return with_bfn, naive

    with_bfn, naive = run_once(benchmark, run)
    print_table(
        f"A2: lightness-1+{gamma} regime",
        ["method", "lightness", "stretch bound", "measured stretch"],
        [
            [
                "BFN reduction (§4.4)",
                f"{lightness(g, with_bfn.tree):.3f}",
                f"{with_bfn.stretch_bound:.0f}",
                f"{root_stretch(g, with_bfn.tree, 0):.3f}",
            ],
            [
                "naive eps=1",
                f"{lightness(g, naive.tree):.3f}",
                f"{naive.stretch_bound:.0f}",
                f"{root_stretch(g, naive.tree, 0):.3f}",
            ],
        ],
    )
    assert lightness(g, with_bfn.tree) <= 1.0 + gamma + 1e-9
    benchmark.extra_info.update(gamma=gamma, bfn_light=lightness(g, with_bfn.tree))


@pytest.mark.parametrize("eps", [0.1, 0.25, 0.5])
def test_a3_bucket_granularity(benchmark, eps):
    g = erdos_renyi_graph(N, 0.25, seed=33)
    res = run_once(benchmark, light_spanner, g, 2, eps, random.Random(33))
    num_buckets = len([b for b in res.buckets if b.index >= 0])
    print_table(
        f"A3: bucket granularity eps={eps}",
        ["metric", "value"],
        [
            ["buckets", num_buckets],
            ["stretch bound", f"{res.stretch_bound:.2f}"],
            ["measured stretch", f"{max_edge_stretch(g, res.spanner):.3f}"],
            ["lightness", f"{lightness(g, res.spanner):.2f}"],
            ["rounds", res.rounds],
        ],
    )
    benchmark.extra_info.update(eps=eps, buckets=num_buckets, rounds=res.rounds)
    assert max_edge_stretch(g, res.spanner) <= res.stretch_bound + 1e-9
