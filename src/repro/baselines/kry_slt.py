"""Sequential shallow-light tree of Khuller–Raghavachari–Young [KRY95]
(following [ABP92]) — the baseline §4 makes distributed.

One pass over the Euler tour of the MST: keep the last break point y;
when the tour distance since y exceeds ``ε·d_G(rt, x)``, declare x a break
point and graft the *exact* shortest path rt → x.  The SLT is the exact
SPT of the resulting subgraph H.

Guarantees: root-stretch ``1 + 2ε`` and lightness ``1 + 2/ε`` — the
optimal trade-off shape of [KRY95].  The single sequential scan is exactly
what cannot be pipelined in CONGEST (§4: "In previous algorithms BP was
chosen sequentially"); the ablation benchmark contrasts it with the §4.1
two-phase selection.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.slt import SLTResult
from repro.congest.ledger import RoundLedger
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.kruskal import kruskal_mst
from repro.traversal.euler_tour import compute_euler_tour


def kry_slt(graph: WeightedGraph, root: Vertex, eps: float) -> SLTResult:
    """Sequential (1 + 2ε, 1 + 2/ε)-SLT.

    Raises
    ------
    ValueError
        If ``eps <= 0`` or the graph is disconnected.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    mst = kruskal_mst(graph)
    tour = compute_euler_tour(mst, root)
    dist, parent = dijkstra(graph, root)
    if len(dist) != graph.n:
        raise ValueError("graph is disconnected")

    break_points: List[int] = [0]
    y_time = tour.times[0]
    for j in range(1, tour.size):
        v = tour.order[j]
        if tour.times[j] - y_time > eps * dist[v]:
            break_points.append(j)
            y_time = tour.times[j]

    h = mst.copy()
    for pos in break_points:
        node: Optional[Vertex] = tour.order[pos]
        while parent[node] is not None:
            prev = parent[node]
            if not h.has_edge(prev, node):
                h.add_edge(prev, node, graph.weight(prev, node))
            node = prev

    # exact SPT of H, materialized as a tree subgraph
    _, h_parent = dijkstra(h, root)
    tree = WeightedGraph(graph.vertices())
    for v, p in h_parent.items():
        if p is not None:
            tree.add_edge(v, p, graph.weight(v, p))

    ledger = RoundLedger()
    ledger.charge("sequential-scan", tour.size)  # the Ω(n) sequential walk
    return SLTResult(
        tree=tree,
        root=root,
        eps=eps,
        stretch_bound=1.0 + 2.0 * eps,
        lightness_bound=1.0 + 2.0 / eps,
        break_points=break_points,
        anchor_points=[],
        intermediate=h,
        ledger=ledger,
    )
