"""Sequential baselines the paper's distributed constructions are compared
against in the benchmark harness."""

from repro.baselines.kry_slt import kry_slt

__all__ = ["kry_slt"]
