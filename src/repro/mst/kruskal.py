"""Sequential MST (Kruskal) — the ground truth the distributed MST is
validated against, and the direct source of the tree T for the composed
constructions (per DESIGN.md substitution 2).

Edge comparison uses the total order ``(weight, canonical endpoints)`` so
the MST is *unique* even with repeated weights; the Borůvka construction
uses the same order, hence both produce the identical tree.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.graphs.weighted_graph import WeightedGraph, canonical_edge

Vertex = Hashable


class UnionFind:
    """Disjoint-set forest with union by size and path compression."""

    def __init__(self) -> None:
        self._parent: Dict[Vertex, Vertex] = {}
        self._size: Dict[Vertex, int] = {}

    def add(self, v: Vertex) -> None:
        """Register ``v`` as a singleton (no-op if present)."""
        if v not in self._parent:
            self._parent[v] = v
            self._size[v] = 1

    def find(self, v: Vertex) -> Vertex:
        """Representative of ``v``'s set."""
        root = v
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[v] != root:  # path compression
            self._parent[v], v = root, self._parent[v]
        return root

    def union(self, u: Vertex, v: Vertex) -> bool:
        """Merge the sets of ``u`` and ``v``; False if already merged."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        if self._size[ru] < self._size[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        self._size[ru] += self._size[rv]
        return True

    def same(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``u`` and ``v`` are in the same set."""
        return self.find(u) == self.find(v)


def edge_sort_key(u: Vertex, v: Vertex, w: float) -> Tuple[float, str, str]:
    """Total order on edges: weight, then canonical endpoint names."""
    a, b = canonical_edge(u, v)
    return (w, repr(a), repr(b))


def kruskal_mst(graph: WeightedGraph) -> WeightedGraph:
    """The unique MST of ``graph`` under the deterministic edge order.

    Accepts a :class:`WeightedGraph` (frozen to its cached CSR view so the
    edge sweep runs over index arrays) or a
    :class:`~repro.graphs.csr.CSRGraph` directly.

    Returns
    -------
    WeightedGraph
        A tree spanning all of ``graph``'s vertices.

    Raises
    ------
    ValueError
        If ``graph`` is disconnected (no spanning tree exists).
    """
    if isinstance(graph, WeightedGraph):
        graph = graph.freeze()
    uf = UnionFind()
    for v in graph.vertices():
        uf.add(v)
    edges: List[Tuple[Vertex, Vertex, float]] = sorted(
        graph.edges(), key=lambda e: edge_sort_key(*e)
    )
    tree = WeightedGraph(graph.vertices())
    taken = 0
    for u, v, w in edges:
        if uf.union(u, v):
            tree.add_edge(u, v, w)
            taken += 1
            if taken == graph.n - 1:
                break
    if taken != graph.n - 1 and graph.n > 0:
        raise ValueError("graph is disconnected; MST does not exist")
    return tree
