"""Minimum-spanning-tree substrate ([KP98, Elk17b] stand-in).

The paper uses two artifacts of the distributed MST algorithm of
Kutten–Peleg / Elkin: the MST itself, and the partition of the MST into
O(√n) *base fragments* of hop-diameter O(√n) produced by its first phase
(§3.1).  This package provides both:

* :func:`~repro.mst.kruskal.kruskal_mst` — sequential ground truth (with a
  deterministic tie-break, so the MST is unique and all algorithms agree);
* :func:`~repro.mst.boruvka.boruvka_mst` — Borůvka-phase distributed-style
  construction with measured round accounting, validated against Kruskal;
* :func:`~repro.mst.fragments.decompose_fragments` — the base-fragment
  decomposition with the fragment tree T′ (§3.1).
"""

from repro.mst.kruskal import kruskal_mst, UnionFind
from repro.mst.boruvka import boruvka_mst, BoruvkaResult
from repro.mst.fragments import Fragment, FragmentDecomposition, decompose_fragments

__all__ = [
    "kruskal_mst",
    "UnionFind",
    "boruvka_mst",
    "BoruvkaResult",
    "Fragment",
    "FragmentDecomposition",
    "decompose_fragments",
]
