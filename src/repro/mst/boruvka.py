"""Borůvka-phase MST with distributed-style round accounting.

This is the stand-in for the [KP98]/[Elk17b] Õ(√n + D)-round MST (DESIGN.md
substitution 2).  It runs the classical synchronous Borůvka schedule —
every component picks its minimum outgoing edge (MOE) under the global
deterministic edge order, all MOEs are added, components merge — for
O(log n) phases.

Round accounting per phase mirrors the pipelined implementation: finding
the MOE is a convergecast inside each component over its current tree edges
(cost = the largest component hop-diameter), and announcing the merges is a
Lemma-1 broadcast of one message per component.  The totals are *measured*
from the actual component structure, so benchmarks can compare the growth
against the paper's Õ(√n + D) target.

The result is validated structurally (spanning tree, same weight as
Kruskal) by the test-suite; by the deterministic tie-break it is the same
tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.congest.ledger import RoundLedger
from repro.congest.primitives import broadcast_rounds, local_phase_rounds
from repro.graphs.shortest_paths import hop_distances
from repro.graphs.weighted_graph import WeightedGraph
from repro.mst.kruskal import UnionFind, edge_sort_key

Vertex = Hashable


@dataclass
class BoruvkaResult:
    """Output of :func:`boruvka_mst`.

    Attributes
    ----------
    tree:
        The MST (spans all vertices of the input graph).
    phases:
        Number of Borůvka phases executed (<= ceil(log2 n)).
    ledger:
        Per-phase round accounting.
    """

    tree: WeightedGraph
    phases: int
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        """Total charged rounds."""
        return self.ledger.total


def _component_hop_diameter(tree: WeightedGraph, members) -> int:
    """Hop diameter of a component of the current MST forest.

    Two BFS sweeps (exact on trees): farthest vertex from an arbitrary
    member, then farthest from that.
    """
    members = list(members)
    if len(members) <= 1:
        return 0
    sub = tree.subgraph(members)
    d0 = hop_distances(sub, members[0])
    far = max(d0, key=lambda v: d0[v])
    d1 = hop_distances(sub, far)
    return max(d1.values())


def boruvka_mst(graph: WeightedGraph, bfs_height: Optional[int] = None) -> BoruvkaResult:
    """Compute the MST by synchronous Borůvka phases with round accounting.

    Parameters
    ----------
    graph:
        Connected weighted graph.
    bfs_height:
        Height of the BFS tree τ used for the per-phase announcement
        broadcast; defaults to a crude upper bound (n - 1) if not given —
        pass the real height for meaningful round numbers.

    Raises
    ------
    ValueError
        If the graph is disconnected.
    """
    n = graph.n
    if n == 0:
        return BoruvkaResult(WeightedGraph(), 0, RoundLedger())
    height = bfs_height if bfs_height is not None else max(0, n - 1)

    ledger = RoundLedger()
    uf = UnionFind()
    for v in graph.vertices():
        uf.add(v)
    forest = WeightedGraph(graph.vertices())
    phases = 0
    num_components = n

    while num_components > 1:
        phases += 1
        # each component's minimum outgoing edge, under the global order
        moe: Dict[Vertex, Tuple[Vertex, Vertex, float]] = {}
        for u, v, w in graph.edges():
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            key = edge_sort_key(u, v, w)
            for r in (ru, rv):
                if r not in moe or edge_sort_key(*moe[r]) > key:
                    moe[r] = (u, v, w)
        if not moe:
            raise ValueError("graph is disconnected; MST does not exist")

        # round accounting: intra-component convergecast + merge broadcast
        comp_members: Dict[Vertex, list] = {}
        for v in graph.vertices():
            comp_members.setdefault(uf.find(v), []).append(v)
        max_diam = max(
            _component_hop_diameter(forest, members) for members in comp_members.values()
        )
        ledger.charge(f"phase{phases}:moe-convergecast", local_phase_rounds(max_diam))
        ledger.charge(
            f"phase{phases}:merge-broadcast",
            broadcast_rounds(len(comp_members), height),
        )

        merged_any = False
        for u, v, w in moe.values():
            if uf.union(u, v):
                forest.add_edge(u, v, w)
                num_components -= 1
                merged_any = True
        if not merged_any:  # cannot happen on a connected graph
            raise RuntimeError("Borůvka made no progress")

    return BoruvkaResult(tree=forest, phases=phases, ledger=ledger)
