"""Base-fragment decomposition of the MST (§3.1).

The first phase of the [KP98]/[Elk17b] MST algorithm leaves a partition of
the MST T into O(√n) *base fragments*, each of hop-diameter O(√n); the
remaining O(√n) MST edges (*external edges*) connect the fragments into the
virtual tree T′, which is small enough to broadcast to the whole network.
The Euler-tour construction (§3), the SLT's ABP computation (§4.2) and the
bucket machinery of §5 all consume this decomposition.

We build it directly: a post-order sweep over T closes a fragment whenever
the open subtree hanging below the current vertex reaches ``s = ceil(√n)``
vertices.  Guarantees (asserted by the test-suite):

* fragments partition V(T) into connected subtrees;
* at most ``n / s + 1 = O(√n)`` fragments;
* every open branch below a fragment root has < s vertices, so fragment
  hop-diameter is < 2s = O(√n)  (fragment *size* may exceed s at
  high-degree vertices, but only the hop-diameter enters round costs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graphs.shortest_paths import hop_distances
from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable


@dataclass
class Fragment:
    """One base fragment of the MST.

    Attributes
    ----------
    index:
        Fragment id (0 = the fragment containing the global root).
    root:
        The fragment's root ``r_i`` — the unique vertex with an MST edge
        toward the parent fragment (the global root for fragment 0).
    members:
        Vertex set of the fragment.
    """

    index: int
    root: Vertex
    members: Set[Vertex] = field(default_factory=set)

    def hop_diameter(self, tree: WeightedGraph) -> int:
        """Hop diameter of the fragment inside the MST."""
        members = list(self.members)
        if len(members) <= 1:
            return 0
        sub = tree.subgraph(members)
        d0 = hop_distances(sub, members[0])
        far = max(d0, key=lambda v: d0[v])
        d1 = hop_distances(sub, far)
        return max(d1.values())


@dataclass
class FragmentDecomposition:
    """The fragment partition plus the virtual fragment tree T′ (§3.1)."""

    tree: WeightedGraph
    root: Vertex
    fragments: List[Fragment]
    fragment_of: Dict[Vertex, int]
    #: external (inter-fragment) MST edges, as (child_root, parent_vertex, w):
    #: the edge from fragment i's root r_i to its T-parent p(r_i).
    external_edges: List[Tuple[Vertex, Vertex, float]]
    #: fragment-tree parent: fragment index -> parent fragment index
    fragment_parent: Dict[int, Optional[int]]

    @property
    def num_fragments(self) -> int:
        """Number of base fragments."""
        return len(self.fragments)

    def max_hop_diameter(self) -> int:
        """Largest fragment hop-diameter (drives local-phase round costs)."""
        return max((f.hop_diameter(self.tree) for f in self.fragments), default=0)


def _rooted_children(tree: WeightedGraph, root: Vertex) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, List[Vertex]]]:
    """Orient the tree away from ``root``; children sorted by id (§3:
    "the order between the children of a vertex is determined using their
    id")."""
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    order: List[Vertex] = [root]
    stack = [root]
    while stack:
        u = stack.pop()
        for v in tree.neighbors(u):
            if v not in parent:
                parent[v] = u
                order.append(v)
                stack.append(v)
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    for v in children:
        children[v].sort(key=repr)
    return parent, children


def decompose_fragments(
    tree: WeightedGraph, root: Vertex, target_size: Optional[int] = None
) -> FragmentDecomposition:
    """Partition the rooted MST into O(√n) base fragments.

    Parameters
    ----------
    tree:
        The MST (must be a tree).
    root:
        The global root ``rt``.
    target_size:
        Fragment-closing threshold ``s``; default ``ceil(sqrt(n))``.

    Raises
    ------
    ValueError
        If ``tree`` is not a tree or ``root`` is not one of its vertices.
    """
    if not tree.is_tree():
        raise ValueError("fragment decomposition requires a tree")
    if not tree.has_vertex(root):
        raise ValueError(f"root {root!r} not in tree")
    n = tree.n
    s = target_size if target_size is not None else max(1, math.isqrt(n - 1) + 1)

    parent, children = _rooted_children(tree, root)

    # Post-order traversal (iterative; trees can be deep).
    post: List[Vertex] = []
    stack: List[Tuple[Vertex, bool]] = [(root, False)]
    while stack:
        v, expanded = stack.pop()
        if expanded:
            post.append(v)
            continue
        stack.append((v, True))
        for c in reversed(children[v]):
            stack.append((c, False))

    fragments: List[Fragment] = []
    fragment_of: Dict[Vertex, int] = {}
    open_below: Dict[Vertex, List[Vertex]] = {}  # open (unassigned) subtree per vertex

    def close_fragment(frag_root: Vertex, members: List[Vertex]) -> None:
        idx = len(fragments)
        frag = Fragment(index=idx, root=frag_root, members=set(members))
        fragments.append(frag)
        for m in members:
            fragment_of[m] = idx

    for v in post:
        mine = [v]
        for c in children[v]:
            mine.extend(open_below.pop(c, []))
        if len(mine) >= s or v == root:
            close_fragment(v, mine)
        else:
            open_below[v] = mine
    assert not open_below, "all vertices must be assigned to fragments"

    # Re-index so the fragment containing the global root is number 0.
    root_idx = fragment_of[root]
    if root_idx != 0:
        perm = {root_idx: 0, 0: root_idx}
        fragments[0], fragments[root_idx] = fragments[root_idx], fragments[0]
        for i, frag in enumerate(fragments):
            frag.index = i
        for vtx, idx in fragment_of.items():
            fragment_of[vtx] = perm.get(idx, idx)

    # External edges and the fragment tree T'.
    external_edges: List[Tuple[Vertex, Vertex, float]] = []
    fragment_parent: Dict[int, Optional[int]] = {0: None}
    for frag in fragments:
        if frag.members and parent[frag.root] is not None:
            p = parent[frag.root]
            external_edges.append((frag.root, p, tree.weight(frag.root, p)))
            fragment_parent[frag.index] = fragment_of[p]
        elif frag.root == root:
            fragment_parent[frag.index] = None

    return FragmentDecomposition(
        tree=tree,
        root=root,
        fragments=fragments,
        fragment_of=fragment_of,
        external_edges=external_edges,
        fragment_parent=fragment_parent,
    )
