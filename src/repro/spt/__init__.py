"""Shortest-path trees: exact (distributed Bellman–Ford) and (1+ε)-approximate.

The paper's SLT (§4), nets (§6) and doubling spanner (§7) all consume the
(1+ε)-approximate SPT of Becker–Karrenbauer–Krinninger–Lenzen [BKKL17],
which runs in Õ((√n + D)/poly ε) CONGEST rounds.  Per DESIGN.md
substitution 3 we provide:

* :class:`~repro.spt.bellman_ford.DistributedBellmanFord` — an honest
  simulator node program computing the *exact* SPT (rounds = shortest-path
  hop radius; used for validation and small graphs);
* :func:`~repro.spt.approx_spt.approx_spt` — a genuine (1+ε)-approximate
  SPT (weights rounded up to powers of (1+ε) before the tree is chosen, so
  the approximation is real, not cosmetic), charged at the [BKKL17] cost;
* :func:`~repro.spt.approx_spt.bounded_approx_spt` — the Δ-bounded
  multi-source variant §7 needs.
"""

from repro.spt.tree import SPTree
from repro.spt.bellman_ford import DistributedBellmanFord, exact_spt_distributed
from repro.spt.approx_spt import approx_spt, bounded_approx_spt, bkkl_round_cost
from repro.spt.bounded_bellman_ford import BoundedBellmanFord, bounded_bellman_ford

__all__ = [
    "SPTree",
    "DistributedBellmanFord",
    "exact_spt_distributed",
    "approx_spt",
    "bounded_approx_spt",
    "bkkl_round_cost",
    "BoundedBellmanFord",
    "bounded_bellman_ford",
]
