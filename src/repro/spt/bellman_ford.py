"""Exact distributed SPT via synchronous Bellman–Ford.

This is the honest CONGEST baseline: every round each node whose distance
estimate improved announces ``(estimate)`` to its neighbours (one word —
ids are implicit in the communication edge).  After ``h`` rounds every
vertex whose shortest path has at most ``h`` hops is settled, so the
measured round count equals the shortest-path hop radius — up to ``n - 1``
on adversarial weighted graphs, which is exactly why the paper reaches for
the approximate SPT of [BKKL17] instead (§4: exact SPT algorithms "require
more than Õ(√n + D) rounds").

The test-suite validates the simulator against Dijkstra with this program.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import WeightedGraph
from repro.spt.tree import SPTree

Vertex = Hashable
INF = float("inf")


class DistributedBellmanFord(CongestAlgorithm):
    """Synchronous Bellman–Ford from a single root.

    State per node: ``bf_dist`` (current estimate), ``bf_parent``.
    Message: the sender's new estimate (1 word).  A node only transmits in
    rounds where its estimate improved, so the algorithm quiesces once all
    estimates are final.  Purely mail-driven (activity contract): the
    sparse engine steps only nodes whose neighbourhood changed.
    """

    def __init__(self, root: Vertex) -> None:
        self.root = root

    def setup(self, node: NodeView) -> Outbox:
        if node.id == self.root:
            node.state["bf_dist"] = 0.0
            node.state["bf_parent"] = None
            return {nbr: 0.0 for nbr in node.neighbors}
        node.state["bf_dist"] = INF
        node.state["bf_parent"] = None
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        improved = False
        for sender, est in inbox.items():
            candidate = est + node.edge_weight(sender)
            if candidate < node.state["bf_dist"]:
                node.state["bf_dist"] = candidate
                node.state["bf_parent"] = sender
                improved = True
        if improved:
            return {nbr: node.state["bf_dist"] for nbr in node.neighbors}
        return {}

    def is_done(self, node: NodeView) -> bool:
        # termination by quiescence; unreachable nodes (disconnected
        # graph) are detected by exact_spt_distributed afterwards
        return True


def exact_spt_distributed(
    graph: WeightedGraph, root: Vertex, network: Optional[SyncNetwork] = None
) -> SPTree:
    """Run :class:`DistributedBellmanFord` and package the exact SPT.

    Raises
    ------
    ValueError
        If the graph is disconnected.
    """
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(DistributedBellmanFord(root))
    parent: Dict[Vertex, Optional[Vertex]] = {}
    dist: Dict[Vertex, float] = {}
    for v in graph.vertices():
        state = net.view(v).state
        if state["bf_dist"] == INF:
            raise ValueError(f"graph disconnected: {v!r} unreachable from {root!r}")
        parent[v] = state["bf_parent"]
        dist[v] = state["bf_dist"]
    return SPTree(root=root, parent=parent, dist=dist, rounds=rounds)
