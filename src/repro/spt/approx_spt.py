"""(1+ε)-approximate shortest-path tree — the [BKKL17] stand-in.

Per DESIGN.md substitution 3, the approximation is made *real* rather than
cosmetic: edge weights are rounded **up** to integer powers of ``(1+ε)``
before the tree is selected, and the returned ``dist`` values are the true
(unrounded) weights of the chosen tree paths.  Consequences:

* every tree path is a genuine path of G whose weight ``dist[v]`` satisfies
  ``d_G(rt, v) <= dist[v] <= (1+ε) · d_G(rt, v)`` — Equation (1) of the
  paper, with the upper bound typically *attained* (downstream analyses are
  exercised against an actually-inexact SPT);
* the tree generally differs from the exact SPT, as [BKKL17]'s would.

Round cost: [BKKL17] give Õ((√n + D)/poly ε); we charge
``(ceil(sqrt(n)) + height) · ceil(log2(n+1))^2 · ceil(1/ε)`` — the same
measured-quantity convention as every other ledger charge (constants fixed
once, uniform across constructions).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.congest.ledger import RoundLedger
from repro.graphs.csr import CSRGraph
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.spt.tree import SPTree


def _round_up_weight(w: float, eps: float) -> float:
    """Round ``w`` up to the next integer power of ``1 + eps``."""
    if eps <= 0:
        return w
    base = 1.0 + eps
    exponent = math.ceil(math.log(w, base) - 1e-12)
    return base ** exponent


def bkkl_round_cost(n: int, height: int, eps: float) -> int:
    """Charged rounds for one [BKKL17] approximate-SPT invocation."""
    if n <= 1:
        return 1
    sqrt_n = math.isqrt(n - 1) + 1
    polylog = math.ceil(math.log2(n + 1)) ** 2
    return (sqrt_n + height) * polylog * math.ceil(1.0 / max(eps, 1e-9))


def approx_spt(
    graph: WeightedGraph,
    root: Vertex,
    eps: float,
    bfs_height: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    phase: str = "approx-spt",
) -> SPTree:
    """Build a (1+ε)-approximate SPT rooted at ``root``.

    Parameters
    ----------
    graph:
        Connected weighted graph.
    eps:
        Approximation parameter; ``eps = 0`` degenerates to the exact SPT.
    bfs_height:
        BFS-tree height for the round charge (default: ``isqrt(n)``).
    ledger:
        Optional ledger to charge; a fresh one is used otherwise.
    phase:
        Ledger phase name.

    Raises
    ------
    ValueError
        If the graph is disconnected.
    """
    n = graph.n
    height = bfs_height if bfs_height is not None else (math.isqrt(max(n - 1, 0)) + 1)
    led = ledger if ledger is not None else RoundLedger()
    rounds = led.charge(phase, bkkl_round_cost(n, height, max(eps, 1e-9)))

    if eps > 0:
        rounded = graph.reweighted(lambda u, v, w: _round_up_weight(w, eps))
    else:
        rounded = graph
    _, parent = dijkstra(rounded, root)
    if len(parent) != n:
        raise ValueError(f"graph disconnected: approximate SPT from {root!r} failed")

    # true weights of the chosen tree paths
    dist: Dict[Vertex, float] = {root: 0.0}
    order: List[Vertex] = [root]
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    idx = 0
    while idx < len(order):
        u = order[idx]
        idx += 1
        for c in children[u]:
            dist[c] = dist[u] + graph.weight(u, c)
            order.append(c)

    return SPTree(root=root, parent=parent, dist=dist, rounds=rounds)


def bounded_approx_spt(
    graph: WeightedGraph,
    sources: Iterable[Vertex],
    radius: float,
    eps: float,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]], Dict[Vertex, Vertex]]:
    """Multi-source ``radius``-bounded (1+ε)-approximate shortest paths.

    The §7 doubling spanner runs, from every net point in parallel, a
    2Δ-bounded (1+ε)-approximate exploration; this is its sequential core
    (the hopset module owns the round accounting).

    Returns
    -------
    (dist, parent, origin):
        ``dist[v]`` — weight (true weights) of the chosen path from the
        nearest source, present only when ``<= radius``;
        ``parent[v]`` — predecessor on that path (None at sources);
        ``origin[v]`` — which source the path starts at.

    Notes
    -----
    Paths are selected under weights rounded up to powers of (1+ε) but
    pruned by *true* accumulated weight against ``radius``, so every
    reported path genuinely fits the bound while its weight is within
    (1+ε) of optimal among radius-bounded paths.
    """
    import heapq

    if isinstance(graph, CSRGraph):
        return _csr_bounded_approx_spt(graph, sources, radius, eps)

    if eps > 0:
        def weight_of(u: Vertex, v: Vertex) -> float:
            return _round_up_weight(graph.weight(u, v), eps)
    else:
        weight_of = graph.weight

    dist: Dict[Vertex, float] = {}
    true_dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Optional[Vertex]] = {}
    origin: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    counter = 0
    for s in sources:
        dist[s] = 0.0
        true_dist[s] = 0.0
        parent[s] = None
        origin[s] = s
        heapq.heappush(heap, (0.0, counter, s))
        counter += 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_items(u):
            nd = d + weight_of(u, v)
            nt = true_dist[u] + w
            if nt <= radius and nd < dist.get(v, float("inf")):
                dist[v] = nd
                true_dist[v] = nt
                parent[v] = u
                origin[v] = origin[u]
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return true_dist, parent, origin


def _csr_bounded_approx_spt(
    csr: CSRGraph,
    sources: Iterable[Vertex],
    radius: float,
    eps: float,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]], Dict[Vertex, Vertex]]:
    """Indexed variant of :func:`bounded_approx_spt` over a CSR graph."""
    import heapq

    n = csr.n
    indptr, indices, weights, verts = csr.indptr, csr.indices, csr.weights, csr.verts
    INF = float("inf")
    dist: List[float] = [INF] * n
    true_dist: List[float] = [INF] * n
    parent: List[int] = [-2] * n
    origin: List[int] = [-1] * n
    heap: List[Tuple[float, int]] = []
    for s in sources:
        i = csr.index_of(s)
        dist[i] = 0.0
        true_dist[i] = 0.0
        parent[i] = -1
        origin[i] = i
        heap.append((0.0, i))
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue  # stale entry
        tu = true_dist[u]
        ou = origin[u]
        a, b = indptr[u], indptr[u + 1]
        for v, w in zip(indices[a:b], weights[a:b]):
            nd = d + (_round_up_weight(w, eps) if eps > 0 else w)
            nt = tu + w
            if nt <= radius and nd < dist[v]:
                dist[v] = nd
                true_dist[v] = nt
                parent[v] = u
                origin[v] = ou
                push(heap, (nd, v))
    out_dist: Dict[Vertex, float] = {}
    out_parent: Dict[Vertex, Optional[Vertex]] = {}
    out_origin: Dict[Vertex, Vertex] = {}
    for i in range(n):
        p = parent[i]
        if p == -2:
            continue
        out_dist[verts[i]] = true_dist[i]
        out_parent[verts[i]] = None if p == -1 else verts[p]
        out_origin[verts[i]] = verts[origin[i]]
    return out_dist, out_parent, out_origin
