"""Rooted shortest-path-tree container shared by exact and approximate SPTs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable


@dataclass
class SPTree:
    """A rooted spanning tree with per-vertex root distances.

    For an exact SPT ``dist[v] == d_G(rt, v)``; for a (1+ε)-approximate SPT
    (Equation (1) of the paper) ``d_G(rt, v) <= dist[v] <= (1+ε) d_G(rt, v)``,
    and ``dist[v]`` is always the *true weight* of the tree path — the tree
    is a subgraph of G, as the SLT construction requires (§4.2 adds tree
    paths P_b to H).

    Attributes
    ----------
    root:
        The root ``rt``.
    parent:
        Vertex → parent on the tree (root → None).
    dist:
        Vertex → weight of the tree path to the root.
    rounds:
        Charged/measured CONGEST rounds of the construction.
    """

    root: Vertex
    parent: Dict[Vertex, Optional[Vertex]]
    dist: Dict[Vertex, float]
    rounds: int = 0

    def path_to_root(self, v: Vertex) -> List[Vertex]:
        """The unique tree path ``v → ... → root`` (the paper's P_b reversed)."""
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def as_graph(self, source: WeightedGraph) -> WeightedGraph:
        """Materialize the tree as a :class:`WeightedGraph` (weights from G)."""
        tree = WeightedGraph(self.parent)
        for v, p in self.parent.items():
            if p is not None:
                tree.add_edge(v, p, source.weight(v, p))
        return tree

    def stretch_to_root(self, exact_dist: Dict[Vertex, float]) -> float:
        """Max ``dist[v] / d_G(rt, v)`` over v ≠ root — the SPT's root-stretch."""
        worst = 1.0
        for v, d in self.dist.items():
            true = exact_dist[v]
            if true > 0:
                worst = max(worst, d / true)
        return worst
