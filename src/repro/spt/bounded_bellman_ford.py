"""Native β-iteration multi-source Bellman–Ford (the §7 exploration core).

The §7 doubling spanner runs, from every net point, a Δ-bounded
approximate exploration implemented as β Bellman–Ford iterations over
G ∪ E′ ∪ F (§7.1).  This module provides the G-part of that machinery as
an honest CONGEST node program: ``hops`` synchronous relaxation rounds
from a source set, with distance- and radius-pruning, measuring real
rounds.  The test-suite validates it against the sequential
:func:`repro.hopsets.skeleton.hop_bounded_distances` and uses it to
sanity-check the `bounded_exploration_cost` charges.

Message: the sender's current estimate (1 word).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


class BoundedBellmanFord(CongestAlgorithm):
    """``hops`` rounds of synchronous relaxation from a source set.

    State written: ``bbf_dist`` (estimate; INF when unreached or beyond
    ``radius``), ``bbf_parent``.
    """

    def __init__(
        self, sources: Iterable[Vertex], hops: int, radius: float = INF
    ) -> None:
        self.sources = set(sources)
        self.hops = hops
        self.radius = radius

    def setup(self, node: NodeView) -> Outbox:
        if node.id in self.sources:
            node.state["bbf_dist"] = 0.0
            node.state["bbf_parent"] = None
            return {nbr: 0.0 for nbr in node.neighbors}
        node.state["bbf_dist"] = INF
        node.state["bbf_parent"] = None
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        # The hop budget is metered by the global round counter (activity
        # contract: a sleeping node is not stepped, so a local invocation
        # counter would undercount and accept relaxations past the budget).
        if node.round > self.hops:
            return {}
        improved = False
        for sender, est in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            candidate = est + node.edge_weight(sender)
            if candidate <= self.radius and candidate < node.state["bbf_dist"]:
                node.state["bbf_dist"] = candidate
                node.state["bbf_parent"] = sender
                improved = True
        if improved and node.round < self.hops:
            return {nbr: node.state["bbf_dist"] for nbr in node.neighbors}
        return {}

    def is_done(self, node: NodeView) -> bool:
        return True  # quiescence (or the hop budget) ends the run


def bounded_bellman_ford(
    graph: WeightedGraph,
    sources: Iterable[Vertex],
    hops: int,
    radius: float = INF,
    network: Optional[SyncNetwork] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]], int]:
    """Run :class:`BoundedBellmanFord`; return (dist, parent, rounds).

    ``dist[v]`` is present iff v was reached within ``hops`` relaxations
    and ``radius`` total weight — i.e. ``d^{(hops)}_G`` restricted to the
    ball, the quantity §7's explorations compute.

    Raises
    ------
    ValueError
        If ``hops < 1`` or no sources are given.
    """
    sources = list(sources)
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    if not sources:
        raise ValueError("need at least one source")
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(BoundedBellmanFord(sources, hops, radius))
    dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Optional[Vertex]] = {}
    for v in graph.vertices():
        d = net.view(v).state["bbf_dist"]
        if d < INF:
            dist[v] = d
            parent[v] = net.view(v).state["bbf_parent"]
    return dist, parent, rounds
