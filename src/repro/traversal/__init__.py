"""Euler tour / DFS traversal of the MST (§3 of the paper)."""

from repro.traversal.euler_tour import EulerTour, compute_euler_tour

__all__ = ["EulerTour", "compute_euler_tour"]
