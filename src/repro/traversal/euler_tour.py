"""Eulerian tour of the MST (§3, Lemma 2).

The traversal ``L = {rt = x_0, x_1, ..., x_{2n-2}}`` is the preorder DFS
walk of the MST T rooted at ``rt``, children visited in id order.  Each
vertex ``v`` appears ``deg_T(v)`` times (the root ``deg_T(rt) + 1``); the
walk's total weighted length is ``2·w(T)``; the visit time of appearance
``x`` is ``R_x = d_L(rt, x)``.

Lemma 2 computes L in Õ(√n + D) CONGEST rounds through the staged
fragment algorithm of §3.1–§3.3: local tour lengths ``ℓ(v)`` inside base
fragments, a broadcast that lets everyone evaluate the global lengths
``g(r_i)`` of fragment roots on the virtual tree T′, local propagation of
``g(v)``, then the same pattern once more for DFS intervals.  We execute
those stages faithfully over the fragment decomposition — each value is
computed from exactly the information the paper says the vertex has — and
charge the ledger with each stage's measured cost.  A direct recursive DFS
cross-checks the staged result (they must agree exactly), so the tour used
downstream is *certified*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.congest.ledger import RoundLedger
from repro.congest.primitives import broadcast_rounds, convergecast_rounds, local_phase_rounds
from repro.graphs.weighted_graph import WeightedGraph
from repro.mst.fragments import FragmentDecomposition, decompose_fragments, _rooted_children

Vertex = Hashable


@dataclass
class EulerTour:
    """The MST traversal L with all per-appearance metadata.

    Attributes
    ----------
    order:
        The traversal as a vertex sequence, ``order[i] = x_i``
        (length ``2n - 1``).
    times:
        ``times[i] = R_{x_i}``, the weighted visit time of position i.
    appearances:
        ``appearances[v]`` — sorted positions of v in the tour (the
        paper's L(v)).
    intervals:
        Global DFS interval ``t(v) = [entry, exit]`` per vertex (§3.3).
    ledger:
        Round accounting for the staged computation (Lemma 2 target:
        Õ(√n + D)).
    """

    tree: WeightedGraph
    root: Vertex
    order: List[Vertex]
    times: List[float]
    appearances: Dict[Vertex, List[int]]
    intervals: Dict[Vertex, Tuple[float, float]]
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def length(self) -> float:
        """Total weighted length of the tour; equals ``2·w(T)``."""
        return self.times[-1] if self.times else 0.0

    @property
    def size(self) -> int:
        """Number of tour positions (``2n - 1``)."""
        return len(self.order)

    @property
    def rounds(self) -> int:
        """Total charged CONGEST rounds."""
        return self.ledger.total

    def tour_distance(self, i: int, j: int) -> float:
        """``d_L(x_i, x_j)`` — distance along the tour between positions."""
        return abs(self.times[i] - self.times[j])

    def first_appearance(self, v: Vertex) -> int:
        """Position of v's first (preorder) appearance."""
        return self.appearances[v][0]


def _direct_tour(
    tree: WeightedGraph, root: Vertex
) -> Tuple[List[Vertex], List[float]]:
    """Reference DFS tour (iterative), children in id order."""
    _, children = _rooted_children(tree, root)
    order: List[Vertex] = [root]
    times: List[float] = [0.0]
    # stack of (vertex, iterator over remaining children)
    stack: List[Tuple[Vertex, List[Vertex]]] = [(root, list(children[root]))]
    while stack:
        v, remaining = stack[-1]
        if remaining:
            c = remaining.pop(0)
            order.append(c)
            times.append(times[-1] + tree.weight(v, c))
            stack.append((c, list(children[c])))
        else:
            stack.pop()
            if stack:
                p = stack[-1][0]
                order.append(p)
                times.append(times[-1] + tree.weight(v, p))
    return order, times


def _staged_lengths(
    tree: WeightedGraph,
    root: Vertex,
    decomp: FragmentDecomposition,
    children: Dict[Vertex, List[Vertex]],
    post_order: List[Vertex],
) -> Tuple[Dict[Vertex, float], Dict[Vertex, float]]:
    """§3.2 — local tour lengths ℓ(v) and global tour lengths g(v).

    ℓ(v): twice the weight of v's subtree *inside its own fragment*.
    g(v): twice the weight of v's full subtree in T.  Both are computed
    bottom-up exactly as the distributed stages do.
    """
    frag_of = decomp.fragment_of
    local_len: Dict[Vertex, float] = {}
    for v in post_order:
        total = 0.0
        for c in children[v]:
            if frag_of[c] == frag_of[v]:
                total += local_len[c] + 2 * tree.weight(v, c)
        local_len[v] = total

    global_len: Dict[Vertex, float] = {}
    for v in post_order:
        total = 0.0
        for c in children[v]:
            total += global_len[c] + 2 * tree.weight(v, c)
        global_len[v] = total
    return local_len, global_len


def _staged_intervals(
    tree: WeightedGraph,
    root: Vertex,
    children: Dict[Vertex, List[Vertex]],
    global_len: Dict[Vertex, float],
) -> Dict[Vertex, Tuple[float, float]]:
    """§3.3 — DFS intervals t(v) = [entry, entry + g(v)], top-down.

    Child j of v with older siblings z_1..z_{j-1} enters at
    ``entry(v) + Σ_{q<j} (g(z_q) + 2 w(v, z_q)) + w(v, z_j)``.
    """
    intervals: Dict[Vertex, Tuple[float, float]] = {root: (0.0, global_len[root])}
    stack: List[Vertex] = [root]
    while stack:
        v = stack.pop()
        a, _ = intervals[v]
        offset = a
        for c in children[v]:
            entry = offset + tree.weight(v, c)
            intervals[c] = (entry, entry + global_len[c])
            offset = entry + global_len[c] + tree.weight(v, c)
            stack.append(c)
    return intervals


def compute_euler_tour(
    tree: WeightedGraph,
    root: Vertex,
    decomposition: Optional[FragmentDecomposition] = None,
    bfs_height: Optional[int] = None,
) -> EulerTour:
    """Compute the traversal L per Lemma 2, with round accounting.

    Parameters
    ----------
    tree:
        The MST (must be a tree containing ``root``).
    decomposition:
        Pre-computed base fragments (recomputed if omitted).
    bfs_height:
        Height of the BFS tree τ (for Lemma-1 charges); defaults to the
        number of fragments, a conservative stand-in when τ is unknown.

    Raises
    ------
    ValueError
        If ``tree`` is not a tree.
    """
    if not tree.is_tree():
        raise ValueError("Euler tour requires a tree")
    n = tree.n
    decomp = decomposition if decomposition is not None else decompose_fragments(tree, root)
    height = bfs_height if bfs_height is not None else decomp.num_fragments

    parent, children = _rooted_children(tree, root)
    post: List[Vertex] = []
    stack: List[Tuple[Vertex, bool]] = [(root, False)]
    while stack:
        v, expanded = stack.pop()
        if expanded:
            post.append(v)
            continue
        stack.append((v, True))
        for c in reversed(children[v]):
            stack.append((c, False))

    ledger = RoundLedger()
    max_frag_diam = decomp.max_hop_diameter()
    num_frags = decomp.num_fragments

    # §3.1: broadcast the fragment tree T' (one message per external edge).
    ledger.charge("broadcast-fragment-tree", broadcast_rounds(num_frags, height))

    # §3.2: local tour lengths (fragment-local), root-length broadcast,
    # then global tour lengths (fragment-local again).
    local_len, global_len = _staged_lengths(tree, root, decomp, children, post)
    ledger.charge("local-tour-lengths", local_phase_rounds(max_frag_diam))
    ledger.charge("broadcast-root-lengths", broadcast_rounds(num_frags, height))
    ledger.charge("global-tour-lengths", local_phase_rounds(max_frag_diam))

    # §3.3: local DFS intervals, convergecast of root intervals to rt,
    # rt's local shift computation, broadcast of shifts.
    intervals = _staged_intervals(tree, root, children, global_len)
    ledger.charge("local-dfs-intervals", local_phase_rounds(max_frag_diam))
    ledger.charge("convergecast-root-intervals", convergecast_rounds(2 * num_frags, height))
    ledger.charge("broadcast-shifts", broadcast_rounds(num_frags, height))

    # The unweighted pass that gives each appearance its *index* costs the
    # same again ("running the same algorithm that finds visiting times,
    # ignoring the weights", §4.1).
    ledger.charge("unweighted-index-pass", ledger.total)

    order, times = _direct_tour(tree, root)

    # Certification: the staged quantities must agree with the direct walk.
    assert abs(times[-1] - global_len[root]) < 1e-9, "g(rt) must equal tour length"
    assert len(order) == 2 * n - 1, "tour must have 2n - 1 positions"

    appearances: Dict[Vertex, List[int]] = {}
    for i, v in enumerate(order):
        appearances.setdefault(v, []).append(i)

    for v, (entry, exit_) in intervals.items():
        first = appearances[v][0]
        assert abs(times[first] - entry) < 1e-9, f"interval entry mismatch at {v!r}"
        last = appearances[v][-1]
        assert abs(times[last] - exit_) < 1e-9, f"interval exit mismatch at {v!r}"

    return EulerTour(
        tree=tree,
        root=root,
        order=order,
        times=times,
        appearances=appearances,
        intervals=intervals,
        ledger=ledger,
    )
