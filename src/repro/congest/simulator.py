"""Synchronous CONGEST network executor.

:class:`SyncNetwork` runs a :class:`~repro.congest.algorithm.CongestAlgorithm`
over a :class:`~repro.graphs.WeightedGraph`, enforcing the model's
constraints:

* **Locality** — each node program only ever sees its own
  :class:`~repro.congest.algorithm.NodeView` and its inbox.
* **Bandwidth** — each message must fit ``words_per_message`` machine words
  (a word is O(log n) bits; the paper's footnote 8).  Oversized payloads
  raise :class:`BandwidthViolation` — an algorithm bug, not a runtime
  condition to catch.
* **Synchrony** — messages sent in round ``r`` are delivered at the start
  of round ``r + 1``; the round counter is the complexity measure.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from repro.congest.algorithm import CongestAlgorithm, NodeView
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable


class BandwidthViolation(RuntimeError):
    """A node tried to send a message exceeding the per-edge word budget."""


def payload_words(payload: Any) -> int:
    """Number of machine words a payload occupies on the wire.

    Accounting rules (one word = O(log n) bits, enough for a vertex id or a
    poly(n)-bounded weight, per the paper's footnote 8):

    * ``None`` — 0 words (a bare "ping" still costs 1 via the minimum below);
    * numbers, booleans, vertex ids (hashable scalars) — 1 word;
    * strings — 1 word per 8 characters (tags like "join" are 1 word);
    * tuples / lists / sets / dicts — sum over entries.

    Every non-``None`` message costs at least 1 word.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool) or isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, str):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return max(1, sum(payload_words(item) for item in payload))
    if isinstance(payload, dict):
        return max(1, sum(payload_words(k) + payload_words(v) for k, v in payload.items()))
    return 1  # opaque scalar (e.g. an enum member): one word


class SyncNetwork:
    """Synchronous executor for CONGEST node programs.

    Parameters
    ----------
    graph:
        The communication graph (also the input graph — per the model,
        every node knows its incident edges and their weights).  Either a
        :class:`WeightedGraph` or a frozen :class:`CSRGraph`; internally
        the network relabels nodes to dense indices once so the per-round
        message fan-out runs over flat lists instead of label-keyed dicts.
    words_per_message:
        Per-edge-per-round bandwidth in words.  The model allows O(log n)
        bits ≈ O(1) words; the default of 4 accommodates the paper's
        messages, which are constant-length tuples of ids and weights
        (e.g. ``(s(x), m(x) - 1)`` in §5 or ``(x_iα, R_{x_iα})`` in §4.1).
    strict_bandwidth:
        When True (default), oversized messages raise
        :class:`BandwidthViolation`.
    """

    def __init__(
        self,
        graph: Union[WeightedGraph, CSRGraph],
        words_per_message: int = 4,
        strict_bandwidth: bool = True,
    ) -> None:
        self.graph = graph
        self.words_per_message = words_per_message
        self.strict_bandwidth = strict_bandwidth
        self.rounds_executed = 0
        self.messages_sent = 0
        self.words_sent = 0
        # dense relabeling: node i of the round loop is label _verts[i]
        self._verts: List[Vertex] = list(graph.vertices())
        self._vidx: Dict[Vertex, int] = {v: i for i, v in enumerate(self._verts)}
        self._view_list: List[NodeView] = [
            NodeView(v, dict(graph.neighbor_items(v))) for v in self._verts
        ]
        self._views: Dict[Vertex, NodeView] = {
            v: view for v, view in zip(self._verts, self._view_list)
        }

    # ------------------------------------------------------------------
    def view(self, v: Vertex) -> NodeView:
        """The node view for vertex ``v`` (inspect state after a run)."""
        return self._views[v]

    def views(self) -> Dict[Vertex, NodeView]:
        """All node views, keyed by vertex id."""
        return dict(self._views)

    def reset(self) -> None:
        """Clear node state and counters (reuse the network for a new run)."""
        self.rounds_executed = 0
        self.messages_sent = 0
        self.words_sent = 0
        for view in self._views.values():
            view.state = {}

    # ------------------------------------------------------------------
    def _check_outbox(
        self, sender: Vertex, view: NodeView, outbox: Dict[Vertex, Any]
    ) -> None:
        for dst, payload in outbox.items():
            if dst not in view._incident:
                raise ValueError(
                    f"node {sender!r} tried to message non-neighbor {dst!r}"
                )
            words = payload_words(payload)
            if self.strict_bandwidth and words > self.words_per_message:
                raise BandwidthViolation(
                    f"node {sender!r} -> {dst!r}: payload {payload!r} is "
                    f"{words} words, budget is {self.words_per_message}"
                )
            self.messages_sent += 1
            self.words_sent += words

    def run(
        self,
        algorithm: CongestAlgorithm,
        max_rounds: int = 10_000,
        quiesce: bool = True,
    ) -> int:
        """Execute ``algorithm`` until termination; return rounds executed.

        Termination: all nodes report ``is_done`` and no messages are in
        flight (when ``quiesce`` is True, the default), or ``max_rounds``
        elapses — whichever comes first.

        Raises
        ------
        RuntimeError
            If ``max_rounds`` elapses before termination (runaway
            algorithms are bugs; the paper's algorithms all have explicit
            round bounds).
        """
        # message fan-out over dense indices: inflight[i] is the inbox of
        # node self._verts[i] for the next round (keys stay labels — the
        # NodeView API promises sender ids)
        n = len(self._verts)
        verts, vidx, view_list = self._verts, self._vidx, self._view_list
        inflight: List[Dict[Vertex, Any]] = [{} for _ in range(n)]

        # Round 0: setup.
        any_message = False
        for i in range(n):
            view = view_list[i]
            outbox = algorithm.setup(view) or {}
            sender = verts[i]
            self._check_outbox(sender, view, outbox)
            for dst, payload in outbox.items():
                inflight[vidx[dst]][sender] = payload
                any_message = True
        self.rounds_executed = 1

        is_done = algorithm.is_done
        step = algorithm.step
        while True:
            all_done = all(is_done(view) for view in view_list)
            if quiesce and all_done and not any_message:
                break
            if self.rounds_executed >= max_rounds:
                if all_done and not any_message:
                    break
                raise RuntimeError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )
            delivery = inflight
            inflight = [{} for _ in range(n)]
            any_message = False
            for i in range(n):
                view = view_list[i]
                outbox = step(view, delivery[i]) or {}
                if outbox:
                    sender = verts[i]
                    self._check_outbox(sender, view, outbox)
                    for dst, payload in outbox.items():
                        inflight[vidx[dst]][sender] = payload
                        any_message = True
            self.rounds_executed += 1

        for view in view_list:
            algorithm.finish(view)
        return self.rounds_executed

    def __repr__(self) -> str:
        return (
            f"SyncNetwork(n={self.graph.n}, m={self.graph.m}, "
            f"rounds={self.rounds_executed}, msgs={self.messages_sent})"
        )
