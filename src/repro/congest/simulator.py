"""Synchronous CONGEST network executor.

:class:`SyncNetwork` runs a :class:`~repro.congest.algorithm.CongestAlgorithm`
over a :class:`~repro.graphs.WeightedGraph`, enforcing the model's
constraints:

* **Locality** — each node program only ever sees its own
  :class:`~repro.congest.algorithm.NodeView` and its inbox.
* **Bandwidth** — each message must fit ``words_per_message`` machine words
  (a word is O(log n) bits; the paper's footnote 8).  Oversized payloads
  raise :class:`BandwidthViolation` — an algorithm bug, not a runtime
  condition to catch.
* **Synchrony** — messages sent in round ``r`` are delivered at the start
  of round ``r + 1``; the round counter is the complexity measure.

Two round engines share those semantics:

* The **sparse-activation engine** (default) steps a node only when it
  has mail or requested a wake-up (see the activity contract in
  :mod:`repro.congest.algorithm`), maintains termination with an
  incrementally updated done-counter instead of scanning every view each
  round, and delivers messages through persistent integer-indexed inbox
  buffers — so a pipelined broadcast that keeps only a tree frontier
  busy pays O(active) Python-call overhead per round, not O(n).
* The **dense engine** (``dense=True``) is the scan-everything
  compatibility loop: every node is stepped and polled every round.  It
  backs the sparse/dense parity suite and runs non-conforming programs.

Both engines step scheduled nodes in ascending dense-index order, so a
program honouring the activity contract produces byte-identical message
traces on either.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Union

from repro.congest.algorithm import CongestAlgorithm, NodeView
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

Vertex = Hashable


class BandwidthViolation(RuntimeError):
    """A node tried to send a message exceeding the per-edge word budget."""


#: memo for :func:`payload_words`, keyed by the (hashable) payload itself.
#: Node programs send the same few payload shapes over and over (tags,
#: small tuples of ids and weights), so repeated word counting is wasted
#: work.  Equal payloads always count the same words (the accounting is a
#: function of structure and value), so equality-based memoization is
#: sound.  Bounded: cleared wholesale if it ever grows pathological.
_WORDS_CACHE: Dict[Any, int] = {}
_WORDS_CACHE_MAX = 1 << 16


def payload_words(payload: Any) -> int:
    """Number of machine words a payload occupies on the wire.

    Accounting rules (one word = O(log n) bits, enough for a vertex id or a
    poly(n)-bounded weight, per the paper's footnote 8):

    * ``None`` — 0 words (a bare "ping" still costs 1 via the minimum below);
    * numbers, booleans, vertex ids (hashable scalars) — 1 word;
    * strings — 1 word per 8 characters (tags like "join" are 1 word);
    * tuples / lists / sets / dicts — sum over entries.

    Every non-``None`` message costs at least 1 word.  Results are
    memoized for hashable payloads (the common case: repeated small
    tuples of ids and weights).
    """
    try:
        return _WORDS_CACHE[payload]
    except KeyError:
        pass
    except TypeError:  # unhashable (lists, dicts, nested unhashables)
        return _uncached_payload_words(payload)
    words = _uncached_payload_words(payload)
    if len(_WORDS_CACHE) >= _WORDS_CACHE_MAX:
        _WORDS_CACHE.clear()
    _WORDS_CACHE[payload] = words
    return words


def _uncached_payload_words(payload: Any) -> int:
    if payload is None:
        return 0
    if isinstance(payload, bool) or isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, str):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return max(1, sum(payload_words(item) for item in payload))
    if isinstance(payload, dict):
        return max(1, sum(payload_words(k) + payload_words(v) for k, v in payload.items()))
    return 1  # opaque scalar (e.g. an enum member): one word


class SyncNetwork:
    """Synchronous executor for CONGEST node programs.

    Parameters
    ----------
    graph:
        The communication graph (also the input graph — per the model,
        every node knows its incident edges and their weights).  Either a
        :class:`WeightedGraph` or a frozen :class:`CSRGraph`; internally
        the network relabels nodes to dense indices once so the per-round
        message fan-out runs over flat lists instead of label-keyed dicts.
    words_per_message:
        Per-edge-per-round bandwidth in words.  The model allows O(log n)
        bits ≈ O(1) words; the default of 4 accommodates the paper's
        messages, which are constant-length tuples of ids and weights
        (e.g. ``(s(x), m(x) - 1)`` in §5 or ``(x_iα, R_{x_iα})`` in §4.1).
    strict_bandwidth:
        When True (default), oversized messages raise
        :class:`BandwidthViolation`.
    dense:
        When True, run the scan-everything compatibility engine (every
        node stepped and polled every round).  The default sparse engine
        requires node programs to honour the activity contract of
        :mod:`repro.congest.algorithm`.

    Counters
    --------
    ``rounds_executed``, ``messages_sent``, ``words_sent`` and
    ``active_node_rounds`` (the number of ``step`` invocations — the
    sparse engine's utilization measure) cover the current run and are
    zeroed by :meth:`reset`; the ``total_*`` counterparts accumulate over
    the network's lifetime so multi-phase constructions that reuse one
    network can report aggregate traffic.
    """

    def __init__(
        self,
        graph: Union[WeightedGraph, CSRGraph],
        words_per_message: int = 4,
        strict_bandwidth: bool = True,
        dense: bool = False,
    ) -> None:
        self.graph = graph
        self.words_per_message = words_per_message
        self.strict_bandwidth = strict_bandwidth
        self.dense = dense
        self.rounds_executed = 0
        self.messages_sent = 0
        self.words_sent = 0
        self.active_node_rounds = 0
        self.total_rounds = 0
        self.total_messages_sent = 0
        self.total_words_sent = 0
        self.total_active_node_rounds = 0
        # dense relabeling: node i of the round loop is label _verts[i]
        self._verts: List[Vertex] = list(graph.vertices())
        self._vidx: Dict[Vertex, int] = {v: i for i, v in enumerate(self._verts)}
        self._view_list: List[NodeView] = [
            NodeView(v, dict(graph.neighbor_items(v))) for v in self._verts
        ]
        for view in self._view_list:
            view._network = self
        self._views: Dict[Vertex, NodeView] = {
            v: view for v, view in zip(self._verts, self._view_list)
        }

    # ------------------------------------------------------------------
    def view(self, v: Vertex) -> NodeView:
        """The node view for vertex ``v`` (inspect state after a run)."""
        return self._views[v]

    def views(self) -> Dict[Vertex, NodeView]:
        """All node views, keyed by vertex id."""
        return dict(self._views)

    def reset(self) -> None:
        """Clear node state and per-run counters (reuse the network for a
        new run).  Lifetime ``total_*`` counters are preserved."""
        self.rounds_executed = 0
        self.messages_sent = 0
        self.words_sent = 0
        self.active_node_rounds = 0
        for view in self._views.values():
            view.state = {}
            view._wake = False

    # ------------------------------------------------------------------
    def _check_outbox(
        self, sender: Vertex, view: NodeView, outbox: Dict[Vertex, Any]
    ) -> None:
        # Validate the whole outbox before touching the counters: a raised
        # BandwidthViolation / ValueError must not leave messages_sent or
        # words_sent partially advanced by earlier messages of the same
        # outbox.
        words_total = 0
        for dst, payload in outbox.items():
            if dst not in view._incident:
                raise ValueError(
                    f"node {sender!r} tried to message non-neighbor {dst!r}"
                )
            words = payload_words(payload)
            if self.strict_bandwidth and words > self.words_per_message:
                raise BandwidthViolation(
                    f"node {sender!r} -> {dst!r}: payload {payload!r} is "
                    f"{words} words, budget is {self.words_per_message}"
                )
            words_total += words
        self.messages_sent += len(outbox)
        self.words_sent += words_total
        self.total_messages_sent += len(outbox)
        self.total_words_sent += words_total

    def run(
        self,
        algorithm: CongestAlgorithm,
        max_rounds: int = 10_000,
        quiesce: bool = True,
    ) -> int:
        """Execute ``algorithm`` until termination; return rounds executed.

        Termination: all nodes report ``is_done`` and no messages are in
        flight (when ``quiesce`` is True, the default), or ``max_rounds``
        elapses — whichever comes first.

        Raises
        ------
        RuntimeError
            If ``max_rounds`` elapses before termination (runaway
            algorithms are bugs; the paper's algorithms all have explicit
            round bounds), or — sparse engine only — if the run stalls:
            some node is not done yet no node has mail, a wake request or
            ``always_active`` scheduling, so no future round can change
            anything.  A stall means the program violates the activity
            contract; ``dense=True`` reproduces the legacy behaviour
            (spinning to ``max_rounds``).
        """
        # Lifetime total_* counters before/after bracket exactly this
        # run's traffic (per-run counters may carry state when reset()
        # was skipped), so the fold into the process-wide registry is a
        # clean delta per run.
        rounds0 = self.total_rounds
        messages0 = self.total_messages_sent
        words0 = self.total_words_sent
        active0 = self.total_active_node_rounds
        engine = "dense" if self.dense else "sparse"
        with obs_trace.span(
            "congest.run", algorithm=type(algorithm).__name__, engine=engine
        ):
            if self.dense:
                rounds = self._run_dense(algorithm, max_rounds, quiesce)
            else:
                rounds = self._run_sparse(algorithm, max_rounds, quiesce)
        reg = obs_metrics.registry()
        reg.counter("congest.rounds.executed").inc(self.total_rounds - rounds0)
        reg.counter("congest.messages.sent").inc(
            self.total_messages_sent - messages0
        )
        reg.counter("congest.words.sent").inc(self.total_words_sent - words0)
        reg.counter("congest.active_node.rounds").inc(
            self.total_active_node_rounds - active0
        )
        for view in self._view_list:
            algorithm.finish(view)
        return rounds

    # ------------------------------------------------------------------
    def _run_sparse(
        self, algorithm: CongestAlgorithm, max_rounds: int, quiesce: bool
    ) -> int:
        n = len(self._verts)
        verts, vidx, view_list = self._verts, self._vidx, self._view_list
        is_done = algorithm.is_done
        step = algorithm.step
        always = bool(algorithm.always_active)
        # per-round utilization gauge (last round's level + observed peak)
        active_gauge = obs_metrics.gauge("congest.network.active_nodes")

        # Persistent integer-indexed inbox buffers, double-buffered: nodes
        # read round-r mail from ``cur_box`` while round-(r+1) mail lands
        # in ``nxt_box``.  Only mailed slots are ever reallocated, so the
        # per-round allocation cost is O(active), not O(n).
        cur_box: List[Dict[Vertex, Any]] = [{} for _ in range(n)]
        nxt_box: List[Dict[Vertex, Any]] = [{} for _ in range(n)]
        cur_mail: List[int] = []  # indices holding mail for the current round
        nxt_mail: List[int] = []
        nxt_flag = bytearray(n)  # membership mask for nxt_mail

        done = bytearray(n)
        done_count = 0
        wake: List[int] = []  # indices that requested a wake for next round
        wake_flag = bytearray(n)

        # Round 0: setup.
        for i in range(n):
            view = view_list[i]
            view._wake = False
            outbox = algorithm.setup(view) or {}
            self._check_outbox(verts[i], view, outbox)
            for dst, payload in outbox.items():
                j = vidx[dst]
                nxt_box[j][verts[i]] = payload
                if not nxt_flag[j]:
                    nxt_flag[j] = 1
                    nxt_mail.append(j)
            if view._wake:
                view._wake = False
                if not wake_flag[i]:
                    wake_flag[i] = 1
                    wake.append(i)
            if is_done(view):
                done[i] = 1
                done_count += 1
        self.rounds_executed = 1
        self.total_rounds += 1

        while True:
            all_done = done_count == n
            if quiesce and all_done and not nxt_mail:
                break
            if self.rounds_executed >= max_rounds:
                if all_done and not nxt_mail:
                    break
                raise RuntimeError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )
            if quiesce and not nxt_mail and not wake and not always:
                # Some node is not done, but nothing is scheduled: no
                # future round can change anything.  Fail fast instead of
                # spinning to max_rounds like the dense engine would.
                stalled = n - done_count
                raise RuntimeError(
                    f"sparse engine stalled after {self.rounds_executed} "
                    f"round(s): {stalled} node(s) not done but no mail, "
                    f"wake requests or always_active scheduling — the node "
                    f"program violates the activity contract (see "
                    f"repro.congest.algorithm; dense=True reproduces the "
                    f"legacy scan-everything behaviour)"
                )

            # Swap buffers: last round's outgoing mail becomes delivery.
            cur_box, nxt_box = nxt_box, cur_box
            cur_mail, nxt_mail = nxt_mail, cur_mail
            nxt_mail.clear()
            for j in cur_mail:
                nxt_flag[j] = 0

            cur_wake, wake = wake, []
            for i in cur_wake:
                wake_flag[i] = 0

            if always:
                schedule: Any = range(n)
            elif cur_wake:
                merged = set(cur_mail)
                merged.update(cur_wake)
                schedule = sorted(merged)
            else:
                schedule = sorted(cur_mail)

            active = 0
            for i in schedule:
                view = view_list[i]
                inbox = cur_box[i]
                outbox = step(view, inbox) or {}
                if inbox:
                    cur_box[i] = {}
                if outbox:
                    self._check_outbox(verts[i], view, outbox)
                    for dst, payload in outbox.items():
                        j = vidx[dst]
                        nxt_box[j][verts[i]] = payload
                        if not nxt_flag[j]:
                            nxt_flag[j] = 1
                            nxt_mail.append(j)
                if view._wake:
                    view._wake = False
                    if not wake_flag[i]:
                        wake_flag[i] = 1
                        wake.append(i)
                now_done = is_done(view)
                if now_done != bool(done[i]):
                    done[i] = 1 if now_done else 0
                    done_count += 1 if now_done else -1
                active += 1
            self.active_node_rounds += active
            self.total_active_node_rounds += active
            active_gauge.set(active)
            self.rounds_executed += 1
            self.total_rounds += 1
        return self.rounds_executed

    # ------------------------------------------------------------------
    def _run_dense(
        self, algorithm: CongestAlgorithm, max_rounds: int, quiesce: bool
    ) -> int:
        # The legacy scan-everything loop: every node is stepped and
        # polled every round.  Kept as the parity reference and for
        # programs that predate the activity contract.
        n = len(self._verts)
        verts, vidx, view_list = self._verts, self._vidx, self._view_list
        active_gauge = obs_metrics.gauge("congest.network.active_nodes")
        inflight: List[Dict[Vertex, Any]] = [{} for _ in range(n)]

        # Round 0: setup.
        any_message = False
        for i in range(n):
            view = view_list[i]
            view._wake = False
            outbox = algorithm.setup(view) or {}
            sender = verts[i]
            self._check_outbox(sender, view, outbox)
            for dst, payload in outbox.items():
                inflight[vidx[dst]][sender] = payload
                any_message = True
        self.rounds_executed = 1
        self.total_rounds += 1

        is_done = algorithm.is_done
        step = algorithm.step
        while True:
            all_done = all(is_done(view) for view in view_list)
            if quiesce and all_done and not any_message:
                break
            if self.rounds_executed >= max_rounds:
                if all_done and not any_message:
                    break
                raise RuntimeError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )
            delivery = inflight
            inflight = [{} for _ in range(n)]
            any_message = False
            for i in range(n):
                view = view_list[i]
                view._wake = False  # wake requests are moot when dense
                outbox = step(view, delivery[i]) or {}
                if outbox:
                    sender = verts[i]
                    self._check_outbox(sender, view, outbox)
                    for dst, payload in outbox.items():
                        inflight[vidx[dst]][sender] = payload
                        any_message = True
            self.active_node_rounds += n
            self.total_active_node_rounds += n
            active_gauge.set(n)  # the dense engine steps everyone
            self.rounds_executed += 1
            self.total_rounds += 1
        return self.rounds_executed

    def __repr__(self) -> str:
        engine = "dense" if self.dense else "sparse"
        return (
            f"SyncNetwork(n={self.graph.n}, m={self.graph.m}, "
            f"engine={engine}, rounds={self.rounds_executed}, "
            f"msgs={self.messages_sent})"
        )
