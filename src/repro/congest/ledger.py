"""Round accounting for composed constructions.

The paper's constructions (§3–§7) are built from a handful of primitives —
fragment-local computations, Lemma-1 broadcasts, approximate SPTs, LE-list
computations — each with a known round cost.  Rather than simulate every
phase message-by-message (prohibitive in Python for the n where the scaling
is visible), the composed algorithms *charge* each phase to a
:class:`RoundLedger` at exactly the cost the paper analyses, computed from
measured quantities (actual message counts, actual fragment hop-diameters,
actual BFS depth), not from asymptotic formulas.

The ledger keeps a per-phase breakdown so benchmarks can report where the
rounds go (e.g. for the §5 spanner: MST + traversal vs. per-bucket
simulation vs. broadcasts).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class RoundLedger:
    """Accumulates rounds charged by named phases."""

    def __init__(self) -> None:
        self._entries: List[Tuple[str, int]] = []

    def charge(self, phase: str, rounds: int | float) -> int:
        """Charge ``rounds`` (>= 0) to ``phase``; returns the charged amount."""
        r = int(round(rounds))
        if r < 0:
            raise ValueError(f"cannot charge negative rounds: {rounds!r}")
        self._entries.append((phase, r))
        return r

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        """Absorb another ledger's entries, optionally namespacing them."""
        for phase, rounds in other._entries:
            self._entries.append((prefix + phase, rounds))

    @property
    def total(self) -> int:
        """Total rounds across all phases."""
        return sum(r for _, r in self._entries)

    def by_phase(self) -> Dict[str, int]:
        """Rounds per phase name (summed over repeated charges)."""
        out: Dict[str, int] = {}
        for phase, rounds in self._entries:
            out[phase] = out.get(phase, 0) + rounds
        return out

    def entries(self) -> List[Tuple[str, int]]:
        """The raw charge log, in order."""
        return list(self._entries)

    def __repr__(self) -> str:
        return f"RoundLedger(total={self.total}, phases={len(self.by_phase())})"
