"""Keyed-max convergecast — the §5 case-1 "convergecast phase" primitive.

In the §5 simulation every vertex holds, per cluster A, the best message
``(s(A), m(A))`` it knows; the maxima must reach the root with each tree
vertex forwarding only one message per cluster ("Each vertex v that
received all messages from its children in τ for a cluster A, will only
forward the one with maximum m(A)").

The implementation streams entries **in ascending key order**: every
node emits one ``(key, value-pair)`` per round; a node may emit key k
once every child's stream has advanced past k (so all contributions for
k have been merged), which pipelines the whole aggregate in
``O(#keys + height)`` rounds.  A sentinel marks end-of-stream.

Keys must be sortable and values comparable (ties broken by the full
value tuple, deterministic).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.bfs import BFSTree
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable

#: end-of-stream marker (1 word)
_SENTINEL = "$end"


class KeyedMaxConvergecast(CongestAlgorithm):
    """Gather, for every key, the maximum value over all vertices.

    Parameters
    ----------
    tree:
        The BFS tree τ to aggregate over.
    inputs:
        Per-vertex ``{key: value}`` contributions (values are compared
        with ``>``; they may be tuples, e.g. ``(m(A), s(A))``).

    State written: at the root, ``agg_result`` — the merged dict.
    """

    def __init__(self, tree: BFSTree, inputs: Dict[Vertex, Dict[Any, Any]]) -> None:
        self.tree = tree
        self.inputs = inputs
        self._children = tree.children()

    def setup(self, node: NodeView) -> Outbox:
        node.state["agg_pending"] = dict(self.inputs.get(node.id, {}))
        # smallest key each child's stream has NOT yet passed (None=done)
        node.state["agg_child_front"] = {
            c: False for c in self._children[node.id]
        }  # False = stream not finished
        node.state["agg_child_last"] = {c: None for c in self._children[node.id]}
        node.state["agg_done"] = False
        if node.id == self.tree.root:
            node.state["agg_result"] = {}
        return self._emit(node)

    def _ready_key(self, node: NodeView) -> Optional[Any]:
        """Smallest pending key all child streams have passed."""
        pending = node.state["agg_pending"]
        if not pending:
            return None
        k = min(pending, key=repr)
        for c, finished in node.state["agg_child_front"].items():
            if finished:
                continue
            last = node.state["agg_child_last"][c]
            if last is None or repr(last) < repr(k):
                return None  # child may still contribute to k
        return k

    def _emit(self, node: NodeView) -> Outbox:
        if node.state["agg_done"]:
            return {}
        k = self._ready_key(node)
        parent = self.tree.parent[node.id]
        if k is not None:
            value = node.state["agg_pending"].pop(k)
            if node.id == self.tree.root:
                node.state["agg_result"][k] = value
                return self._emit(node)  # local: root drains freely
            # activity contract: another key may become emittable (or the
            # end-of-stream sentinel due) next round without new mail
            node.request_wake()
            return {parent: (k, value)}
        # done when nothing pending and every child finished
        if not node.state["agg_pending"] and all(
            node.state["agg_child_front"].values()
        ):
            node.state["agg_done"] = True
            if parent is not None:
                return {parent: _SENTINEL}
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        for child, payload in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            if payload == _SENTINEL:
                node.state["agg_child_front"][child] = True
                continue
            k, value = payload
            node.state["agg_child_last"][child] = k
            pending = node.state["agg_pending"]
            if k not in pending or value > pending[k]:
                pending[k] = value
        return self._emit(node)

    def is_done(self, node: NodeView) -> bool:
        return node.state.get("agg_done", False)


def keyed_max_convergecast(
    graph: WeightedGraph,
    tree: BFSTree,
    inputs: Dict[Vertex, Dict[Any, Any]],
    network: Optional[SyncNetwork] = None,
) -> Tuple[Dict[Any, Any], int]:
    """Run :class:`KeyedMaxConvergecast`; return (merged dict, rounds)."""
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(KeyedMaxConvergecast(tree, inputs))
    return dict(net.view(tree.root).state["agg_result"]), rounds
