"""Distributed BFS tree (the tree τ of §2).

Every construction in the paper assumes a BFS tree of the communication
graph is available ("Since all our algorithms have a larger running time,
we always assume that we have such a tree at our disposal", §2).  This
module builds it two ways:

* :class:`DistributedBFS` — an honest CONGEST node program (flooding),
  executed on :class:`~repro.congest.simulator.SyncNetwork`; takes
  ``depth + O(1)`` measured rounds;
* :func:`build_bfs_tree` — the convenience entry point used by the rest of
  the library: runs the node program and packages the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable


@dataclass
class BFSTree:
    """A rooted BFS tree of the communication graph.

    Attributes
    ----------
    root:
        The root vertex (usually the paper's ``rt``).
    parent:
        Map vertex → parent (root maps to ``None``).
    depth:
        Map vertex → hop distance from the root.
    rounds:
        Rounds the distributed construction took.
    """

    root: Vertex
    parent: Dict[Vertex, Optional[Vertex]]
    depth: Dict[Vertex, int]
    rounds: int = 0

    @property
    def height(self) -> int:
        """Maximum depth — the pipelining latency used by Lemma 1."""
        return max(self.depth.values()) if self.depth else 0

    def children(self) -> Dict[Vertex, List[Vertex]]:
        """Map vertex → list of children (derived from ``parent``)."""
        out: Dict[Vertex, List[Vertex]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p is not None:
                out[p].append(v)
        return out

    def path_to_root(self, v: Vertex) -> List[Vertex]:
        """Vertices from ``v`` up to (and including) the root."""
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path


class DistributedBFS(CongestAlgorithm):
    """Flooding BFS from a designated root.

    Round r delivers the frontier at hop distance r.  Each message is a
    single word (the sender's depth).  Nodes adopt the first sender as
    parent, ties broken by id order — deterministic, per the model.

    Purely mail-driven (activity contract): only the flood frontier is
    ever stepped by the sparse engine, so a BFS over n nodes costs
    O(n + m) node-steps total instead of O(n · depth).
    """

    def __init__(self, root: Vertex) -> None:
        self.root = root

    def setup(self, node: NodeView) -> Outbox:
        if node.id == self.root:
            node.state["bfs_depth"] = 0
            node.state["bfs_parent"] = None
            return {nbr: 0 for nbr in node.neighbors}
        node.state["bfs_depth"] = None
        node.state["bfs_parent"] = None
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        if node.state["bfs_depth"] is not None or not inbox:
            return {}
        parent = min(inbox, key=repr)  # deterministic tie-break
        node.state["bfs_parent"] = parent
        node.state["bfs_depth"] = inbox[parent] + 1
        return {nbr: node.state["bfs_depth"] for nbr in node.neighbors if nbr != parent}

    def is_done(self, node: NodeView) -> bool:
        # termination is by quiescence: once the flood drains, unreached
        # nodes (disconnected graph) are reported by build_bfs_tree
        return True


def build_bfs_tree(
    graph: WeightedGraph, root: Vertex, network: Optional[SyncNetwork] = None
) -> BFSTree:
    """Run :class:`DistributedBFS` on ``graph`` and package the tree.

    Raises
    ------
    ValueError
        If the graph is disconnected (some node never hears the flood).
    """
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(DistributedBFS(root))
    parent: Dict[Vertex, Optional[Vertex]] = {}
    depth: Dict[Vertex, int] = {}
    for v in graph.vertices():
        state = net.view(v).state
        if state.get("bfs_depth") is None:
            raise ValueError(f"graph is disconnected: {v!r} unreached from {root!r}")
        parent[v] = state["bfs_parent"]
        depth[v] = state["bfs_depth"]
    return BFSTree(root=root, parent=parent, depth=depth, rounds=rounds)
