"""Synchronous CONGEST-model simulator.

The paper's model (§2): every vertex hosts a processor; computation
proceeds in synchronous rounds; in each round every vertex may send one
message of O(log n) bits to each neighbour; local computation is free;
complexity = number of rounds.

This package provides:

* :class:`~repro.congest.simulator.SyncNetwork` — a faithful synchronous
  executor with per-edge bandwidth enforcement and round counting; its
  default sparse-activation engine steps only nodes with mail or a
  requested wake-up (``dense=True`` retains the scan-everything loop);
* :class:`~repro.congest.algorithm.CongestAlgorithm` — the node-program
  interface (purely local knowledge), including the activity contract
  the sparse engine relies on;
* :mod:`~repro.congest.bfs` — a natively-simulated BFS-tree construction
  (the tree τ all the paper's constructions assume, §2);
* :mod:`~repro.congest.primitives` — Lemma-1 broadcast / convergecast cost
  accounting and helpers;
* :class:`~repro.congest.ledger.RoundLedger` — the round-accounting object
  composed constructions use to charge primitive phases at the cost the
  paper analyses.
"""

from repro.congest.algorithm import CongestAlgorithm
from repro.congest.simulator import (
    BandwidthViolation,
    SyncNetwork,
    payload_words,
)
from repro.congest.ledger import RoundLedger
from repro.congest.bfs import BFSTree, build_bfs_tree, DistributedBFS
from repro.congest.primitives import (
    broadcast_rounds,
    convergecast_rounds,
    pipelined_aggregate_rounds,
)
from repro.congest.pipeline import (
    PipelinedBroadcast,
    PipelinedConvergecast,
    broadcast_messages,
    convergecast_messages,
)

__all__ = [
    "CongestAlgorithm",
    "SyncNetwork",
    "BandwidthViolation",
    "payload_words",
    "RoundLedger",
    "BFSTree",
    "build_bfs_tree",
    "DistributedBFS",
    "broadcast_rounds",
    "convergecast_rounds",
    "pipelined_aggregate_rounds",
    "PipelinedBroadcast",
    "PipelinedConvergecast",
    "broadcast_messages",
    "convergecast_messages",
]
