"""Node-program interface for the CONGEST simulator.

An algorithm is written from the point of view of a single node.  The
simulator hands each node a :class:`NodeView` exposing only *local*
knowledge — its id, its incident edges and their weights, and a private
state dict — plus whatever global constants the algorithm was constructed
with (n, k, ε, ... are legitimately global in the CONGEST model).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Mapping, Tuple

Vertex = Hashable


class NodeView:
    """Local view a node program gets: id, incident edges, private state.

    Instances are created by :class:`~repro.congest.simulator.SyncNetwork`;
    algorithms must not construct them directly.
    """

    __slots__ = ("id", "_incident", "state")

    def __init__(self, uid: Vertex, incident: Dict[Vertex, float]) -> None:
        self.id = uid
        self._incident = incident
        self.state: Dict[str, Any] = {}

    @property
    def neighbors(self) -> List[Vertex]:
        """Ids of adjacent nodes (local knowledge: incident edges)."""
        return list(self._incident)

    def edge_weight(self, neighbor: Vertex) -> float:
        """Weight of the incident edge to ``neighbor``."""
        return self._incident[neighbor]

    def incident_edges(self) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbor, weight)`` pairs."""
        return iter(self._incident.items())

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self._incident)

    def __repr__(self) -> str:
        return f"NodeView({self.id!r}, deg={self.degree})"


# Outgoing messages: neighbor id -> payload (any picklable value whose word
# count fits the network's per-message budget).
Outbox = Dict[Vertex, Any]
# Inbox: neighbor id -> payload received from that neighbor this round.
Inbox = Mapping[Vertex, Any]


class CongestAlgorithm:
    """Base class for synchronous node programs.

    Lifecycle per node:

    1. ``setup(node)`` — once, before round 0; returns the round-0 outbox.
    2. ``step(node, inbox)`` — every subsequent round; receives the messages
       sent to this node in the previous round and returns the outbox.
    3. ``is_done(node)`` — polled after every round; the simulation stops
       when every node is done *and* no messages are in flight, or when the
       algorithm's ``max_rounds`` elapse.
    4. ``finish(node)`` — once, after the final round (collect outputs).

    Subclasses override what they need; the defaults send nothing and
    finish immediately.
    """

    def setup(self, node: NodeView) -> Outbox:
        """Initialize local state; return messages for round 0."""
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        """One synchronous round: consume the inbox, produce the outbox."""
        return {}

    def is_done(self, node: NodeView) -> bool:
        """True when this node has terminated (default: immediately)."""
        return True

    def finish(self, node: NodeView) -> None:
        """Hook called once when the simulation stops."""
