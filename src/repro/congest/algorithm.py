"""Node-program interface for the CONGEST simulator.

An algorithm is written from the point of view of a single node.  The
simulator hands each node a :class:`NodeView` exposing only *local*
knowledge — its id, its incident edges and their weights, and a private
state dict — plus whatever global constants the algorithm was constructed
with (n, k, ε, ... are legitimately global in the CONGEST model).

The activity contract
---------------------

The sparse-activation engine (the default in
:class:`~repro.congest.simulator.SyncNetwork`) only *steps* a node in
rounds where it has something to do.  Node programs therefore promise:

* **Idle unless messaged** — a node's behaviour between two deliveries is
  a no-op: ``step(node, {})`` returns no messages and changes no state
  the engine can observe (``is_done`` in particular must not flip while
  the node sleeps).
* **Wake requests** — a node with *local* pending work (a queue it drains
  one message per round, a key stream it advances) calls
  :meth:`NodeView.request_wake` before returning from ``setup``/``step``;
  the engine then steps it in the next round even without mail.  Wake
  requests are one-shot — re-request every round the work persists.
* **Global rounds** — programs that meter themselves by the *round
  number* (hop budgets, fixed-length phases) read :attr:`NodeView.round`
  instead of counting their own step invocations: a sleeping node is not
  stepped, so a local counter undercounts.
* **Polling escape hatch** — an algorithm that genuinely needs every
  node stepped every round sets the class attribute
  :attr:`CongestAlgorithm.always_active`; the engine then schedules all
  nodes each round (the dense behaviour) while keeping the incremental
  termination accounting.

Programs honouring the contract behave identically — round-for-round
and message-for-message — under the sparse and dense engines; the
parity suite in ``tests/test_congest_parity.py`` asserts exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, Mapping, Tuple

Vertex = Hashable


class NodeView:
    """Local view a node program gets: id, incident edges, private state.

    Instances are created by :class:`~repro.congest.simulator.SyncNetwork`;
    algorithms must not construct them directly.
    """

    __slots__ = ("id", "_incident", "_neighbors", "state", "_wake", "_network")

    def __init__(self, uid: Vertex, incident: Dict[Vertex, float]) -> None:
        self.id = uid
        self._incident = incident
        self._neighbors: Tuple[Vertex, ...] = tuple(incident)
        self.state: Dict[str, Any] = {}
        self._wake = False
        self._network = None  # set by SyncNetwork; exposes the round counter

    @property
    def neighbors(self) -> Tuple[Vertex, ...]:
        """Ids of adjacent nodes (local knowledge: incident edges).

        Cached as a tuple — node programs call this inside per-round
        loops, and the incident-edge set never changes during a run.
        """
        return self._neighbors

    def edge_weight(self, neighbor: Vertex) -> float:
        """Weight of the incident edge to ``neighbor``."""
        return self._incident[neighbor]

    def incident_edges(self) -> Iterator[Tuple[Vertex, float]]:
        """Iterate over ``(neighbor, weight)`` pairs."""
        return iter(self._incident.items())

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self._incident)

    @property
    def round(self) -> int:
        """The network's current round number (1 in the first step round).

        Synchronous rounds are globally known in the CONGEST model, so a
        node may legitimately meter itself by this counter — and under
        the sparse engine it *must* use this rather than counting its own
        ``step`` invocations (sleeping rounds are not delivered).
        """
        return self._network.rounds_executed if self._network is not None else 0

    def request_wake(self) -> None:
        """Ask to be stepped next round even if no mail arrives.

        One-shot: the request covers only the next round; a program with
        ongoing local work re-requests on every step.  No-op under the
        dense engine (every node is stepped anyway).
        """
        self._wake = True

    def __repr__(self) -> str:
        return f"NodeView({self.id!r}, deg={self.degree})"


# Outgoing messages: neighbor id -> payload (any picklable value whose word
# count fits the network's per-message budget).
Outbox = Dict[Vertex, Any]
# Inbox: neighbor id -> payload received from that neighbor this round.
Inbox = Mapping[Vertex, Any]


class CongestAlgorithm:
    """Base class for synchronous node programs.

    Lifecycle per node:

    1. ``setup(node)`` — once, before round 0; returns the round-0 outbox.
    2. ``step(node, inbox)`` — in every round where the node is *active*
       (it has mail, requested a wake, or the algorithm is
       :attr:`always_active`); receives the messages sent to this node in
       the previous round and returns the outbox.
    3. ``is_done(node)`` — evaluated after ``setup`` and after each
       ``step`` of that node (not every round — see the activity contract
       in the module docstring); the simulation stops when every node is
       done *and* no messages are in flight, or when ``max_rounds``
       elapse.
    4. ``finish(node)`` — once, after the final round (collect outputs).

    Subclasses override what they need; the defaults send nothing and
    finish immediately.
    """

    #: When True the engine steps every node every round (polling
    #: programs); the default is idle-unless-messaged.
    always_active: bool = False

    def setup(self, node: NodeView) -> Outbox:
        """Initialize local state; return messages for round 0."""
        return {}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        """One synchronous round: consume the inbox, produce the outbox."""
        return {}

    def is_done(self, node: NodeView) -> bool:
        """True when this node has terminated (default: immediately)."""
        return True

    def finish(self, node: NodeView) -> None:
        """Hook called once when the simulation stops."""
