"""Pipelined broadcast / convergecast as real CONGEST node programs.

Lemma 1 of the paper is used everywhere as a *cost model* (``M + D``
rounds for M messages).  This module implements the underlying algorithms
natively on the simulator so the model can be validated empirically:

* :class:`PipelinedBroadcast` — k source messages held at arbitrary
  vertices are flooded through a BFS tree; every vertex receives all of
  them within ``M + 2·height`` measured rounds (up-cast to the root, then
  down-cast, one message per tree edge per round).
* :class:`PipelinedConvergecast` — the up-cast half: all messages reach
  the root within ``M + height`` rounds.

The test-suite runs both and asserts the measured rounds against the
Lemma-1 formula — closing the loop between the ledger charges used by the
composed constructions and the real message-level behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.bfs import BFSTree
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import WeightedGraph

Vertex = Hashable


class PipelinedConvergecast(CongestAlgorithm):
    """Gather all source messages at the BFS root, pipelined.

    Each vertex starts with a (possibly empty) list of one-word messages;
    every round it forwards one not-yet-forwarded message to its BFS
    parent.  With M total messages the root holds all of them after at
    most ``M + height`` rounds — the Lemma-1 convergecast bound.

    State written: ``cc_received`` (at the root: every message, in
    arrival order).
    """

    def __init__(self, tree: BFSTree, payloads: Dict[Vertex, List[Any]]) -> None:
        self.tree = tree
        self.payloads = payloads

    def setup(self, node: NodeView) -> Outbox:
        if node.id == self.tree.root:
            # the root's own messages are already "gathered"
            node.state["cc_queue"] = []
            node.state["cc_received"] = list(self.payloads.get(node.id, []))
        else:
            node.state["cc_queue"] = list(self.payloads.get(node.id, []))
            node.state["cc_received"] = []
        return self._emit(node)

    def _emit(self, node: NodeView) -> Outbox:
        parent = self.tree.parent[node.id]
        queue = node.state["cc_queue"]
        if parent is None or not queue:
            return {}
        out = {parent: queue.pop(0)}
        if queue:
            # activity contract: messages still queued locally — ask to be
            # stepped next round even if no new mail arrives
            node.request_wake()
        return out

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        for _, payload in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            if node.id == self.tree.root:
                node.state["cc_received"].append(payload)
            else:
                node.state["cc_queue"].append(payload)
        return self._emit(node)

    def is_done(self, node: NodeView) -> bool:
        return not node.state.get("cc_queue")


class PipelinedBroadcast(CongestAlgorithm):
    """All-to-all dissemination of M messages over the BFS tree.

    Phase 1 converge-casts every message to the root; phase 2 streams
    them down the tree, one per edge per round.  Every vertex ends with
    all M messages in ``bc_received``; measured rounds ≤ M + 2·height +
    O(1) — Lemma 1 up to the constant.
    """

    def __init__(self, tree: BFSTree, payloads: Dict[Vertex, List[Any]]) -> None:
        self.tree = tree
        self.payloads = payloads
        self.total = sum(len(v) for v in payloads.values())
        self._children = tree.children()

    def setup(self, node: NodeView) -> Outbox:
        node.state["bc_up_queue"] = list(self.payloads.get(node.id, []))
        node.state["bc_down_queue"] = []
        node.state["bc_received"] = []
        if node.id == self.tree.root:
            mine = list(self.payloads.get(node.id, []))
            node.state["bc_received"] = list(mine)
            node.state["bc_down_queue"] = list(mine)
            node.state["bc_up_queue"] = []
        return self._emit(node)

    def _emit(self, node: NodeView) -> Outbox:
        out: Outbox = {}
        parent = self.tree.parent[node.id]
        if parent is not None and node.state["bc_up_queue"]:
            out[parent] = ("u", node.state["bc_up_queue"].pop(0))
        if node.state["bc_down_queue"]:
            payload = node.state["bc_down_queue"].pop(0)
            for child in self._children[node.id]:
                # one message per tree edge per round: same payload to all
                # children simultaneously (distinct edges)
                out[child] = ("d", payload)
        if node.state["bc_up_queue"] or node.state["bc_down_queue"]:
            # activity contract: local queues still draining
            node.request_wake()
        return out

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        for _, (direction, payload) in sorted(
            inbox.items(), key=lambda kv: repr(kv[0])
        ):
            if direction == "u":
                if node.id == self.tree.root:
                    node.state["bc_received"].append(payload)
                    node.state["bc_down_queue"].append(payload)
                else:
                    node.state["bc_up_queue"].append(payload)
            else:
                node.state["bc_received"].append(payload)
                node.state["bc_down_queue"].append(payload)
        return self._emit(node)

    def is_done(self, node: NodeView) -> bool:
        return (
            not node.state.get("bc_up_queue")
            and not node.state.get("bc_down_queue")
            and len(node.state.get("bc_received", [])) >= self.total
        )


def broadcast_messages(
    graph: WeightedGraph,
    tree: BFSTree,
    payloads: Dict[Vertex, List[Any]],
    network: Optional[SyncNetwork] = None,
) -> Tuple[Dict[Vertex, List[Any]], int]:
    """Run :class:`PipelinedBroadcast`; return (per-vertex inboxes, rounds)."""
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(PipelinedBroadcast(tree, payloads))
    received = {v: list(net.view(v).state["bc_received"]) for v in graph.vertices()}
    return received, rounds


def convergecast_messages(
    graph: WeightedGraph,
    tree: BFSTree,
    payloads: Dict[Vertex, List[Any]],
    network: Optional[SyncNetwork] = None,
) -> Tuple[List[Any], int]:
    """Run :class:`PipelinedConvergecast`; return (messages at root, rounds)."""
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(PipelinedConvergecast(tree, payloads))
    return list(net.view(tree.root).state["cc_received"]), rounds
