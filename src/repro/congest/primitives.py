"""Global communication primitives and their round costs (Lemma 1).

Lemma 1 of the paper: if every vertex ``v`` holds ``m_v`` messages of O(1)
words each, ``M = Σ m_v`` in total, then all vertices can receive all
messages within ``O(M + D)`` rounds — standard pipelined broadcast on the
BFS tree τ [Pel00].  Convergecast (all messages to the root) has the same
cost, as does a pipelined aggregate (max/sum per key) when the number of
distinct keys bounds the per-node forwarding load.

Composed constructions call these helpers to compute the *exact* charge for
each Lemma-1 invocation from measured quantities (actual message count M,
actual BFS-tree height), then record it on their
:class:`~repro.congest.ledger.RoundLedger`.
"""

from __future__ import annotations


def broadcast_rounds(num_messages: int, tree_height: int) -> int:
    """Rounds for all vertices to receive ``num_messages`` pipelined words.

    Cost model: the messages stream down the BFS tree; latency is the tree
    height, bandwidth one message per edge per round, so M + height rounds
    (the additive constant of Lemma 1's O(·) is taken as 1 throughout —
    uniform across all constructions, so relative comparisons are fair).
    """
    if num_messages < 0 or tree_height < 0:
        raise ValueError("negative arguments")
    return num_messages + tree_height


def convergecast_rounds(num_messages: int, tree_height: int) -> int:
    """Rounds to gather ``num_messages`` words at the root (same as broadcast)."""
    return broadcast_rounds(num_messages, tree_height)


def pipelined_aggregate_rounds(num_keys: int, tree_height: int) -> int:
    """Rounds for a keyed aggregate (e.g. per-cluster max) convergecast.

    Each tree node forwards at most one message per key (it merges
    duplicates locally, as in the §5 convergecast phase), so the pipeline
    drains in ``num_keys + height`` rounds.
    """
    return broadcast_rounds(num_keys, tree_height)


def local_phase_rounds(max_hop_diameter: int) -> int:
    """Rounds for a phase that runs inside fragments/intervals in parallel.

    Fragment-local computations (tour lengths in §3.2, interval scans in
    §4.1, intra-cluster convergecasts in §5 case 2) complete in as many
    rounds as the largest fragment's hop-diameter.
    """
    if max_hop_diameter < 0:
        raise ValueError("negative hop diameter")
    return max(1, max_hop_diameter)
