"""Light (1+ε)-spanners for doubling graphs — §7 (Theorem 5).

For every distance scale ``Δ = (1+ε)^i`` up to the MST weight:

1. build a net whose covering radius is ``ε·Δ/2`` (via Theorem 3 with
   δ = 1/2, i.e. a ``(εΔ/2, 2εΔ/9)``-net — our net parametrization with
   ``Δ_net = εΔ/3``), and
2. from every net point run a ``2Δ``-bounded (1+ε)-approximate
   shortest-path exploration, adding to the spanner the *actual path*
   (path-reporting, per the [EN16] hopsets) to every other net point
   discovered within the bound.

Guarantees: stretch ``1 + 30ε`` for ε < 1/8 (the paper's induction with
its constant c = 30), lightness ``ε^{−O(ddim)}·log n`` by the packing
property (Lemma 6) plus Claim 7, sparsity ``n·ε^{−O(ddim)}·log n``, and
``(√n + D)·ε^{−Õ(√log n + ddim)}`` rounds — each scale charges the net
construction, the [EN16] hopset, and the overlapped bounded explorations.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.ledger import RoundLedger
from repro.core.nets import build_net, greedy_net
from repro.determinism import ensure_rng
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.hopsets.hopset import bounded_exploration_cost, en16_round_cost
from repro.mst.kruskal import kruskal_mst
from repro.spt.approx_spt import bounded_approx_spt


@dataclass
class ScaleStats:
    """Per-scale diagnostics for the benchmarks."""

    index: int
    scale: float  # Δ = (1+ε)^i
    net_size: int
    paths_added: int
    max_overlap: int  # max explorations any vertex participated in
    rounds: int


@dataclass
class DoublingSpannerResult:
    """Output of :func:`doubling_spanner`.

    Attributes
    ----------
    spanner:
        The (1+O(ε))-spanner (a subgraph: hopset paths are expanded).
    stretch_bound:
        The guarantee 1 + 30ε (paper's constant, valid for ε < 1/8).
    scales:
        Per-scale statistics.
    ledger:
        Round accounting (Theorem 5 target:
        (√n + D)·ε^{−Õ(√log n + ddim)}).
    """

    spanner: WeightedGraph
    eps: float
    stretch_bound: float
    scales: List[ScaleStats]
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        """Total charged CONGEST rounds."""
        return self.ledger.total


def _bounded_exploration(
    graph: "WeightedGraph | CSRGraph", source: Vertex, radius: float, eps: float
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Single-source ``radius``-bounded (1+ε)-approximate exploration.

    Priorities use weights rounded up to powers of (1+ε) (the same
    concrete approximation as everywhere in the library); pruning uses
    true accumulated weight so reported paths genuinely fit the bound.
    The single-source case of :func:`~repro.spt.approx_spt.bounded_approx_spt`
    (origin tracking discarded), which runs over the graph's CSR index
    arrays — §7 launches one exploration per net point per scale, so this
    is the construction's hottest code.
    """
    csr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    true_dist, parent, _origin = bounded_approx_spt(csr, [source], radius, eps)
    return true_dist, parent


def doubling_spanner(
    graph: WeightedGraph,
    eps: float,
    rng: Optional[random.Random] = None,
    root: Optional[Vertex] = None,
    net_method: str = "distributed",
) -> DoublingSpannerResult:
    """Build the §7 light (1 + 30ε)-spanner.

    Parameters
    ----------
    eps:
        Scale parameter, in (0, 1/8) for the paper's stretch constant.
    net_method:
        ``"distributed"`` — the Theorem-3 net construction (full round
        accounting); ``"greedy"`` — the sequential greedy net (same
        covering/separation guarantees; use for larger experiment sizes,
        net rounds then charged at the Theorem-3 formula directly).

    Raises
    ------
    ValueError
        On invalid parameters.
    """
    if not 0 < eps < 0.125:
        raise ValueError(f"eps must be in (0, 1/8), got {eps}")
    if net_method not in ("distributed", "greedy"):
        raise ValueError(f"unknown net_method {net_method!r}")
    rng = ensure_rng(rng)
    n = graph.n
    if root is None:
        root = min(graph.vertices(), key=repr)

    ledger = RoundLedger()
    bfs = build_bfs_tree(graph, root)
    ledger.charge("bfs-tree", bfs.rounds)
    height = bfs.height

    mst_weight = kruskal_mst(graph).total_weight()
    spanner = WeightedGraph(graph.vertices())
    scales: List[ScaleStats] = []
    csr = graph.freeze()  # shared by every per-net-point exploration

    base = 1.0 + eps
    num_scales = max(1, math.ceil(math.log(max(mst_weight, base), base))) + 1
    delta = 0.5  # the paper's "e.g., we can take δ = 1/2"
    skeleton_size = max(1, math.ceil(math.sqrt(n * max(math.log(n + 1), 1.0))))
    beta = max(1, math.ceil(math.log2(n + 1)))  # charged [EN16] hopbound

    for i in range(num_scales):
        scale = base ** i
        scale_ledger = RoundLedger()

        # --- net with covering radius εΔ/2 (Δ_net = εΔ/3, δ = 1/2) ---
        net_param = eps * scale / 3.0
        if net_method == "distributed":
            net_res = build_net(graph, net_param, delta, rng, root=root)
            net_points: Set[Vertex] = net_res.points
            scale_ledger.merge(net_res.ledger, prefix=f"scale{i}:net:")
        else:
            net_points = greedy_net(graph, net_param)
            from repro.lelists.le_lists import fl16_round_cost

            iters = math.ceil(math.log2(n + 2))
            scale_ledger.charge(
                f"scale{i}:net", iters * fl16_round_cost(n, height, delta)
            )

        # --- [EN16] hopset for this scale's bounded explorations ---
        scale_ledger.charge(f"scale{i}:hopset", en16_round_cost(n, height, beta))

        # --- 2Δ-bounded explorations from every net point ---
        radius = 2.0 * scale
        participation: Dict[Vertex, int] = {}
        paths_added = 0
        for u in sorted(net_points, key=repr):
            true_dist, parent = _bounded_exploration(csr, u, radius, eps)
            for v in true_dist:
                participation[v] = participation.get(v, 0) + 1
            for v in net_points:
                if v == u or repr(v) <= repr(u) or v not in true_dist:
                    continue
                # add the reported path to the spanner
                node = v
                while parent[node] is not None:
                    prev = parent[node]
                    if not spanner.has_edge(prev, node):
                        spanner.add_edge(prev, node, graph.weight(prev, node))
                    node = prev
                paths_added += 1
        max_overlap = max(participation.values(), default=0)
        scale_ledger.charge(
            f"scale{i}:explorations",
            bounded_exploration_cost(n, height, beta, max_overlap, skeleton_size),
        )

        ledger.merge(scale_ledger)
        scales.append(
            ScaleStats(
                index=i,
                scale=scale,
                net_size=len(net_points),
                paths_added=paths_added,
                max_overlap=max_overlap,
                rounds=scale_ledger.total,
            )
        )

    return DoublingSpannerResult(
        spanner=spanner,
        eps=eps,
        stretch_bound=1.0 + 30.0 * eps,
        scales=scales,
        ledger=ledger,
    )
