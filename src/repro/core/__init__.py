"""The paper's contributions: SLT (§4), light spanner (§5), nets (§6),
doubling spanner (§7), and the §8 lower-bound reduction."""

from repro.core.slt import SLTResult, slt_base, shallow_light_tree
from repro.core.bfn_reduction import bfn_reweighted_graph, bfn_bounds
from repro.core.light_spanner import LightSpannerResult, BucketStats, light_spanner
from repro.core.nets import NetResult, build_net, greedy_net
from repro.core.doubling_spanner import DoublingSpannerResult, doubling_spanner
from repro.core.net_hierarchy import NetHierarchy, NetLevel, build_net_hierarchy
from repro.core.cluster_simulation import (
    ClusterSimulationResult,
    simulate_case1_bucket,
)
from repro.core.lower_bounds import (
    MSTWeightEstimate,
    estimate_mst_weight_via_nets,
    congest_round_floor,
)

__all__ = [
    "SLTResult",
    "slt_base",
    "shallow_light_tree",
    "bfn_reweighted_graph",
    "bfn_bounds",
    "LightSpannerResult",
    "BucketStats",
    "light_spanner",
    "NetResult",
    "build_net",
    "greedy_net",
    "DoublingSpannerResult",
    "doubling_spanner",
    "NetHierarchy",
    "NetLevel",
    "build_net_hierarchy",
    "ClusterSimulationResult",
    "simulate_case1_bucket",
    "MSTWeightEstimate",
    "estimate_mst_weight_via_nets",
    "congest_round_floor",
]
