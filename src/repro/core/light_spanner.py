"""Light spanners for general graphs in CONGEST — §5 (Theorem 2).

Construction outline, exactly as the paper stages it:

* Compute the MST T, its Euler traversal L (§3), and set
  ``L = 2·w(T)`` (the traversal length).
* **Low-weight bucket** ``E' = {e : w(e) <= L/n}`` — run the Baswana–Sen
  (2k−1)-spanner [BS07] directly: only its *size* is bounded, but each
  edge is so light that lightness follows.
* **Weight buckets** ``E_i = {e : L/(1+ε)^{i+1} < w(e) <= L/(1+ε)^i}``
  for ``i = 0..⌈log_{1+ε} n⌉``.  For each bucket, partition V into
  clusters of weak MST-diameter ``ε·w_i`` using the traversal, form the
  unweighted *cluster graph* G_i (vertices = clusters, edges = E_i pairs),
  simulate the Elkin–Neiman spanner [EN17b] on G_i, and add one
  representative E_i edge per selected cluster edge.
* Two cluster regimes (the paper's main technical contribution):

  - **Case 1** (``i < log_{1+ε}(ε·n^{k/(2k+1)})``, few clusters): cluster
    of v = ``⌈R_x/(ε·w_i)⌉`` for an appearance x ∈ L(v).  Each [EN17b]
    round is simulated by a local phase + convergecast + broadcast of all
    per-cluster maxima over the BFS tree — O(|C_i| + D) rounds each.
  - **Case 2** (many clusters): cluster centers are tour positions that
    cross an ``ε·w_i`` time boundary *or* sit at index multiples of
    ``⌈ε·n/(1+ε)^i⌉``, so every *communication interval* has bounded hop
    length; each [EN17b] round is simulated by pipelined convergecasts
    inside the intervals.

* Final spanner ``H = T ∪ H' ∪ ⋃_i H_i``.

Guarantees: stretch ``(2k−1)(1+4ε)`` per edge (deterministic), expected
size ``O(k·n^{1+1/k})``, expected lightness ``O(k·n^{1/k})``, rounds
``Õ(n^{1/2 + 1/(4k+2)} + D)``.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.ledger import RoundLedger
from repro.congest.primitives import (
    broadcast_rounds,
    convergecast_rounds,
    local_phase_rounds,
    pipelined_aggregate_rounds,
)
from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.fragments import decompose_fragments
from repro.mst.kruskal import edge_sort_key, kruskal_mst
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.elkin_neiman import elkin_neiman_spanner
from repro.traversal.euler_tour import EulerTour, compute_euler_tour


@dataclass
class BucketStats:
    """Per-bucket diagnostics reported by the benchmarks."""

    index: int
    weight_cap: float  # w_i = L/(1+ε)^i
    num_edges: int  # |E_i|
    case: int  # 1 or 2 (0 for the E' bucket)
    num_clusters: int
    spanner_edges: int
    rounds: int


@dataclass
class LightSpannerResult:
    """Output of :func:`light_spanner`.

    Attributes
    ----------
    spanner:
        The light spanner H (spans all vertices; contains the MST).
    stretch_bound:
        The deterministic per-edge stretch guarantee (2k−1)(1+4ε).
    buckets:
        Per-bucket statistics (the E′ bucket has index −1).
    ledger:
        Round accounting (Theorem 2 target: Õ(n^{1/2+1/(4k+2)} + D)).
    """

    spanner: WeightedGraph
    k: int
    eps: float
    stretch_bound: float
    buckets: List[BucketStats]
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        """Total charged CONGEST rounds."""
        return self.ledger.total


def _case1_clusters(
    tour: EulerTour, eps_wi: float
) -> Dict[Vertex, int]:
    """Case-1 clustering: v belongs to cluster ⌈R_x/(ε·w_i)⌉."""
    cluster_of: Dict[Vertex, int] = {}
    for v, positions in tour.appearances.items():
        r = tour.times[positions[0]]
        cluster_of[v] = math.ceil(r / eps_wi) if eps_wi > 0 else 0
    return cluster_of


def _case2_clusters(
    tour: EulerTour, eps_wi: float, index_stride: int
) -> Tuple[Dict[Vertex, int], int]:
    """Case-2 clustering via tour-position centers.

    A position j is a center iff an integer multiple of ``ε·w_i`` lies in
    ``(R_{x_{j-1}}, R_{x_j}]`` (condition 1) or ``j`` is a multiple of
    ``index_stride`` (condition 2); x_0 is always a center.  Every vertex
    joins the cluster of the closest center at or before (one of) its
    appearances.  Returns (cluster_of, max interval hop length).
    """
    size = tour.size
    centers: List[int] = []
    for j in range(size):
        if j == 0:
            centers.append(j)
            continue
        if index_stride > 0 and j % index_stride == 0:
            centers.append(j)
            continue
        # condition 1: some integer s has R_{x_{j-1}} < s·εw_i <= R_{x_j};
        # the smallest candidate is floor(R_{x_{j-1}}/εw_i) + 1.
        s_min = math.floor(tour.times[j - 1] / eps_wi) + 1
        if s_min * eps_wi <= tour.times[j] + 1e-12:
            centers.append(j)

    cluster_of: Dict[Vertex, int] = {}
    import bisect

    for v, positions in tour.appearances.items():
        j = positions[0]
        idx = bisect.bisect_right(centers, j) - 1
        cluster_of[v] = centers[idx]

    max_interval = 0
    for a, b in zip(centers, centers[1:] + [size]):
        max_interval = max(max_interval, b - a)
    return cluster_of, max_interval


def _bucket_index(weight: float, big_l: float, eps: float) -> int:
    """The i with ``L/(1+ε)^{i+1} < w <= L/(1+ε)^i`` (float-safe)."""
    base = 1.0 + eps
    i = int(math.floor(math.log(big_l / weight, base)))
    while i > 0 and weight > big_l / base ** i:
        i -= 1
    while weight <= big_l / base ** (i + 1):
        i += 1
    return i


def light_spanner(
    graph: WeightedGraph,
    k: int,
    eps: float,
    rng: Optional[random.Random] = None,
    root: Optional[Vertex] = None,
) -> LightSpannerResult:
    """Build the (2k−1)(1+4ε)-spanner of Theorem 2.

    Parameters
    ----------
    k:
        Stretch parameter (k >= 1).
    eps:
        Bucket granularity, in (0, 1/2].
    rng:
        Random source for [BS07] and the [EN17b] shifts.
    root:
        The vertex acting as rt (default: smallest by repr).

    Raises
    ------
    ValueError
        On invalid parameters or a disconnected graph.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 < eps <= 0.5:
        raise ValueError(f"eps must be in (0, 1/2], got {eps}")
    rng = ensure_rng(rng)
    n = graph.n
    if root is None:
        root = min(graph.vertices(), key=repr)

    ledger = RoundLedger()
    bfs = build_bfs_tree(graph, root)
    ledger.charge("bfs-tree", bfs.rounds)
    height = bfs.height

    mst = kruskal_mst(graph)
    ledger.charge(
        "mst-construction",
        (math.isqrt(max(n - 1, 0)) + 1 + height) * max(1, math.ceil(math.log2(n + 1))),
    )
    decomp = decompose_fragments(mst, root)
    tour = compute_euler_tour(mst, root, decomp, height)
    ledger.merge(tour.ledger, prefix="tour:")

    big_l = 2.0 * mst.total_weight()
    spanner = mst.copy()
    buckets: List[BucketStats] = []

    # the input graph is scanned edge-by-edge twice below (E' extraction
    # and bucketing); both sweeps run over the frozen CSR view
    csr = graph.freeze()

    # ---------------- low-weight bucket E' ----------------
    low_edges = [(u, v) for u, v, w in csr.edges() if w <= big_l / n]
    low_graph = graph.edge_subgraph(low_edges)
    bs_ledger = RoundLedger()
    h_prime = baswana_sen_spanner(low_graph, k, rng, bs_ledger)
    ledger.merge(bs_ledger, prefix="E':")
    for u, v, w in h_prime.edges():
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v, w)
    buckets.append(
        BucketStats(
            index=-1,
            weight_cap=big_l / n,
            num_edges=len(low_edges),
            case=0,
            num_clusters=n,
            spanner_edges=h_prime.m,
            rounds=bs_ledger.total,
        )
    )

    # ---------------- weight buckets E_i ----------------
    i_max = math.ceil(math.log(n, 1.0 + eps)) if n > 1 else 0
    bucket_edges: Dict[int, List[Tuple[Vertex, Vertex, float]]] = {}
    for u, v, w in csr.edges():
        if w <= big_l / n or w > big_l:
            continue  # E' below, MST-covered above
        i = _bucket_index(w, big_l, eps)
        if 0 <= i <= i_max:
            bucket_edges.setdefault(i, []).append((u, v, w))

    case_threshold = (
        math.log(eps * n ** (k / (2.0 * k + 1.0)), 1.0 + eps) if n > 1 else 0.0
    )

    for i in sorted(bucket_edges):
        edges_i = bucket_edges[i]
        wi = big_l / (1.0 + eps) ** i
        eps_wi = eps * wi
        bucket_ledger = RoundLedger()
        case = 1 if i < case_threshold else 2

        if case == 1:
            cluster_of = _case1_clusters(tour, eps_wi)
            max_interval = 0
        else:
            stride = max(1, math.ceil(eps * n / (1.0 + eps) ** i))
            cluster_of, max_interval = _case2_clusters(tour, eps_wi, stride)
            # centers declare themselves along their interval (§5 case 2)
            bucket_ledger.charge(f"bucket{i}:center-declaration", max_interval)

        # cluster graph over E_i, with a lightest representative per pair
        adjacency: Dict[int, Set[int]] = {}
        representative: Dict[Tuple[int, int], Tuple[Vertex, Vertex, float]] = {}
        for u, v, w in edges_i:
            cu, cv = cluster_of[u], cluster_of[v]
            if cu == cv:
                continue  # intra-cluster: the MST path inside covers it
            a, b = (cu, cv) if cu <= cv else (cv, cu)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
            key = (a, b)
            if key not in representative or edge_sort_key(u, v, w) < edge_sort_key(
                *representative[key]
            ):
                representative[key] = (u, v, w)
        # sorted: adjacency's insertion order feeds elkin_neiman_spanner's
        # RNG consumption, so hash order must not leak into it
        for c in sorted(set(cluster_of.values())):
            adjacency.setdefault(c, set())

        num_clusters = len(adjacency)
        run = elkin_neiman_spanner(adjacency, k, rng)

        added = 0
        for edge in run.edges:
            a, b = sorted(edge)
            u, v, w = representative[(a, b)]
            if not spanner.has_edge(u, v):
                spanner.add_edge(u, v, w)
            added += 1

        # --- round accounting for the k-round simulation ---
        if case == 1:
            # broadcast of the centrally-sampled shifts r_A
            bucket_ledger.charge(
                f"bucket{i}:shift-broadcast", broadcast_rounds(num_clusters, height)
            )
            for r in range(run.rounds):
                bucket_ledger.charge(f"bucket{i}:round{r}:local", 1)
                bucket_ledger.charge(
                    f"bucket{i}:round{r}:convergecast",
                    pipelined_aggregate_rounds(num_clusters, height),
                )
                bucket_ledger.charge(
                    f"bucket{i}:round{r}:broadcast",
                    broadcast_rounds(num_clusters, height),
                )
            bucket_ledger.charge(
                f"bucket{i}:edge-collection",
                convergecast_rounds(added, height) + broadcast_rounds(added, height),
            )
        else:
            for r in range(run.rounds):
                bucket_ledger.charge(
                    f"bucket{i}:round{r}:interval-convergecast",
                    local_phase_rounds(max_interval),
                )
            # w.h.p. O(n^{1/k} log n) spanner edges per cluster (§5 case 2)
            per_cluster = max(
                [sum(1 for e in run.edges if c in e) for c in adjacency], default=0
            )
            bucket_ledger.charge(
                f"bucket{i}:edge-collection",
                local_phase_rounds(max_interval) + per_cluster,
            )

        ledger.merge(bucket_ledger)
        buckets.append(
            BucketStats(
                index=i,
                weight_cap=wi,
                num_edges=len(edges_i),
                case=case,
                num_clusters=num_clusters,
                spanner_edges=added,
                rounds=bucket_ledger.total,
            )
        )

    return LightSpannerResult(
        spanner=spanner,
        k=k,
        eps=eps,
        stretch_bound=(2 * k - 1) * (1.0 + 4.0 * eps),
        buckets=buckets,
        ledger=ledger,
    )
