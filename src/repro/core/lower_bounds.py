"""Lower bounds — §8 (Theorems 6 and 7).

Theorem 6 follows directly from [SHK+12]: an SLT or a polynomially-light
spanner reveals the MST weight up to polynomial factors, so Ω̃(√n + D)
rounds are necessary.  :func:`congest_round_floor` exposes that floor so
benchmarks can plot charged rounds against it.

Theorem 7 is constructive and we reproduce it end-to-end: given an
(α·2^i, 2^i)-net oracle for every scale i, the estimator::

    Ψ = Σ_i  n_i · α · 2^{i+1}      (n_i = |N_i|, stop at n_i = 1)

satisfies ``L <= Ψ <= O(α·log n)·L`` where L = w(MST):

* upper: each N_i is 2^i-separated, so Claim 7 gives
  ``n_i <= ⌈2L/2^i⌉`` and the sum telescopes to O(α·log n)·L;
* lower: connecting each net point to its nearest point in the next net
  (distance ≤ α·2^{i+1} by covering) yields a connected subgraph H of
  weight ≤ Ψ, and any connected spanning structure weighs ≥ L.

:func:`estimate_mst_weight_via_nets` runs this reduction with the §6 net
construction (or the greedy baseline), returning the estimate together
with the certificate quantities the tests check.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.congest.ledger import RoundLedger
from repro.core.nets import build_net, greedy_net
from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.kruskal import kruskal_mst


def congest_round_floor(n: int, hop_diameter: int) -> float:
    """The Ω̃(√n + D) floor of Theorems 6/7, with polylog taken as log₂n."""
    if n <= 1:
        return float(hop_diameter)
    return math.sqrt(n) / max(1.0, math.log2(n)) + hop_diameter


@dataclass
class MSTWeightEstimate:
    """Output of the Theorem-7 reduction.

    Attributes
    ----------
    psi:
        The estimator Ψ.
    mst_weight:
        The true L = w(MST) (for the sandwich check).
    alpha:
        The net oracle's covering/separation ratio.
    net_sizes:
        ``i → n_i`` for every computed scale.
    ledger:
        Rounds charged by the net-oracle invocations — O(log n) of them,
        which is how Theorem 7 transfers the [SHK+12] hardness to nets.
    """

    psi: float
    mst_weight: float
    alpha: float
    net_sizes: Dict[int, int] = field(default_factory=dict)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def approximation_ratio(self) -> float:
        """Ψ / L (must lie in [1, O(α·log n)])."""
        return self.psi / self.mst_weight if self.mst_weight > 0 else float("inf")


def estimate_mst_weight_via_nets(
    graph: WeightedGraph,
    delta: float = 0.5,
    rng: Optional[random.Random] = None,
    net_method: str = "distributed",
    max_scales: int = 64,
) -> MSTWeightEstimate:
    """Run the Theorem-7 reduction on ``graph``.

    Parameters
    ----------
    delta:
        Slack of the net construction; the oracle then provides
        (α·2^i, 2^i)-nets with ``α = (1+δ)²``.
    net_method:
        ``"distributed"`` (Theorem 3) or ``"greedy"`` (baseline oracle).

    Raises
    ------
    RuntimeError
        If the nets fail to shrink to a single point within
        ``max_scales`` scales (cannot happen on poly(n)-weighted graphs).
    """
    rng = ensure_rng(rng)
    ledger = RoundLedger()
    alpha = (1.0 + delta) ** 2
    mst_weight = kruskal_mst(graph).total_weight()

    if graph.n <= 1:
        return MSTWeightEstimate(
            psi=0.0, mst_weight=0.0, alpha=alpha, net_sizes={}, ledger=ledger
        )

    # start at i with α·2^i strictly below the minimal edge weight, so that
    # N_start = V (the paper's i = -⌈log α⌉ for unit minimal weight) — the
    # Ψ >= L direction needs the first net to span every vertex.
    min_w = graph.min_weight()
    start = math.floor(math.log2(max(min_w, 1e-12) / alpha)) - 1

    psi = 0.0
    net_sizes: Dict[int, int] = {}
    i = start
    while True:
        if i - start > max_scales:
            raise RuntimeError(f"net cardinality did not reach 1 in {max_scales} scales")
        scale = 2.0 ** i
        if net_method == "distributed":
            res = build_net(graph, scale * (1.0 + delta), delta, rng)
            points: Set[Vertex] = res.points
            ledger.merge(res.ledger, prefix=f"scale{i}:")
        else:
            points = greedy_net(graph, scale)
            ledger.charge(f"scale{i}:net", 1)
        n_i = len(points)
        net_sizes[i] = n_i
        psi += n_i * alpha * scale * 2.0
        if n_i == 1:
            break
        i += 1

    return MSTWeightEstimate(
        psi=psi,
        mst_weight=mst_weight,
        alpha=alpha,
        net_sizes=net_sizes,
        ledger=ledger,
    )
