"""Message-level execution of the §5 case-1 cluster-graph simulation.

The §5 light spanner *simulates* the [EN17b] spanner on a cluster graph
G_i whose vertices are MST clusters.  Case 1 implements each [EN17b]
round in three phases over the communication graph G:

1. **Local phase** — each vertex computes, from the last broadcast, the
   maximum ``(m(B), s(B))`` over the clusters B adjacent to *it*;
2. **Convergecast phase** — the per-cluster maxima are aggregated to the
   BFS root, each tree vertex forwarding one message per cluster;
3. **Broadcast phase** — the root announces the new ``(s(A), m(A))`` of
   every cluster to the whole graph.

A final convergecast collects the spanner-edge candidates ("Consider a
vertex v ∈ A.  For every cluster B ... v will send ((u,v),(A,B))", §5).

This module runs those phases *natively* on the CONGEST simulator (the
keyed-max convergecast of :mod:`repro.congest.keyed_aggregate`, the
pipelined broadcast of :mod:`repro.congest.pipeline`), measuring real
rounds, and certifies at every round that the message-level state equals
the abstract cluster-level [EN17b] state — the simulation that the
ledger-based :func:`repro.core.light_spanner` charges for.  The
test-suite additionally checks the final edge set coincides with the
pure :func:`repro.spanners.elkin_neiman_spanner` run on the cluster
graph under the same shifts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import total_ordering
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.congest.bfs import BFSTree
from repro.congest.keyed_aggregate import keyed_max_convergecast
from repro.congest.pipeline import broadcast_messages
from repro.congest.simulator import SyncNetwork
from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.spanners.elkin_neiman import sample_shifts

Cluster = Hashable


@total_ordering
class _EdgeCandidate:
    """Convergecast value for edge collection: max value, then *min* via.

    [EN17b]'s tie-break (both in our pure and native implementations)
    keeps the lowest-id delivering neighbour on equal values; a plain
    tuple max would keep the highest, so the via comparison is inverted.
    """

    __slots__ = ("val", "via")

    def __init__(self, val: float, via: str) -> None:
        self.val = val
        self.via = via

    def __eq__(self, other) -> bool:
        return (self.val, self.via) == (other.val, other.via)

    def __gt__(self, other) -> bool:
        if self.val != other.val:
            return self.val > other.val
        return self.via < other.via  # prefer the smaller via on ties

    def __lt__(self, other) -> bool:
        return other > self and other != self

    def __repr__(self) -> str:
        return f"_EdgeCandidate({self.val!r}, {self.via!r})"


@dataclass
class ClusterSimulationResult:
    """Output of :func:`simulate_case1_bucket`.

    Attributes
    ----------
    edges:
        The selected cluster-graph spanner edges (frozenset pairs of
        cluster ids) — provably identical to the abstract [EN17b] run.
    rounds:
        Total *measured* communication rounds across all phases.
    round_breakdown:
        Per-[EN17b]-round (convergecast, broadcast) measured rounds.
    shifts:
        The exponential shifts used.
    cluster_graph:
        The cluster-level adjacency the simulation ran on — the abstract
        graph a reference [EN17b] run must use to certify the edges.
    """

    edges: Set[FrozenSet[Cluster]]
    rounds: int
    round_breakdown: List[Tuple[int, int]] = field(default_factory=list)
    shifts: Dict[Cluster, float] = field(default_factory=dict)
    cluster_graph: Dict[Cluster, Set[Cluster]] = field(default_factory=dict)


def simulate_case1_bucket(
    graph: WeightedGraph,
    tree: BFSTree,
    cluster_of: Dict[Vertex, Cluster],
    k: int,
    rng: Optional[random.Random] = None,
    shifts: Optional[Dict[Cluster, float]] = None,
    bucket_edges: Optional[List[Tuple[Vertex, Vertex]]] = None,
    network: Optional[SyncNetwork] = None,
) -> ClusterSimulationResult:
    """Run the case-1 simulation of one bucket at message level.

    Parameters
    ----------
    graph:
        The communication graph G.
    tree:
        The BFS tree τ used for convergecasts/broadcasts.
    cluster_of:
        The bucket's clustering (§5 case 1).
    bucket_edges:
        The E_i edges defining cluster adjacency; defaults to all edges
        of G.
    network:
        Reuse an existing :class:`SyncNetwork` over ``graph`` for every
        phase (e.g. to pick the dense engine or accumulate lifetime
        traffic counters); a fresh sparse-engine network by default.

    Raises
    ------
    ValueError
        If ``k < 1`` or some vertex lacks a cluster.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    for v in graph.vertices():
        if v not in cluster_of:
            raise ValueError(f"vertex {v!r} has no cluster")
    rng = ensure_rng(rng)

    if bucket_edges is None:
        bucket_edges = [(u, v) for u, v, _ in graph.edges()]
    # vertex-level adjacency to foreign clusters, via E_i edges only
    adjacent_clusters: Dict[Vertex, Set[Cluster]] = {v: set() for v in graph.vertices()}
    cluster_graph: Dict[Cluster, Set[Cluster]] = {
        c: set() for c in sorted(set(cluster_of.values()), key=repr)
    }
    for u, v in bucket_edges:
        cu, cv = cluster_of[u], cluster_of[v]
        if cu == cv:
            continue
        adjacent_clusters[u].add(cv)
        adjacent_clusters[v].add(cu)
        cluster_graph[cu].add(cv)
        cluster_graph[cv].add(cu)

    clusters = sorted(cluster_graph, key=repr)
    if shifts is None:
        # rt samples a value r_A for every cluster and broadcasts (§5)
        shifts = sample_shifts(clusters, k, rng)
    by_repr = {repr(c): c for c in clusters}

    # the globally-known cluster table (established by broadcasts)
    m: Dict[Cluster, float] = dict(shifts)
    source: Dict[Cluster, Cluster] = {c: c for c in clusters}
    # per-vertex local per-source tracking: src -> (val, via-cluster);
    # purely local knowledge (broadcast table + own incident edges)
    best_v: Dict[Vertex, Dict[Cluster, Tuple[float, Cluster]]] = {
        v: {} for v in graph.vertices()
    }

    net = network if network is not None else SyncNetwork(graph)
    total_rounds = 0
    breakdown: List[Tuple[int, int]] = []

    for _round in range(k):
        outgoing = {c: (source[c], m[c] - 1.0) for c in clusters}

        # local: every vertex records, per source, the best message among
        # the clusters adjacent to it (ties: lowest via id, matching the
        # pure/native [EN17b] tie-break)
        inputs: Dict[Vertex, Dict[Cluster, Tuple[float, str]]] = {}
        for v in graph.vertices():
            candidate = None
            for b in sorted(adjacent_clusters[v], key=repr):
                src, val = outgoing[b]
                cur = best_v[v].get(src)
                if cur is None or val > cur[0]:
                    best_v[v][src] = (val, b)
                entry = (val, repr(src))
                if candidate is None or entry > candidate:
                    candidate = entry
            if candidate is not None:
                inputs[v] = {cluster_of[v]: candidate}
        total_rounds += 1

        # convergecast phase: per-cluster maxima to the root (measured)
        merged, cc_rounds = keyed_max_convergecast(graph, tree, inputs, network=net)
        total_rounds += cc_rounds

        # certification: the message-level maxima equal the abstract ones
        for a in clusters:
            if cluster_graph[a]:
                expected = max(outgoing[b][1] for b in cluster_graph[a])
                assert merged[a][0] == expected, (
                    f"convergecast lost the maximum for cluster {a!r}"
                )

        for a, (val, src_r) in merged.items():
            if val > m[a]:
                m[a] = val
                source[a] = by_repr[src_r]

        # broadcast phase: the root announces the new table (measured)
        payloads = {tree.root: [(repr(c), m[c]) for c in clusters]}
        _, bc_rounds = broadcast_messages(graph, tree, payloads, network=net)
        total_rounds += bc_rounds
        breakdown.append((cc_rounds, bc_rounds))

    # edge collection: every vertex proposes its local candidates; the
    # keyed convergecast dedups per (cluster, source) pair (measured)
    edge_inputs: Dict[Vertex, Dict[Tuple[str, str], _EdgeCandidate]] = {}
    for v in graph.vertices():
        a = cluster_of[v]
        proposals = {}
        for src, (val, via) in best_v[v].items():
            if src == a:
                continue
            if val >= m[a] - 1.0:
                proposals[(repr(a), repr(src))] = _EdgeCandidate(val, repr(via))
        if proposals:
            edge_inputs[v] = proposals
    merged_edges, ec_rounds = keyed_max_convergecast(
        graph, tree, edge_inputs, network=net
    )
    total_rounds += ec_rounds

    edges: Set[FrozenSet[Cluster]] = set()
    for (a_r, src_r), cand in merged_edges.items():
        a = by_repr[a_r]
        if cand.val >= m[a] - 1.0:
            edges.add(frozenset((a, by_repr[cand.via])))
    return ClusterSimulationResult(
        edges=edges, rounds=total_rounds, round_breakdown=breakdown,
        shifts=shifts, cluster_graph=cluster_graph,
    )
