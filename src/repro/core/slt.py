"""Shallow-Light Trees in CONGEST — §4 of the paper (Theorem 1).

The construction, exactly as §4 stages it:

1. MST ``T`` and its Euler traversal ``L`` (§3); an approximate SPT
   ``T_rt`` (Equation (1)) via the [BKKL17] stand-in.
2. **Two-phase break-point selection** (§4.1).  With ``α = ⌈√n⌉``, the
   anchor set ``BP′ = {x_0, x_α, x_2α, ...}`` splits L into O(√n)
   intervals.  *Phase 1 (local, parallel):* inside each interval a
   sequential scan adds ``x_j`` to BP₁ when
   ``R_{x_j} − R_y > ε · d_{T_rt}(rt, x_j)``  (Equation (2); ``y`` = latest
   of anchor/BP₁ seen in the interval).  *Phase 2 (global, at rt):* the
   anchors are convergecast to rt, which runs the same scan over BP′ alone
   to produce BP₂ and broadcasts it.  BP = BP₁ ∪ BP₂.
3. ``H = T ∪ ⋃_{b ∈ BP} P_b`` where ``P_b`` is the ``T_rt`` path from rt
   (§4.2; the ABP upward-closure is computed fragment-wise).
4. The SLT is a final approximate SPT of ``H`` (§4.4).

Guarantees (ε ∈ (0, 1]): lightness ``w(H) <= (1 + 4/ε)·w(T)``
(Corollary 3) and root-stretch ``(1+ε)(1+25ε) <= 1 + 51ε`` (Lemma 4 +
§4.4).  :func:`shallow_light_tree` exposes the Theorem-1 parametrization
(lightness α, stretch 1 + O(1)/(α−1)), switching to the [BFN16] reduction
(Lemma 5) for the lightness-close-to-1 regime exactly as §4.4 prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.ledger import RoundLedger
from repro.congest.primitives import (
    broadcast_rounds,
    convergecast_rounds,
    local_phase_rounds,
)
from repro.core.bfn_reduction import bfn_bounds, bfn_reweighted_graph
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.fragments import decompose_fragments
from repro.mst.kruskal import kruskal_mst
from repro.spt.approx_spt import approx_spt
from repro.traversal.euler_tour import EulerTour, compute_euler_tour

#: Raw guarantees of the base construction at parameter ε (§4.3–§4.4):
#: root-stretch 1 + STRETCH_C·ε and lightness 1 + LIGHT_C/ε.
STRETCH_C = 51.0
LIGHT_C = 4.0
#: ε making the base distortion exactly 2 (used inside the BFN regime).
_EPS_FOR_DISTORTION_2 = 1.0 / STRETCH_C
#: Base lightness at that ε: 1 + LIGHT_C·STRETCH_C.
_BASE_LIGHTNESS = 1.0 + LIGHT_C * STRETCH_C


@dataclass
class SLTResult:
    """Output of the SLT construction.

    Attributes
    ----------
    tree:
        The shallow-light tree (a spanning subgraph tree of G).
    root:
        The designated root rt.
    stretch_bound / lightness_bound:
        The guarantees the parameters promise (measured values in the
        benchmarks are far below them).
    break_points:
        Tour positions selected as BP = BP₁ ∪ BP₂.
    anchor_points:
        The temporary anchor positions BP′.
    intermediate:
        The subgraph H (for the ablation benches).
    ledger:
        Round accounting (Theorem 1 target: Õ(√n + D)·poly(1/ε)).
    """

    tree: WeightedGraph
    root: Vertex
    eps: float
    stretch_bound: float
    lightness_bound: float
    break_points: List[int]
    anchor_points: List[int]
    intermediate: WeightedGraph
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        """Total charged CONGEST rounds."""
        return self.ledger.total


def _select_break_points(
    tour: EulerTour,
    spt_dist: Dict[Vertex, float],
    eps: float,
    alpha: int,
    ledger: RoundLedger,
    bfs_height: int,
) -> Tuple[List[int], List[int], List[int]]:
    """§4.1 — returns (BP1, BP2, BP') as sorted tour positions."""
    size = tour.size
    anchors = list(range(0, size, alpha))  # BP'

    # Phase 1: parallel interval scans (α − 1 rounds, §4.1).
    bp1: List[int] = []
    for start in anchors:
        end = min(start + alpha, size)
        y_time = tour.times[start]
        for j in range(start + 1, end):
            v = tour.order[j]
            if tour.times[j] - y_time > eps * spt_dist[v]:
                bp1.append(j)
                y_time = tour.times[j]
    ledger.charge("bp1-interval-scan", local_phase_rounds(alpha - 1))

    # Phase 2: anchors convergecast to rt, filtered there sequentially,
    # then broadcast (<= 2√n messages each way, Lemma 1).
    ledger.charge("bp2-convergecast", convergecast_rounds(2 * len(anchors), bfs_height))
    bp2: List[int] = [0]
    y_time = tour.times[0]
    for p in anchors[1:]:
        v = tour.order[p]
        if tour.times[p] - y_time > eps * spt_dist[v]:
            bp2.append(p)
            y_time = tour.times[p]
    ledger.charge("bp2-broadcast", broadcast_rounds(len(bp2), bfs_height))

    return sorted(bp1), bp2, anchors


def slt_base(
    graph: WeightedGraph,
    root: Vertex,
    eps: float,
    mst: Optional[WeightedGraph] = None,
) -> SLTResult:
    """The §4 construction at raw parameter ε ∈ (0, 1].

    Guarantees: root-stretch <= 1 + 51ε and lightness <= 1 + 4/ε + 1
    (the final SPT re-selection keeps ``w(T_SLT) <= w(H)``).

    Raises
    ------
    ValueError
        If ε is outside (0, 1] or the graph is disconnected.
    """
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    n = graph.n
    ledger = RoundLedger()

    bfs = build_bfs_tree(graph, root)
    ledger.charge("bfs-tree", bfs.rounds)
    height = bfs.height

    tree = mst if mst is not None else kruskal_mst(graph)
    ledger.charge(
        "mst-construction",
        (math.isqrt(max(n - 1, 0)) + 1 + height) * max(1, math.ceil(math.log2(n + 1))),
    )
    decomp = decompose_fragments(tree, root)
    tour = compute_euler_tour(tree, root, decomp, height)
    ledger.merge(tour.ledger, prefix="tour:")

    spt = approx_spt(graph, root, eps, height, ledger, phase="approx-spt-G")

    alpha = math.isqrt(max(n - 1, 0)) + 1
    bp1, bp2, anchors = _select_break_points(tour, spt.dist, eps, alpha, ledger, height)
    break_points = sorted(set(bp1) | set(bp2))

    # §4.2 — H = T ∪ ⋃ P_b; the ABP computation is fragment-wise:
    # one local phase + one O(√n)-message broadcast round trip.
    h = tree.copy()
    for pos in break_points:
        v = tour.order[pos]
        path = spt.path_to_root(v)
        for a, b in zip(path, path[1:]):
            if not h.has_edge(a, b):
                h.add_edge(a, b, graph.weight(a, b))
    ledger.charge("abp-local", local_phase_rounds(decomp.max_hop_diameter()))
    ledger.charge("abp-broadcast", broadcast_rounds(2 * decomp.num_fragments, height))

    tslt = approx_spt(h, root, eps, height, ledger, phase="approx-spt-H")

    return SLTResult(
        tree=tslt.as_graph(graph),
        root=root,
        eps=eps,
        stretch_bound=1.0 + STRETCH_C * eps,
        lightness_bound=1.0 + LIGHT_C / eps,
        break_points=break_points,
        anchor_points=anchors,
        intermediate=h,
        ledger=ledger,
    )


def shallow_light_tree(
    graph: WeightedGraph,
    root: Vertex,
    alpha: float,
) -> SLTResult:
    """Theorem 1 parametrization: an (1 + O(1)/(α−1), α)-SLT.

    For ``α >= 1 + LIGHT_C`` the base construction with ``ε = LIGHT_C/(α−1)``
    already gives lightness α.  For ``1 < α < 1 + LIGHT_C`` (lightness
    close to 1) §4.4 applies the [BFN16] reduction: run the base algorithm
    at distortion 2 on the Lemma-5 reweighted graph with
    ``δ = (α−1)/ℓ_base``.

    Raises
    ------
    ValueError
        If ``alpha <= 1``.
    """
    if alpha <= 1:
        raise ValueError(f"alpha must be > 1, got {alpha}")

    if alpha >= 1 + LIGHT_C:
        eps = LIGHT_C / (alpha - 1)  # lightness 1 + 4/ε = α
        result = slt_base(graph, root, eps)
        result.lightness_bound = alpha
        return result

    # lightness-close-to-1 regime: Lemma 5 with the distortion-2 base.
    gamma = alpha - 1
    delta = gamma / _BASE_LIGHTNESS
    mst = kruskal_mst(graph)
    reweighted = bfn_reweighted_graph(graph, delta, mst)
    result = slt_base(reweighted, root, _EPS_FOR_DISTORTION_2, mst=mst)

    # Reinterpret the tree under the original weights (same edge set).
    tree = graph.edge_subgraph(result.tree.edge_set())
    h = graph.edge_subgraph(result.intermediate.edge_set())
    lightness_bound, stretch_bound = bfn_bounds(_BASE_LIGHTNESS, 2.0, delta)
    return SLTResult(
        tree=tree,
        root=root,
        eps=_EPS_FOR_DISTORTION_2,
        stretch_bound=stretch_bound,
        lightness_bound=lightness_bound,
        break_points=result.break_points,
        anchor_points=result.anchor_points,
        intermediate=h,
        ledger=result.ledger,
    )
