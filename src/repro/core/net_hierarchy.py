"""Hierarchical nets — the per-scale net family underlying §7.

The doubling spanner computes an independent net per distance scale
``Δ_i = (1+ε)^i``.  This module packages that family as a first-class
object, :class:`NetHierarchy`, with the two properties downstream users
of net hierarchies (spanners, distance labelings, routing schemes) rely
on:

* **per-scale validity** — level i is covering/separated at its scale;
* **nestedness (optional)** — with ``nested=True``, the level-(i+1) net
  points are a subset of level i's (built by re-netting the previous
  level's points), giving the navigating-net / net-tree structure of
  [HM06] that the paper cites.

Both the Theorem-3 distributed construction and the greedy baseline can
supply the per-level nets; round charges accumulate in a single ledger.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.congest.ledger import RoundLedger
from repro.core.nets import build_net, greedy_net
from repro.determinism import ensure_rng
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph


@dataclass
class NetLevel:
    """One level of the hierarchy.

    Attributes
    ----------
    index:
        Level number i (scale ``base^i``).
    scale:
        The level's scale Δ_i.
    points:
        The net points.
    alpha / beta:
        Guaranteed covering radius and separation at this level.
    """

    index: int
    scale: float
    points: Set[Vertex]
    alpha: float
    beta: float


@dataclass
class NetHierarchy:
    """Nets at every scale ``base^0 .. base^levels``.

    Attributes
    ----------
    levels:
        The per-scale nets, coarsest last.
    nested:
        Whether level i+1 ⊆ level i holds by construction.
    ledger:
        Accumulated round charges of the per-level constructions.
    """

    graph: WeightedGraph
    base: float
    levels: List[NetLevel]
    nested: bool
    ledger: RoundLedger = field(default_factory=RoundLedger)

    def level(self, i: int) -> NetLevel:
        """The i-th level (raises IndexError past the top)."""
        return self.levels[i]

    @property
    def num_levels(self) -> int:
        """Number of levels in the hierarchy."""
        return len(self.levels)

    def level_for_distance(self, d: float) -> NetLevel:
        """The coarsest level whose scale is still >= d (clamped to top)."""
        for lvl in self.levels:
            if lvl.scale >= d:
                return lvl
        return self.levels[-1]

    def nearest_net_point(self, v: Vertex, i: int) -> Vertex:
        """The closest level-i net point to v (covering guarantees one
        within ``levels[i].alpha``)."""
        best, best_d = None, float("inf")
        for p in self.levels[i].points:
            dp, _ = dijkstra(self.graph, p)
            d = dp.get(v, float("inf"))
            if d < best_d:
                best, best_d = p, d
        assert best is not None
        return best


def build_net_hierarchy(
    graph: WeightedGraph,
    eps: float,
    rng: Optional[random.Random] = None,
    method: str = "greedy",
    delta: float = 0.5,
    nested: bool = True,
    max_scale: Optional[float] = None,
) -> NetHierarchy:
    """Build nets at every scale ``(1+ε)^i`` up to ``max_scale``.

    Parameters
    ----------
    eps:
        Scale base is 1+ε (matching the §7 scale ladder).
    method:
        ``"greedy"`` (sequential (r, r)-nets) or ``"distributed"``
        (Theorem 3, ((1+δ)Δ, Δ/(1+δ))-nets with round accounting).
    nested:
        Build level i+1 by netting level i's points (net-tree
        structure); with ``False`` every level nets the full vertex set
        independently, as the §7 spanner does.
    max_scale:
        Top scale; defaults to the MST weight (no pair is farther).

    Raises
    ------
    ValueError
        On invalid parameters.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if method not in ("greedy", "distributed"):
        raise ValueError(f"unknown method {method!r}")
    rng = ensure_rng(rng)

    from repro.mst.kruskal import kruskal_mst

    if max_scale is None:
        max_scale = max(kruskal_mst(graph).total_weight(), 1.0 + eps)
    base = 1.0 + eps
    num_levels = max(1, math.ceil(math.log(max_scale, base))) + 1

    ledger = RoundLedger()
    levels: List[NetLevel] = []
    current: Set[Vertex] = set(graph.vertices())
    for i in range(num_levels):
        scale = base ** i
        if method == "distributed":
            res = build_net(graph, scale, delta, rng)
            points = res.points
            alpha, beta = res.alpha, res.beta
            ledger.merge(res.ledger, prefix=f"level{i}:")
        else:
            universe = current if nested else set(graph.vertices())
            points = _greedy_net_of(graph, universe, scale)
            alpha, beta = scale, scale
            ledger.charge(f"level{i}:greedy-net", 1)
        if nested and method == "greedy":
            current = points
        levels.append(
            NetLevel(index=i, scale=scale, points=points, alpha=alpha, beta=beta)
        )

    return NetHierarchy(
        graph=graph, base=base, levels=levels,
        nested=(nested and method == "greedy"), ledger=ledger,
    )


def _greedy_net_of(graph: WeightedGraph, universe: Set[Vertex], radius: float) -> Set[Vertex]:
    """Greedy (r, r)-net of ``universe`` w.r.t. graph distances.

    Covering holds for the universe (and transitively for V when the
    universe is the previous, finer level: covering radii telescope as a
    geometric series).
    """
    net: List[Vertex] = []
    covered: Dict[Vertex, float] = {}
    for v in sorted(universe, key=repr):
        if covered.get(v, float("inf")) > radius:
            net.append(v)
            dist, _ = dijkstra(graph, v)
            for u, d in dist.items():
                if d < covered.get(u, float("inf")):
                    covered[u] = d
    return set(net)
