"""Message-level execution of the §4.1 break-point interval scan.

Phase 1 of the SLT's break-point selection runs, in parallel inside every
length-α interval of the Euler tour L, a sequential scan: position j
receives ``(y, R_y)`` from position j−1, decides whether to join BP₁ by
Equation (2), and forwards either its own ``(x_j, R_{x_j})`` or the
received pair.  Consecutive tour positions are endpoints of an MST edge,
so each hand-off is one real message on one real edge — and a vertex
"simulates different vertices in L" (§4.1) without congestion because
each of its tour appearances talks to distinct edge endpoints.

:class:`IntervalScan` implements exactly that on the CONGEST simulator:
each *vertex* program forwards the scan token for each of its tour
appearances.  The measured rounds must be ≤ α + O(1) (the paper's
"after α − 1 rounds this procedure ends"), and the selected set must
equal the sequential reference used by :func:`repro.core.slt.slt_base` —
both asserted in the test-suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.simulator import SyncNetwork
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.traversal.euler_tour import EulerTour


@dataclass
class IntervalScanResult:
    """Output of :func:`run_interval_scan`.

    Attributes
    ----------
    bp1:
        The selected BP₁ tour positions (sorted).
    rounds:
        Measured CONGEST rounds (paper bound: α − 1 token hand-offs).
    alpha:
        The interval length used.
    """

    bp1: List[int]
    rounds: int
    alpha: int


class IntervalScan(CongestAlgorithm):
    """Parallel in-interval scans of the tour, one token per interval.

    Every tour position j holds the scan token for exactly one round; the
    token carries ``R_y`` of the latest break point (1 word — the anchor
    identity is implied by the interval).  A vertex may hold several
    positions; positions j and j+1 belong to the two endpoint vertices of
    an MST edge, so the hand-off ``j → j+1`` is a message on that edge,
    tagged by the receiving position index (1 more word).

    Purely mail-driven (activity contract): each round the sparse engine
    steps only the ⌈size/α⌉ token holders, not all n vertices.
    """

    def __init__(self, tour: EulerTour, spt_dist: Dict[Vertex, float], eps: float,
                 alpha: int) -> None:
        self.tour = tour
        self.spt_dist = spt_dist
        self.eps = eps
        self.alpha = alpha

    # ------------------------------------------------------------------
    def _positions_of(self, v: Vertex) -> List[int]:
        return self.tour.appearances[v]

    def _decide_and_forward(
        self, node: NodeView, j: int, y_time: float
    ) -> Outbox:
        """Run the scan step at position j (held by ``node``), pass on."""
        tour = self.tour
        v = tour.order[j]
        assert v == node.id
        if j % self.alpha != 0:  # anchors never join BP1
            if tour.times[j] - y_time > self.eps * self.spt_dist[v]:
                node.state["scan_joined"].add(j)
                y_time = tour.times[j]
        else:
            y_time = tour.times[j]  # interval anchor resets the reference

        nxt = j + 1
        if nxt >= tour.size or nxt % self.alpha == 0:
            return {}  # interval (or tour) ends here
        successor = tour.order[nxt]
        if successor == node.id:
            # consecutive appearances of the same vertex cannot happen on
            # a tour (positions alternate across an edge), but guard:
            return self._decide_and_forward(node, nxt, y_time)
        return {successor: (nxt, y_time)}

    # ------------------------------------------------------------------
    def setup(self, node: NodeView) -> Outbox:
        node.state["scan_joined"] = set()
        out: Outbox = {}
        for j in self._positions_of(node.id):
            if j % self.alpha == 0:  # interval anchor: start the token
                for dst, payload in self._decide_and_forward(node, j, self.tour.times[j]).items():
                    if dst in out:
                        raise RuntimeError("token collision at setup")
                    out[dst] = payload
        return out

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        out: Outbox = {}
        for _sender, (j, y_time) in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            for dst, payload in self._decide_and_forward(node, j, y_time).items():
                if dst in out:
                    raise RuntimeError("token collision mid-scan")
                out[dst] = payload
        return out

    def is_done(self, node: NodeView) -> bool:
        return True  # termination by quiescence (tokens die at interval ends)


def run_interval_scan(
    graph: WeightedGraph,
    tour: EulerTour,
    spt_dist: Dict[Vertex, float],
    eps: float,
    alpha: Optional[int] = None,
    network: Optional[SyncNetwork] = None,
) -> IntervalScanResult:
    """Execute the §4.1 phase-1 scan natively; return BP₁ and rounds.

    Parameters
    ----------
    graph:
        The communication graph (must contain the MST edges the tour
        walks).
    tour:
        The Euler tour L of the MST.
    spt_dist:
        ``d_{T_rt}(rt, ·)`` — each vertex's approximate root distance
        (local knowledge after the approximate-SPT construction).
    eps:
        The Equation-(2) threshold parameter.
    alpha:
        Interval length (default ⌈√n⌉, as §4.1 sets it).
    """
    n = graph.n
    a = alpha if alpha is not None else (math.isqrt(max(n - 1, 0)) + 1)
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    algorithm = IntervalScan(tour, spt_dist, eps, a)
    rounds = net.run(algorithm)
    bp1: Set[int] = set()
    for v in graph.vertices():
        bp1 |= net.view(v).state.get("scan_joined", set())
    return IntervalScanResult(bp1=sorted(bp1), rounds=rounds, alpha=a)
