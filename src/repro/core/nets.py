"""Distributed construction of (α, β)-nets — §6 (Theorem 3).

The algorithm: all vertices start *active* (A₁ = V).  Each iteration
samples a uniform permutation π on the active set, computes LE lists
w.r.t. a graph H with ``d_G <= d_H <= (1+δ)·d_G`` (Theorem 4 — [FL16],
realized per DESIGN.md substitution 4), and a vertex joins the net iff it
is first in π within its Δ-ball of H.  A (1+δ)-approximate SPT rooted at
the new net points then deactivates every vertex within ``(1+δ)·Δ``.
After O(log n) iterations no active vertices remain w.h.p.; the result is
a ``((1+δ)·Δ, Δ/(1+δ))``-net.

The kill-counting analysis (each iteration halves the expected number of
active pairs) is exercised directly by the benchmarks, which record the
iteration count against the O(log n) bound.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.congest.bfs import build_bfs_tree
from repro.congest.ledger import RoundLedger
from repro.determinism import ensure_rng
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.lelists.le_lists import compute_le_lists, first_in_ball
from repro.spt.approx_spt import bkkl_round_cost, bounded_approx_spt


@dataclass
class NetResult:
    """Output of :func:`build_net`.

    Attributes
    ----------
    points:
        The net N.
    alpha / beta:
        The guaranteed covering radius ``(1+δ)·Δ`` and separation
        ``Δ/(1+δ)``.
    iterations:
        Number of kill iterations used (O(log n) w.h.p.).
    active_history:
        |A_i| per iteration (for the halving-rate benchmark).
    ledger:
        Round accounting (Theorem 3 target:
        (√n + D)·2^{Õ(√(log n·log(1/δ)))}).
    """

    points: Set[Vertex]
    delta_param: float  # Δ
    delta: float  # δ
    alpha: float
    beta: float
    iterations: int
    active_history: List[int] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        """Total charged CONGEST rounds."""
        return self.ledger.total


def build_net(
    graph: WeightedGraph,
    delta_param: float,
    delta: float = 0.5,
    rng: Optional[random.Random] = None,
    root: Optional[Vertex] = None,
    max_iterations: Optional[int] = None,
) -> NetResult:
    """Build a ``((1+δ)·Δ, Δ/(1+δ))``-net of ``graph`` (Theorem 3).

    Parameters
    ----------
    delta_param:
        The scale Δ > 0.
    delta:
        The approximation slack δ ∈ (0, 1) absorbed by taking
        ``α > (1+δ)·β`` (§1.4: "we can cope with the approximation by
        taking α > (1+ε)β").
    rng:
        Random source for the per-iteration permutations.
    max_iterations:
        Safety cap; default ``40·⌈log2(n+2)⌉``.

    Raises
    ------
    ValueError
        On invalid parameters.
    RuntimeError
        If the w.h.p. O(log n) iteration bound is breached (indicates a
        bug, not bad luck, given the 40× slack).
    """
    if delta_param <= 0:
        raise ValueError(f"delta_param (Δ) must be positive, got {delta_param}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    rng = ensure_rng(rng)
    n = graph.n
    if root is None:
        root = min(graph.vertices(), key=repr)
    cap = max_iterations if max_iterations is not None else 40 * (
        math.ceil(math.log2(n + 2))
    )

    ledger = RoundLedger()
    bfs = build_bfs_tree(graph, root)
    ledger.charge("bfs-tree", bfs.rounds)
    height = bfs.height

    active: Set[Vertex] = set(graph.vertices())
    net: Set[Vertex] = set()
    history: List[int] = []
    iterations = 0

    while active:
        iterations += 1
        if iterations > cap:
            raise RuntimeError(
                f"net construction exceeded {cap} iterations "
                f"({len(active)} vertices still active)"
            )
        history.append(len(active))

        le = compute_le_lists(
            graph,
            active,
            delta=delta,
            rng=rng,
            bfs_height=height,
            ledger=ledger,
            phase=f"iter{iterations}:le-lists",
        )
        joiners = {
            v for v in active if first_in_ball(le, v, delta_param) == v
        }
        # every active vertex is in its own LE list at distance 0, so the
        # first-in-ball query never returns None for v ∈ active
        assert joiners, "some active vertex must be a local minimum"
        net |= joiners

        # (1+δ)-approximate SPT rooted at the new net points; deactivate
        # everything within (1+δ)·Δ of them (tree distances).
        ledger.charge(
            f"iter{iterations}:approx-spt", bkkl_round_cost(n, height, delta)
        )
        tree_dist, _, _ = bounded_approx_spt(
            graph, joiners, radius=(1.0 + delta) * delta_param, eps=delta
        )
        active = {v for v in active if v not in tree_dist}

    return NetResult(
        points=net,
        delta_param=delta_param,
        delta=delta,
        alpha=(1.0 + delta) * delta_param,
        beta=delta_param / (1.0 + delta),
        iterations=iterations,
        active_history=history,
        ledger=ledger,
    )


def greedy_net(graph: WeightedGraph, radius: float) -> Set[Vertex]:
    """Sequential greedy (r, r)-net — the baseline §6 replaces.

    Scan vertices in id order; keep each vertex farther than ``radius``
    from all kept ones.  Inherently sequential (the paper's motivation for
    Theorem 3), but optimal parameters: r-covering and r-separated.
    """
    net: List[Vertex] = []
    covered_dist: Dict[Vertex, float] = {}
    for v in sorted(graph.vertices(), key=repr):
        if covered_dist.get(v, float("inf")) > radius:
            net.append(v)
            dist, _ = dijkstra(graph, v)
            for u, d in dist.items():
                if d < covered_dist.get(u, float("inf")):
                    covered_dist[u] = d
    return set(net)
