"""The [BFN16] lightness reduction (Lemma 5 of the paper, used in §4.4).

Lemma 5: from an algorithm that builds a spanner with lightness ℓ and
distortion t(u, v), one gets — for any 0 < δ < 1 — a spanner with lightness
``1 + δℓ`` and distortion ``t(u, v)/δ``.

The reduction "works by first changing the edge weights, and then
executing the original algorithm.  To compute the new weight of an edge
e ∈ E, we only need to know the parameter δ, the original weight w(e) and
whether e belongs [to] the MST" — which is why it ports to CONGEST
(every vertex knows its incident MST edges after the MST construction).

Concretely: ``w'(e) = w(e)`` for MST edges, ``w'(e) = w(e)/δ`` otherwise.
Then

* the MST is unchanged (non-tree edges only got heavier — cycle property);
* lightness: ``w(H) = w(H ∩ T) + δ·Σ_{e ∈ H∖T} w'(e)
  <= w(T) + δ·ℓ·w(T)``;
* distortion: ``d_{H,w} <= d_{H,w'} <= t·d_{G,w'} <= (t/δ)·d_{G,w}``
  (each edge's weight grows by a factor <= 1/δ).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.kruskal import kruskal_mst


def bfn_reweighted_graph(
    graph: WeightedGraph, delta: float, mst: Optional[WeightedGraph] = None
) -> WeightedGraph:
    """The reduction's reweighted graph: MST edges keep w, others get w/δ.

    Parameters
    ----------
    delta:
        The reduction parameter, in (0, 1).
    mst:
        The (deterministic) MST of ``graph``; recomputed if omitted.

    Raises
    ------
    ValueError
        If ``delta`` is outside (0, 1).
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    tree = mst if mst is not None else kruskal_mst(graph)

    def reweight(u: Vertex, v: Vertex, w: float) -> float:
        return w if tree.has_edge(u, v) else w / delta

    return graph.reweighted(reweight)


def bfn_bounds(
    base_lightness: float, base_distortion: float, delta: float
) -> Tuple[float, float]:
    """Lemma 5's output guarantees: (lightness 1 + δℓ, distortion t/δ)."""
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return 1.0 + delta * base_lightness, base_distortion / delta
