"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import (
    congest,
    csr,
    iteration,
    numpy_isolation,
    pool,
    prints,
    rng,
    typing_gate,
)

__all__ = [
    "congest",
    "csr",
    "iteration",
    "numpy_isolation",
    "pool",
    "prints",
    "rng",
    "typing_gate",
]
