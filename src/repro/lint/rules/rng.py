"""RNG discipline (``REP101``–``REP103``).

Seeded determinism is threaded end-to-end in this repo: profiles carry
seeds, constructions take an ``rng``, and two identically-seeded runs
must produce identical structures.  Three things break that chain:

* ``REP101`` — drawing from the *module-level* global generator
  (``random.random()``, ``random.shuffle(...)``,
  ``np.random.rand(...)``) or from ``random.SystemRandom``: global
  state another call site can perturb, or OS entropy no seed controls.
* ``REP102`` — constructing an *unseeded* generator
  (``random.Random()`` / ``default_rng()`` with no arguments): fresh
  OS entropy per call, unreproducible by definition.
* ``REP103`` — a function that constructs its own generator from a
  value none of its parameters influence (``random.Random(42)`` deep
  inside a helper): the seed is real but unreachable, so callers
  cannot thread determinism through.  Randomness-drawing functions
  accept ``rng`` or ``seed`` (see :func:`repro.determinism.ensure_rng`).

``REP101``/``REP102`` apply everywhere (a nondeterministic *test* is
as flaky as nondeterministic source); ``REP103`` is an API-design rule
and applies only inside the ``repro`` package.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Set

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

#: random-module callables that draw from (or reseed) the global generator.
_GLOBAL_DRAWS: Set[str] = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for nested Name/Attribute chains, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class RngDiscipline(Rule):
    """No global randomness, no unseeded generators, seeds threaded."""

    name = "rng-discipline"
    codes: ClassVar[Dict[str, str]] = {
        "REP101": "module-level global RNG call (random.*/np.random.*/SystemRandom)",
        "REP102": "unseeded generator: random.Random()/default_rng() without a seed",
        "REP103": "generator seeded by a value no function parameter influences",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # names bound by `from random import shuffle, ...`
        self._from_random: Set[str] = set()
        # stack of parameter-name sets for enclosing function defs
        self._params: List[Set[str]] = []

    # -- imports -------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_DRAWS or alias.name == "SystemRandom":
                    self._from_random.add(alias.asname or alias.name)
                    self.report(
                        node,
                        "REP101",
                        f"from-import of random.{alias.name} binds the global "
                        "generator; import random and thread a seeded "
                        "random.Random instead",
                    )
        self.generic_visit(node)

    # -- function scopes ----------------------------------------------
    def _visit_function(self, node: ast.FunctionDef) -> None:
        args = node.args
        names = {
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        self._params.append(names)
        self.generic_visit(node)
        self._params.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)  # type: ignore[arg-type]

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted in {f"random.{draw}" for draw in _GLOBAL_DRAWS}:
            self.report(
                node,
                "REP101",
                f"call to the global generator ({dotted}); construct a seeded "
                "random.Random and thread it instead",
            )
        elif dotted in {"random.SystemRandom", "SystemRandom"} and (
            dotted != "SystemRandom" or "SystemRandom" in self._from_random
        ):
            self.report(
                node,
                "REP101",
                "SystemRandom draws OS entropy; no seed can reproduce it",
            )
        elif isinstance(node.func, ast.Name) and node.func.id in self._from_random:
            self.report(
                node,
                "REP101",
                f"call to the global generator (random.{node.func.id}); "
                "construct a seeded random.Random and thread it instead",
            )
        elif dotted.startswith("np.random.") or dotted.startswith("numpy.random."):
            leaf = dotted.rsplit(".", 1)[1]
            if leaf == "default_rng":
                if not node.args and not node.keywords:
                    self.report(
                        node,
                        "REP102",
                        "default_rng() without a seed is fresh entropy per call",
                    )
            else:
                self.report(
                    node,
                    "REP101",
                    f"call to numpy's global generator ({dotted}); use a "
                    "seeded Generator from default_rng(seed)",
                )
        elif dotted == "random.Random":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "REP102",
                    "random.Random() without a seed is fresh entropy per "
                    "call; take rng/seed and use repro.determinism.ensure_rng",
                )
            else:
                self._check_threading(node)
        self.generic_visit(node)

    def _check_threading(self, node: ast.Call) -> None:
        """REP103: the seed expression must depend on a parameter."""
        if not self.ctx.in_repro_package() or not self._params:
            return
        reachable: Set[str] = set()
        for scope in self._params:
            reachable |= scope
        seed_exprs: List[ast.expr] = list(node.args) + [
            kw.value for kw in node.keywords
        ]
        for expr in seed_exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and sub.id in reachable:
                    return
        self.report(
            node,
            "REP103",
            "generator seeded by a value no enclosing-function parameter "
            "influences; accept rng/seed so callers control determinism",
        )
