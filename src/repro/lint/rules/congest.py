"""CONGEST activity-contract conformance (``REP401``–``REP403``).

Node programs (subclasses of
:class:`~repro.congest.algorithm.CongestAlgorithm`) see the world
through the :class:`~repro.congest.algorithm.NodeView` public API.
The sparse-activation engine's correctness — and the sparse/dense
parity suite — depends on programs not reaching around it:

* ``REP401`` — touching a private attribute of the node view
  (``node._network``, ``node._wake``, ``node._incident``) or naming
  ``SyncNetwork`` inside a node program: that is the engine's side of
  the boundary, and going around ``NodeView`` breaks the activity
  accounting (and any future engine swap).
* ``REP402`` — calling ``request_wake()`` in a program that declares
  ``always_active = True``: the poller is stepped every round anyway,
  so the wake request signals a misunderstanding of which contract
  the program is under (and would change behaviour if the
  ``always_active`` flag were ever dropped).
* ``REP403`` — constructing ``NodeView(...)`` directly: views are
  created by the engine only (the module docstring's explicit rule);
  a hand-built view has no network wiring and silently reads round 0.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Optional, Set, Union

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

#: NodeView method hooks whose second positional parameter is the view.
_HOOKS: Set[str] = {"setup", "step", "is_done", "finish"}

#: Modules allowed to construct NodeView / touch its internals: the
#: engine itself and the contract definition.
_ENGINE_MODULES: Set[str] = {"repro.congest.simulator", "repro.congest.algorithm"}


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@register
class CongestContract(Rule):
    """Node programs stay on their side of the NodeView boundary."""

    name = "congest-contract"
    codes: ClassVar[Dict[str, str]] = {
        "REP401": "node program reaches around the NodeView API",
        "REP402": "request_wake() inside an always_active node program",
        "REP403": "NodeView constructed outside the engine",
    }

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.module not in _ENGINE_MODULES

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._in_program = 0
        self._always_active = False
        self._node_params: List[Set[str]] = []

    # -- program detection ---------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if "CongestAlgorithm" not in _base_names(node):
            self.generic_visit(node)
            return
        always_active = False
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "always_active"
                    and isinstance(value, ast.Constant)
                    and value.value is True
                ):
                    always_active = True
        outer_program, outer_flag = self._in_program, self._always_active
        self._in_program += 1
        self._always_active = always_active
        self.generic_visit(node)
        self._in_program, self._always_active = outer_program, outer_flag

    def _visit_method(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        params: Set[str] = set()
        if self._in_program:
            args = [a.arg for a in node.args.posonlyargs + node.args.args]
            if node.name in _HOOKS and len(args) >= 2:
                params.add(args[1])
            params.update(a for a in args[1:] if a == "node")
        self._node_params.append(params)
        self.generic_visit(node)
        self._node_params.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_method(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_method(node)

    def _is_node_name(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and any(
            node.id in params for params in self._node_params
        )

    # -- REP401 / REP402 / REP403 --------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._in_program
            and node.attr.startswith("_")
            and self._is_node_name(node.value)
        ):
            assert isinstance(node.value, ast.Name)
            self.report(
                node,
                "REP401",
                f"{node.value.id}.{node.attr} is engine-private state; node "
                "programs use the public NodeView API only",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._in_program and node.id == "SyncNetwork":
            self.report(
                node,
                "REP401",
                "node programs must not touch SyncNetwork; all network "
                "access goes through the NodeView the engine hands in",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._in_program
            and self._always_active
            and isinstance(func, ast.Attribute)
            and func.attr == "request_wake"
            and self._is_node_name(func.value)
        ):
            self.report(
                node,
                "REP402",
                "request_wake() is dead under always_active=True; pick one "
                "activity contract (drop the flag or the wake request)",
            )
        if isinstance(func, ast.Name) and func.id == "NodeView":
            self.report(
                node,
                "REP403",
                "NodeView instances are created by SyncNetwork only; "
                "hand-built views have no round counter or wake wiring",
            )
        self.generic_visit(node)
