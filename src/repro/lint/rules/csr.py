"""CSR freeze discipline (``REP301``–``REP302``).

:class:`~repro.graphs.csr.CSRGraph` is the read-only fast path: its
arrays (``indptr``/``indices``/``weights``/``verts``) are public so
hot loops can bind them to locals, and the whole design rests on
nobody writing to them — ``WeightedGraph.freeze()`` caches one CSR
per graph, so a write corrupts *every* consumer sharing the cache
(certify batches, oracle potentials, congest fan-out).  Per-query
mutable state belongs in separate scratch arrays reset via the
version-stamp pattern (see ``repro.analysis.certify`` /
``repro.oracle.oracle``), never in the frozen arrays.

The rule tracks names bound from ``*.freeze()``, ``*.to_csr()``,
``CSRGraph(...)`` / ``CSRGraph.from_weighted(...)`` and parameters
annotated ``CSRGraph``, then flags:

* ``REP301`` — stores: ``csr.weights[s] = w``, ``csr.indptr = [...]``,
  ``csr.indices += ...``, ``del csr.verts[i]``.
* ``REP302`` — mutating method calls on a frozen array:
  ``csr.indices.sort()``, ``csr.weights.append(...)``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Optional, Set, Union

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

_ARRAY_ATTRS: Set[str] = {"indptr", "indices", "weights", "verts"}
_MUTATORS: Set[str] = {
    "append", "byteswap", "clear", "extend", "fill", "frombytes", "fromfile",
    "fromlist", "insert", "partition", "pop", "remove", "resize", "reverse",
    "setflags", "sort",
}
_FREEZING_METHODS: Set[str] = {"freeze", "to_csr"}


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Identifier leaves of an annotation (handles string annotations)."""
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return set()
    names: Set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


@register
class CsrFreeze(Rule):
    """Frozen CSR arrays are never written."""

    name = "csr-freeze"
    codes: ClassVar[Dict[str, str]] = {
        "REP301": "store into an array of a frozen CSRGraph",
        "REP302": "mutating method call on a frozen CSRGraph array",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._scopes: List[Set[str]] = [set()]

    # -- frozen-name tracking ------------------------------------------
    def _is_freezing_expr(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id == "CSRGraph":
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _FREEZING_METHODS:
                return True
            if func.attr == "from_weighted":
                value = func.value
                return isinstance(value, ast.Name) and value.id == "CSRGraph"
        return False

    def _visit_scope(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        args = node.args
        frozen: Set[str] = set()
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if "CSRGraph" in _annotation_names(arg.annotation):
                frozen.add(arg.arg)
        self._scopes.append(frozen)
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def _is_frozen_name(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Name):
            return False
        return any(node.id in scope for scope in self._scopes)

    def _bind(self, targets: List[ast.expr], value: ast.expr) -> None:
        is_frozen = self._is_freezing_expr(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if is_frozen:
                    self._scopes[-1].add(target.id)
                else:
                    self._scopes[-1].discard(target.id)

    # -- stores (REP301) -----------------------------------------------
    def _frozen_array_of(self, node: ast.expr) -> Optional[str]:
        """'csr.weights' when ``node`` is a frozen array attribute."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _ARRAY_ATTRS
            and self._is_frozen_name(node.value)
        ):
            assert isinstance(node.value, ast.Name)
            return f"{node.value.id}.{node.attr}"
        return None

    def _check_store(self, target: ast.expr) -> None:
        # csr.indptr = ... (attribute rebinding)
        if isinstance(target, ast.Attribute) and self._is_frozen_name(target.value):
            assert isinstance(target.value, ast.Name)
            self.report(
                target,
                "REP301",
                f"rebinding {target.value.id}.{target.attr} on a frozen "
                "CSRGraph; build a new CSR instead",
            )
            return
        # csr.weights[s] = ... (element store)
        if isinstance(target, ast.Subscript):
            label = self._frozen_array_of(target.value)
            if label is not None:
                self.report(
                    target,
                    "REP301",
                    f"store into {label}[...] of a frozen CSRGraph; use a "
                    "version-stamped scratch array (see repro.analysis.certify)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self._bind(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target)
        if node.value is not None:
            self._bind([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind([item.optional_vars], item.context_expr)
        self.generic_visit(node)

    # -- mutating calls (REP302) ---------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            label = self._frozen_array_of(func.value)
            if label is not None:
                self.report(
                    node,
                    "REP302",
                    f"{label}.{func.attr}(...) mutates a frozen CSRGraph "
                    "array shared by every consumer of the freeze() cache",
                )
        self.generic_visit(node)
