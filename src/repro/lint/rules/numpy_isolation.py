"""numpy containment (``REP801``).

numpy is an *optional* accelerator, not a dependency: the whole suite
must run on a bare standard-library interpreter, so every ``import
numpy`` lives behind :mod:`repro.kernels`' guarded dispatch
(:func:`repro.kernels.dispatch.numpy_or_none`).  A numpy import in any
other ``repro`` module — even inside a function — would turn the
accelerator into a hard dependency of that layer the first time the
code path runs on a numpy-less host.  Consumers select a backend by
passing ``kernel="numpy"`` through the public kernel entry points
instead.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict

from repro.lint.context import FileContext
from repro.lint.program.contract import EXTERNAL_CONTRACT
from repro.lint.registry import Rule, register

#: Packages allowed to import numpy, read from the declared external
#: contract — this rule is the per-file enforcement of numpy's row
#: (the other rows are the program-level REP903).
_ALLOWED_PACKAGES = EXTERNAL_CONTRACT["numpy"]

_MESSAGE = (
    "import of numpy outside repro.kernels; numpy is an optional "
    "accelerator reached through the guarded kernel dispatch — pass "
    "kernel=\"numpy\" to the repro.kernels entry points instead"
)


@register
class NumpyIsolation(Rule):
    """``import numpy`` is for :mod:`repro.kernels` only."""

    name = "numpy-isolation"
    codes: ClassVar[Dict[str, str]] = {
        "REP801": "numpy imported outside repro.kernels (optional "
                  "accelerator; use the guarded kernel dispatch)",
    }

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        module = ctx.module
        if module is None or not ctx.in_repro_package():
            return False
        return not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in _ALLOWED_PACKAGES
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self.report(node, "REP801", _MESSAGE)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if node.level == 0 and (mod == "numpy" or mod.startswith("numpy.")):
            self.report(node, "REP801", _MESSAGE)
        self.generic_visit(node)
