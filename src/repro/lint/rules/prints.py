"""Output discipline (``REP701``).

Library code must not write to stdout: a ``print(...)`` buried in a
construction or the certify engine corrupts machine-readable output
(the JSON report a redirected ``repro bench`` writes), bypasses the
observability spine, and cannot be asserted on.  Library layers report
through :mod:`repro.obs` (counters, gauges, spans), return values, or
raised exceptions; only the CLI front-ends — ``cli.py`` and
``__main__.py`` — own the terminal.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

#: repro modules that legitimately print: the CLI front-ends.
_ALLOWED_MODULES = frozenset({"repro.cli", "repro.__main__"})


@register
class PrintDiscipline(Rule):
    """Bare ``print(...)`` is for the CLI front-ends only."""

    name = "print-discipline"
    codes: ClassVar[Dict[str, str]] = {
        "REP701": "bare print() in library code (report via repro.obs or "
                  "return values; printing belongs to cli.py/__main__.py)",
    }

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        return ctx.in_repro_package() and ctx.module not in _ALLOWED_MODULES

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            self.report(
                node,
                "REP701",
                "bare print() in library code; report through repro.obs "
                "(counter/gauge/span), return the value, or raise — stdout "
                "belongs to cli.py/__main__.py",
            )
        self.generic_visit(node)
