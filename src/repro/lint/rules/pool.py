"""Pool-boundary safety (``REP501``–``REP503``).

Everything crossing a :mod:`multiprocessing` pool boundary is pickled
(under the ``spawn`` start method — macOS/Windows default — *always*).
Lambdas and functions defined inside another function do not pickle;
code shipping them works on fork-start Linux and dies everywhere
else, which is exactly the class of latent bug CI on one platform
never catches.  The repo's pattern (``repro.analysis.certify``) is:
module-level worker functions, state shipped once through a
module-level ``initializer``.

* ``REP501`` — a ``lambda`` passed to a pool constructor or a
  dispatch method (``map``/``imap``/``imap_unordered``/``starmap``/
  ``apply_async``/``submit``/...).
* ``REP502`` — a function *defined inside the enclosing function*
  passed to a pool dispatch point: it closes over local (possibly
  mutable) state and is unpicklable under spawn.
* ``REP503`` — a pool ``initializer=`` that is not a plain
  module-level callable reference (``Name`` or dotted ``Attribute``).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Optional, Set, Union

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

_POOL_CONSTRUCTORS: Set[str] = {
    "Pool", "ProcessPoolExecutor", "ThreadPool",
}
_DISPATCH_METHODS: Set[str] = {
    "apply", "apply_async", "imap", "imap_unordered", "map", "map_async",
    "starmap", "starmap_async", "submit",
}


def _callable_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class PoolBoundary(Rule):
    """Only module-level, picklable callables cross pool boundaries."""

    name = "pool-boundary"
    codes: ClassVar[Dict[str, str]] = {
        "REP501": "lambda shipped into a multiprocessing pool",
        "REP502": "locally-defined function shipped into a pool",
        "REP503": "pool initializer is not a module-level callable reference",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # names bound to pool objects, per scope
        self._pool_names: List[Set[str]] = [set()]
        # names of functions defined locally (inside a function), per scope
        self._local_defs: List[Set[str]] = [set()]
        self._depth = 0

    # -- scope tracking ------------------------------------------------
    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        if self._depth > 0:
            self._local_defs[-1].add(node.name)
        self._depth += 1
        self._pool_names.append(set())
        self._local_defs.append(set())
        self.generic_visit(node)
        self._pool_names.pop()
        self._local_defs.pop()
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _is_pool_constructor(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and (
            _callable_name(node.func) in _POOL_CONSTRUCTORS
        )

    def _track_binding(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self._is_pool_constructor(value):
                self._pool_names[-1].add(target.id)
            else:
                self._pool_names[-1].discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_binding(target, node.value)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._track_binding(item.optional_vars, item.context_expr)
        self.generic_visit(node)

    def _is_pool_name(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and any(
            node.id in scope for scope in self._pool_names
        )

    def _is_local_def(self, name: str) -> bool:
        return any(name in scope for scope in self._local_defs)

    # -- dispatch points -----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._is_pool_constructor(node):
            self._check_dispatch(node, constructor=True)
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in _DISPATCH_METHODS
            and self._is_pool_name(node.func.value)
        ):
            self._check_dispatch(node, constructor=False)
        self.generic_visit(node)

    def _check_dispatch(self, node: ast.Call, constructor: bool) -> None:
        shipped: List[ast.expr] = list(node.args)
        initializer: Optional[ast.expr] = None
        for kw in node.keywords:
            if kw.arg == "initializer":
                initializer = kw.value
            shipped.append(kw.value)
        for arg in shipped:
            if isinstance(arg, ast.Lambda):
                self.report(
                    arg,
                    "REP501",
                    "lambdas do not pickle under the spawn start method; "
                    "ship a module-level function",
                )
            elif isinstance(arg, ast.Name) and self._is_local_def(arg.id):
                self.report(
                    arg,
                    "REP502",
                    f"{arg.id!r} is defined inside the enclosing function; "
                    "it closes over local state and does not pickle under "
                    "spawn — move it to module level",
                )
        if initializer is not None and not isinstance(
            initializer, (ast.Name, ast.Attribute)
        ):
            self.report(
                initializer,
                "REP503",
                "pool initializer must be a module-level callable reference "
                "(see _pool_init in repro.analysis.certify)",
            )
