"""Iteration-order leakage (``REP201``–``REP202``).

Sets and frozensets iterate in *hash* order.  For strings, bytes and
most composite keys that order changes per interpreter invocation
(``PYTHONHASHSEED``); even for small ints it is value-dependent, not
insertion-dependent.  When such an iteration feeds ordered output —
a list, RNG consumption, dict insertion order that later drives mail
delivery — two identically-seeded runs diverge.  This is exactly the
bug class of ``light_spanner``'s historical
``for c in set(cluster_of.values())``.

* ``REP201`` — a set-typed expression (literal, comprehension,
  ``set(...)``/``frozenset(...)`` call, or a local variable bound to
  one) iterated by a ``for`` statement or comprehension, or
  materialized by an order-preserving consumer (``list``, ``tuple``,
  ``enumerate``, ``iter``, ``str.join``).  The sortedness escape
  hatch: wrap the iterable in ``sorted(...)`` (with ``key=repr`` for
  mixed-type elements) — order-insensitive folds (``len``, ``sum``,
  ``min``, ``max``, ``any``, ``all``, set algebra) are fine as-is.
* ``REP202`` — directory listings (``os.listdir``, ``os.scandir``,
  ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob``)
  consumed without ``sorted(...)``: the OS returns entries in
  filesystem order, which differs across machines and runs.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Optional, Set, Union

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

#: Consumers for which hash order cannot leak into the result.
_ORDER_INSENSITIVE: Set[str] = {
    "all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum",
}
#: Consumers that preserve (and therefore leak) iteration order.
_ORDER_PRESERVING: Set[str] = {"enumerate", "iter", "list", "tuple"}

_LISTING_FUNCS: Set[str] = {
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob", "listdir", "scandir",
}
_LISTING_METHODS: Set[str] = {"iterdir", "glob", "rglob"}

_SetExpr = Union[ast.Set, ast.SetComp, ast.Call]


@register
class IterationOrder(Rule):
    """Hash-ordered iteration must not feed ordered consumption."""

    name = "iteration-order"
    codes: ClassVar[Dict[str, str]] = {
        "REP201": "iteration over a set/frozenset feeds ordered consumption",
        "REP202": "directory listing consumed without sorted(...)",
    }

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # stack of per-scope maps: local name -> bound to a set expression?
        self._scopes: List[Dict[str, bool]] = [{}]

    # -- scope tracking ------------------------------------------------
    def _visit_scope(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scopes[-1][target.id] = is_set
        self.generic_visit(node)

    # -- classification ------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
        return False

    def _call_name(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                return f"{func.value.id}.{func.attr}"
            return func.attr
        return ""

    # -- REP201 --------------------------------------------------------
    def _flag_set_iteration(self, iterable: ast.expr, where: str) -> None:
        if self._is_set_expr(iterable):
            self.report(
                iterable,
                "REP201",
                f"set iteration order feeds {where}; wrap the iterable in "
                "sorted(...) (key=repr for mixed-type elements) or fold "
                "order-insensitively",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, "this for loop")
        self.generic_visit(node)

    def _visit_comprehension_like(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
    ) -> None:
        ordered = not isinstance(node, (ast.SetComp,))
        if isinstance(node, ast.GeneratorExp):
            consumer = self.ctx.parent(node)
            if isinstance(consumer, ast.Call):
                name = self._call_name(consumer)
                if name in _ORDER_INSENSITIVE:
                    ordered = False
        if ordered:
            for gen in node.generators:
                self._flag_set_iteration(gen.iter, "an ordered comprehension")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_like(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_like(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_like(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_like(node)

    # -- calls: ordered consumers and listings -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self._call_name(node)
        if name in _ORDER_PRESERVING and len(node.args) >= 1:
            self._flag_set_iteration(node.args[0], f"{name}(...)")
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            self._flag_set_iteration(node.args[0], "str.join")
        self._check_listing(node)
        self.generic_visit(node)

    def _check_listing(self, node: ast.Call) -> None:
        name = self._call_name(node)
        is_listing = name in _LISTING_FUNCS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
            and not isinstance(node.func.value, ast.Name)
        )
        if isinstance(node.func, ast.Attribute) and node.func.attr in _LISTING_METHODS:
            # path.glob(...) on a Name receiver: glob.glob is covered above;
            # treat any receiver that is not the glob module as a Path-like
            if isinstance(node.func.value, ast.Name) and node.func.value.id != "glob":
                is_listing = True
        if not is_listing:
            return
        # climb through comprehension plumbing so sorted(p for p in
        # path.rglob(...)) is recognised as sorted consumption
        consumer: Optional[ast.AST] = self.ctx.parent(node)
        while isinstance(
            consumer,
            (ast.comprehension, ast.GeneratorExp, ast.ListComp, ast.SetComp),
        ):
            consumer = self.ctx.parent(consumer)
        if isinstance(consumer, ast.Call):
            cname = self._call_name(consumer)
            if cname in _ORDER_INSENSITIVE:
                return
        label = name if name else (
            node.func.attr if isinstance(node.func, ast.Attribute) else "listing"
        )
        self.report(
            node,
            "REP202",
            f"{label}(...) returns entries in filesystem "
            "order; wrap it in sorted(...)",
        )
