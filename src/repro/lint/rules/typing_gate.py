"""Strict-typing gate (``REP601``).

``mypy --strict`` runs in CI, but mypy is not part of the runtime
image — this rule is the *local* approximation of its
``disallow_untyped_defs``/``disallow_incomplete_defs`` checks, so the
annotation contract is enforced by ``repro lint`` alone on a machine
with nothing but the standard library.

Modules listed in :data:`STRICT_MODULES` (keep in sync with the
``[tool.mypy]`` allowlist in ``pyproject.toml`` — that list must only
shrink, this one must only grow) require every ``def`` — methods,
nested helpers, overloads alike — to annotate every parameter and the
return type.  ``self``/``cls`` in methods are exempt, matching mypy;
``__init__`` still annotates its return (``-> None``), matching
``--strict``.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Tuple, Union

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

#: Package prefixes under the strict-typing gate.  pyproject's mypy
#: allowlist (modules exempted from --strict) is the complement of
#: this list over repro.*; grow this list as packages are annotated.
STRICT_MODULES: Tuple[str, ...] = (
    "repro.analysis",
    "repro.congest",
    "repro.determinism",
    "repro.graphs",
    "repro.harness",
    "repro.kernels",
    "repro.lint",
    "repro.obs",
    "repro.oracle",
    "repro.serve",
    "repro.spanners",
)


@register
class TypingGate(Rule):
    """Strict-gate modules keep every def completely annotated."""

    name = "typing-gate"
    codes: ClassVar[Dict[str, str]] = {
        "REP601": "incomplete annotations in a mypy-strict module",
    }

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        module = ctx.module
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in STRICT_MODULES
        )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._class_depth = 0
        self._func_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer_class, outer_func = self._class_depth, self._func_depth
        self._class_depth, self._func_depth = self._class_depth + 1, 0
        self.generic_visit(node)
        self._class_depth, self._func_depth = outer_class, outer_func

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        is_method = self._class_depth > 0 and self._func_depth == 0
        has_staticmethod = any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        if is_method and positional and not has_staticmethod:
            positional = positional[1:]  # self / cls, exempt as in mypy
        missing: List[str] = [
            a.arg
            for a in positional + list(args.kwonlyargs)
            if a.annotation is None
        ]
        for vararg, star in ((args.vararg, "*"), (args.kwarg, "**")):
            if vararg is not None and vararg.annotation is None:
                missing.append(star + vararg.arg)
        if missing:
            self.report(
                node,
                "REP601",
                f"def {node.name} leaves {', '.join(repr(m) for m in missing)} "
                "unannotated in a mypy-strict module",
            )
        if node.returns is None:
            self.report(
                node,
                "REP601",
                f"def {node.name} lacks a return annotation "
                "(--strict requires '-> None' even on __init__)",
            )
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)
