"""Diagnostic records produced by the analyzer.

A :class:`Diagnostic` names one finding at one source location.  The
tuple ordering (path, line, column, code) is the canonical report
order, so renderings are deterministic for any fixed input tree —
the analyzer holds itself to the iteration-order rules it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

JsonValue = Union[str, int]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One analyzer finding, anchored to a precise source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, JsonValue]:
        """JSON-serializable dict for ``repro lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
