"""Documented line-level suppressions.

Syntax, on the same physical line as the diagnostic::

    risky_call()  # repro: allow[REP101] -- seeded upstream by the CLI

* The bracket list may name several codes: ``allow[REP101, REP201]``.
* The ``-- justification`` clause is **mandatory**: a waiver without a
  written reason is itself a finding (``REP001``) and suppresses
  nothing, so undocumented suppressions cannot accumulate.
* Unknown codes are findings (``REP002``); a documented waiver that
  matches no diagnostic on its line is dead and flagged (``REP003``).

Comments are recognised via :mod:`tokenize`, not substring search, so
string literals that *contain* suppression-shaped text (e.g. the
analyzer's own test fixtures) are never treated as waivers.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.lint.diagnostics import Diagnostic

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[^\]]*)\]"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"
)
_MARKER_RE = re.compile(r"#\s*repro\s*:")


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` waiver on one physical line."""

    line: int
    codes: Tuple[str, ...]
    justification: str
    used: bool = field(default=False)

    @property
    def documented(self) -> bool:
        """True when the mandatory justification clause is present."""
        return bool(self.justification.strip())


def parse_suppressions(
    path: str, source: str
) -> Tuple[Dict[int, Suppression], List[Diagnostic]]:
    """Extract waivers from ``source``.

    Returns ``(line -> suppression, diagnostics)`` where the
    diagnostics cover malformed waivers (``REP001``): a ``# repro:``
    marker comment that does not parse, an empty code list, or a
    missing/empty justification.  Undocumented waivers are *not*
    entered into the suppression map — they must not suppress.
    """
    suppressions: Dict[int, Suppression] = {}
    diagnostics: List[Diagnostic] = []

    def bad(line: int, col: int, message: str) -> None:
        diagnostics.append(
            Diagnostic(path=path, line=line, col=col, code="REP001", message=message)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []  # the engine reports the parse failure as REP000

    for tok in tokens:
        if tok.type != tokenize.COMMENT or not _MARKER_RE.search(tok.string):
            continue
        line, col = tok.start
        match = _ALLOW_RE.search(tok.string)
        if match is None:
            bad(line, col, "'# repro:' comment is not a valid allow[...] waiver")
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        justification = (match.group("why") or "").strip()
        if not codes:
            bad(line, col, "allow[] names no rule codes")
            continue
        if not justification:
            bad(
                line,
                col,
                f"allow[{', '.join(codes)}] lacks the mandatory "
                "'-- justification' clause",
            )
            continue
        suppressions[line] = Suppression(
            line=line, codes=codes, justification=justification
        )
    return suppressions, diagnostics
