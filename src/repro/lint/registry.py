"""Rule base class and the global rule registry.

A rule is an :class:`ast.NodeVisitor` subclass declaring the codes it
can emit (``codes``: code -> one-line summary).  Registration is by
decorator; the engine instantiates every registered rule whose
:meth:`Rule.applies` accepts the file.  Engine-level codes (parse
errors, suppression hygiene) are declared here too so
``all_codes()`` is the single source of truth for what ``allow[...]``
may name.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Dict, List, Type, TypeVar

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.program.codes import PROGRAM_CODES

#: Codes emitted by the engine itself rather than a registered rule.
ENGINE_CODES: Dict[str, str] = {
    "REP000": "file does not parse (syntax error, bad encoding, NUL bytes)",
    "REP001": "malformed suppression: missing or empty '-- justification'",
    "REP002": "suppression names an unknown rule code",
    "REP003": "suppression matches no diagnostic on its line",
}


class Rule(ast.NodeVisitor):
    """Base class for analyzer rules.

    Subclasses set ``name`` (kebab-case family id) and ``codes`` and
    implement ``visit_*`` methods, calling :meth:`report` on findings.
    One instance is created per (rule, file) pair, so per-file state
    lives on ``self``.
    """

    name: ClassVar[str] = ""
    codes: ClassVar[Dict[str, str]] = {}

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.diagnostics: List[Diagnostic] = []

    @classmethod
    def applies(cls, ctx: FileContext) -> bool:
        """Whether this rule should run on ``ctx`` (default: every file)."""
        return True

    def report(self, node: ast.AST, code: str, message: str) -> None:
        """Record a finding anchored at ``node``'s location."""
        if code not in type(self).codes:  # pragma: no cover - rule author error
            raise ValueError(f"{type(self).__name__} cannot emit {code}")
        self.diagnostics.append(
            Diagnostic(
                path=str(self.ctx.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    def run(self) -> List[Diagnostic]:
        """Visit the file's tree and return the findings."""
        self.visit(self.ctx.tree)
        return self.diagnostics


RULES: List[Type[Rule]] = []

R = TypeVar("R", bound=Type[Rule])


def register(rule: R) -> R:
    """Class decorator adding ``rule`` to the global registry."""
    if not rule.name or not rule.codes:  # pragma: no cover - rule author error
        raise ValueError(f"{rule.__name__} must declare name and codes")
    RULES.append(rule)
    return rule


def rule_catalog() -> Dict[str, str]:
    """Every known code -> summary; engine and program codes included."""
    catalog = dict(ENGINE_CODES)
    catalog.update(PROGRAM_CODES)
    for rule in RULES:
        catalog.update(rule.codes)
    return dict(sorted(catalog.items()))


def all_codes() -> List[str]:
    """Sorted list of every code the analyzer can emit."""
    return sorted(rule_catalog())
