"""Analyzer driver: file discovery, rule execution, suppression filtering.

:func:`lint_paths` is the library entry point the CLI wraps.  The
report is deterministic for a fixed tree: files are visited in sorted
order and diagnostics sort by (path, line, col, code) — the analyzer
obeys its own iteration-order rules.

Analysis is split in two so the whole-program passes can share the
suppression pipeline:

* :func:`analyze_file` does everything local to one file — decode,
  parse, suppression table, per-file rules, facts extraction — and
  returns a :class:`FileAnalysis`.  It never raises on bad input: a
  syntax error, undecodable bytes, or NUL bytes become a ``REP000``
  diagnostic for that file.
* :func:`finalize` merges per-file findings with any program-level
  findings, applies line-level ``allow[...]`` waivers to both, and
  emits stale-waiver (``REP003``) hygiene last — so a waiver justified
  by an import-graph finding goes stale the moment the edge disappears.

:class:`FileAnalysis` is picklable on purpose: ``--program`` runs cache
it per file, keyed by content hash (see :mod:`repro.lint.cache`), which
is what makes warm whole-program runs incremental.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import repro.lint.rules  # noqa: F401  (imported for the registration side effect)
from repro.lint.cache import AnalysisCache
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.program.analyzer import analyze_program
from repro.lint.program.codes import PROGRAM_CODES
from repro.lint.program.facts import FileFacts, extract_facts
from repro.lint.registry import ENGINE_CODES, RULES, rule_catalog
from repro.lint.suppress import Suppression, parse_suppressions


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files.

    Raises ``FileNotFoundError`` for a path that does not exist (the
    CLI maps this to the usage-error exit code).
    """
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(str(path))
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


@dataclass
class FileAnalysis:
    """Everything one file contributes, before suppression filtering.

    ``hygiene`` diagnostics (REP000–REP002) are never suppressible;
    ``findings`` are raw rule output still subject to ``allow[...]``
    waivers; ``facts`` feed the whole-program passes (None when the
    file did not parse).
    """

    path: str
    hygiene: List[Diagnostic] = field(default_factory=list)
    findings: List[Diagnostic] = field(default_factory=list)
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    facts: Optional[FileFacts] = None


def analyze_file(path: Path, content: Optional[bytes] = None) -> FileAnalysis:
    """Run every applicable per-file rule over one file.

    Never raises on bad input: undecodable bytes, NUL bytes, and syntax
    errors all come back as a ``REP000`` diagnostic so one broken file
    cannot take down a whole-tree run.
    """
    analysis = FileAnalysis(path=str(path))
    if content is None:
        content = path.read_bytes()
    try:
        source = content.decode("utf-8")
    except UnicodeDecodeError as exc:
        analysis.hygiene.append(Diagnostic(
            path=str(path), line=1, col=0, code="REP000",
            message=(
                f"file is not valid UTF-8 "
                f"(byte offset {exc.start}: {exc.reason})"
            ),
        ))
        return analysis
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        analysis.hygiene.append(Diagnostic(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code="REP000",
            message=f"file does not parse: {exc.msg}",
        ))
        return analysis
    except ValueError as exc:  # NUL bytes and friends
        analysis.hygiene.append(Diagnostic(
            path=str(path), line=1, col=0, code="REP000",
            message=f"file does not parse: {exc}",
        ))
        return analysis

    ctx = FileContext(path, source, tree)
    analysis.suppressions, malformed = parse_suppressions(str(path), source)
    analysis.hygiene.extend(malformed)

    known_codes = set(rule_catalog())
    for suppression in analysis.suppressions.values():
        for code in suppression.codes:
            if code not in known_codes:
                analysis.hygiene.append(Diagnostic(
                    path=str(path),
                    line=suppression.line,
                    col=0,
                    code="REP002",
                    message=f"allow[{code}] names an unknown rule code",
                ))

    for rule_cls in RULES:
        if not rule_cls.applies(ctx):
            continue
        analysis.findings.extend(rule_cls(ctx).run())

    analysis.facts = extract_facts(str(path), ctx.module, tree)
    return analysis


def finalize(
    analyses: Sequence[FileAnalysis],
    program_diagnostics: Sequence[Diagnostic] = (),
    *,
    program_ran: bool = False,
) -> List[Diagnostic]:
    """Apply waivers across per-file and program findings; add hygiene.

    A waiver naming only program codes is *not* reported stale when the
    program passes did not run — a plain ``repro lint`` must not nag
    about waivers that ``repro lint --program`` justifies.
    """
    by_line: Dict[Tuple[str, int], Suppression] = {}
    for analysis in analyses:
        for suppression in analysis.suppressions.values():
            suppression.used = False
            by_line[(analysis.path, suppression.line)] = suppression

    results: List[Diagnostic] = []
    for analysis in analyses:
        results.extend(analysis.hygiene)

    flat: List[Diagnostic] = []
    for analysis in analyses:
        flat.extend(analysis.findings)
    flat.extend(program_diagnostics)
    for diag in flat:
        suppression = by_line.get((diag.path, diag.line))
        if (
            suppression is not None
            and diag.code in suppression.codes
            and diag.code not in ENGINE_CODES
        ):
            suppression.used = True
        else:
            results.append(diag)

    for analysis in analyses:
        for suppression in analysis.suppressions.values():
            if suppression.used:
                continue
            if not program_ran and any(
                code in PROGRAM_CODES for code in suppression.codes
            ):
                continue  # only --program can vouch for these
            codes = ", ".join(suppression.codes)
            results.append(Diagnostic(
                path=analysis.path,
                line=suppression.line,
                col=0,
                code="REP003",
                message=f"allow[{codes}] suppresses nothing on this line; "
                "remove the stale waiver",
            ))
    return sorted(results)


def lint_file(path: Path) -> List[Diagnostic]:
    """Run every applicable per-file rule over one file and filter."""
    return finalize([analyze_file(path)])


def lint_paths(
    paths: Iterable[Path],
    *,
    program: bool = False,
    cache: Optional[AnalysisCache] = None,
) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; deterministic order.

    With ``program=True`` the whole-program passes (import graph,
    seed-taint, pool-safety) run over the combined facts.  With a
    ``cache``, per-file analyses are reused when file content is
    unchanged (keyed by sha256), making warm runs incremental.
    """
    analyses: List[FileAnalysis] = []
    for path in iter_python_files(paths):
        if cache is not None:
            content = path.read_bytes()
            key, cached = cache.load(path, content)
            if isinstance(cached, FileAnalysis):
                analyses.append(cached)
                continue
            analysis = analyze_file(path, content)
            cache.store(key, analysis)
        else:
            analysis = analyze_file(path)
        analyses.append(analysis)

    program_diagnostics: List[Diagnostic] = []
    if program:
        facts = [a.facts for a in analyses if a.facts is not None]
        program_diagnostics = analyze_program(facts)
    return finalize(analyses, program_diagnostics, program_ran=program)
