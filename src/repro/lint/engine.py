"""Analyzer driver: file discovery, rule execution, suppression filtering.

:func:`lint_paths` is the library entry point the CLI wraps.  The
report is deterministic for a fixed tree: files are visited in sorted
order and diagnostics sort by (path, line, col, code) — the analyzer
obeys its own iteration-order rules.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List

import repro.lint.rules  # noqa: F401  (imported for the registration side effect)
from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import RULES, rule_catalog
from repro.lint.suppress import parse_suppressions


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files.

    Raises ``FileNotFoundError`` for a path that does not exist (the
    CLI maps this to the usage-error exit code).
    """
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(str(path))
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def lint_file(path: Path) -> List[Diagnostic]:
    """Run every applicable rule over one file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="REP000",
                message=f"file does not parse: {exc.msg}",
            )
        ]

    ctx = FileContext(path, source, tree)
    suppressions, diagnostics = parse_suppressions(str(path), source)

    known_codes = set(rule_catalog())
    for suppression in suppressions.values():
        for code in suppression.codes:
            if code not in known_codes:
                diagnostics.append(
                    Diagnostic(
                        path=str(path),
                        line=suppression.line,
                        col=0,
                        code="REP002",
                        message=f"allow[{code}] names an unknown rule code",
                    )
                )

    for rule_cls in RULES:
        if not rule_cls.applies(ctx):
            continue
        for diag in rule_cls(ctx).run():
            suppression = suppressions.get(diag.line)
            if suppression is not None and diag.code in suppression.codes:
                suppression.used = True
            else:
                diagnostics.append(diag)

    for suppression in suppressions.values():
        if not suppression.used:
            codes = ", ".join(suppression.codes)
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=suppression.line,
                    col=0,
                    code="REP003",
                    message=f"allow[{codes}] suppresses nothing on this line; "
                    "remove the stale waiver",
                )
            )
    return sorted(diagnostics)


def lint_paths(paths: Iterable[Path]) -> List[Diagnostic]:
    """Lint every ``.py`` file under ``paths``; deterministic order."""
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(lint_file(path))
    return diagnostics
