"""``repro.lint`` — the repo-specific determinism & contract analyzer.

Every correctness claim this repository ships — seeded profiles,
bit-identical sparse/dense CONGEST parity, tolerance-gated benchmark
compares, 1e-9 certifier agreement — rests on invariants no generic
tool checks.  This package is the AST-based static analyzer that
machine-enforces them:

* **RNG discipline** (``REP101``–``REP103``) — no module-level global
  randomness, no unseeded generators, randomness threaded through
  ``rng``/``seed`` parameters.
* **Iteration-order leakage** (``REP201``–``REP202``) — no iteration
  over hash-ordered collections (or directory listings) where the
  order can reach ordered output, RNG consumption or mail delivery.
* **CSR freeze discipline** (``REP301``–``REP302``) — arrays of a
  frozen :class:`~repro.graphs.csr.CSRGraph` are never written;
  scratch state goes through the version-stamp pattern.
* **CONGEST contract** (``REP401``–``REP403``) — node programs touch
  the network only through the :class:`~repro.congest.algorithm.NodeView`
  API and keep ``request_wake``/``always_active`` usage consistent.
* **Pool-boundary safety** (``REP501``–``REP503``) — nothing
  unpicklable (lambdas, nested functions) crosses a
  :mod:`multiprocessing` pool boundary; initializers are module-level.
* **Typing gate** (``REP601``) — the ``mypy --strict`` packages stay
  fully annotated, enforced locally without mypy installed.
* **Output discipline** (``REP701``) — no bare ``print(...)`` in
  library code; stdout belongs to the CLI front-ends, library layers
  report through :mod:`repro.obs` or return values.
* **numpy isolation** (``REP801``) — ``import numpy`` only in the
  packages the external contract names (the per-file enforcement of
  one :data:`~repro.lint.program.contract.EXTERNAL_CONTRACT` row).

``repro lint --program`` adds the whole-program passes over the
combined tree (see :mod:`repro.lint.program`):

* **Import-graph contract** (``REP901``–``REP904``) — the declared
  layering (no upward imports), top-level cycle detection, external
  containment, and no undeclared packages.
* **Seed-taint** (``REP1001``–``REP1002``) — no call chain may seal
  the rng/seed determinism chain at silent defaults.
* **Pool-safety** (``REP1011``–``REP1013``) — nothing reachable from a
  multiprocessing worker writes module state, mutates frozen CSR
  arrays, or touches the process-global obs registry.

Violations are suppressed line-by-line with a *documented* waiver::

    risky_call()  # repro: allow[REP101] -- why this one is safe

The justification text after ``--`` is mandatory; an undocumented
``allow`` suppresses nothing and is itself a finding (``REP001``).

Run it as ``repro lint [paths] [--format json]``; exit code 0 means
clean, 1 means findings, 2 means usage error.
"""

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import iter_python_files, lint_file, lint_paths
from repro.lint.registry import Rule, all_codes, rule_catalog

__all__ = [
    "Diagnostic",
    "Rule",
    "all_codes",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "rule_catalog",
]
