"""SARIF 2.1.0 rendering for ``repro lint --format sarif``.

Static Analysis Results Interchange Format is what GitHub code
scanning ingests: the CI ``static-analysis`` job uploads this file so
findings annotate pull-request diffs inline.  The report declares one
SARIF rule per catalog code (so suppressed-in-UI state survives code
renames) and one result per diagnostic, with physical locations in
repo-relative URIs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import rule_catalog

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _uri(path: str) -> str:
    """Repo-relative forward-slash URI for a diagnostic path."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass
    return p.as_posix()


def sarif_report(diagnostics: Sequence[Diagnostic]) -> Dict[str, object]:
    """Build the SARIF log object for a finished lint run."""
    catalog = rule_catalog()
    rules: List[Dict[str, object]] = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "helpUri": "https://example.invalid/repro-lint#" + code.lower(),
        }
        for code, summary in sorted(catalog.items())
    ]
    rule_index = {code: i for i, code in enumerate(sorted(catalog))}
    results: List[Dict[str, object]] = []
    for diag in diagnostics:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(diag.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        if diag.code in rule_index:
            result["ruleIndex"] = rule_index[diag.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
