"""Whole-program orchestration: facts in, program diagnostics out.

The engine hands over one :class:`~repro.lint.engine.FileAnalysis` per
file; everything cross-file happens here — the index is built once and
shared by the import-graph and dataflow passes.  Program diagnostics
flow back through the engine's suppression finalisation, so a
``# repro: allow[REP901] -- why`` waiver on the offending import line
works exactly like it does for per-file rules.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.diagnostics import Diagnostic
from repro.lint.program.callgraph import ProgramIndex
from repro.lint.program.dataflow import pool_safety_pass, seed_taint_pass
from repro.lint.program.facts import FileFacts
from repro.lint.program.layering import layering_pass


def analyze_program(facts: Iterable[FileFacts]) -> List[Diagnostic]:
    """Run every whole-program pass over the given per-file facts."""
    index = ProgramIndex(facts)
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(layering_pass(index))
    diagnostics.extend(seed_taint_pass(index))
    diagnostics.extend(pool_safety_pass(index))
    return diagnostics
