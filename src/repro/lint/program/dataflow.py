"""Dataflow passes over the call graph: seed-taint and pool-safety.

Seed-taint (``REP1001``/``REP1002``)
------------------------------------
The interprocedural closure of the per-file REP1xx family.  A function
*needs a seed* when it constructs or drives randomness that its own
``rng``/``seed`` parameters are supposed to control:

* **base case** — it calls ``random.Random(...)`` /
  ``numpy.random.default_rng(...)`` / ``ensure_rng(...)`` with one of
  its seedish parameters in the arguments, or invokes a method on a
  seedish parameter (``rng.shuffle(...)``);
* **inductive case** — it threads one of its seedish parameters into a
  seed slot of a callee that itself needs a seed.

A call site *seals* the chain when it invokes a needs-seed callee and
fills **none** of its seedish parameters — every one of them silently
falls back to its default.  That is ``REP1002`` when the caller has a
seedish parameter it failed to thread, and ``REP1001`` when the caller
has none (the chain cannot be re-opened from above without an API
change).  Passing *any* explicit value (even a literal) into a seed
slot is a deliberate choice and is never flagged.

Pool-safety (``REP1011``–``REP1013``)
-------------------------------------
Functions transitively reachable from a :mod:`multiprocessing` worker
entry point (pool ``initializer=`` targets and callables shipped via
``imap``/``map``/``submit``/... — ``functools.partial`` unwrapped) run
in forked children where writes never come home and races corrupt
shared views:

* ``REP1011`` — writing module-level mutable state.  The *initializer
  itself* is exempt: populating per-process state from the initializer
  is the documented protocol (see ``repro.analysis.certify``).
* ``REP1012`` — mutating frozen CSR arrays (``indptr``/``indices``/
  ``weights``/``verts``) that may be mmap-backed and shared.
* ``REP1013`` — touching :mod:`repro.obs`'s process-global metrics
  registry instead of the snapshot/merge protocol (local
  ``MetricsRegistry``, picklable snapshot shipped back, parent merges).

Every finding names the witness chain from the pool entry so the fix
site is obvious.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.program.callgraph import ProgramIndex, fqn
from repro.lint.program.facts import (
    MODULE_SCOPE,
    CallFact,
    FileFacts,
    FunctionFacts,
)

#: external RNG constructors whose first argument / ``seed=`` keyword
#: is the seed.
_RNG_CONSTRUCTORS = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
}

#: the project's canonical seeded-RNG helper.
_ENSURE_RNG = "repro.determinism:ensure_rng"

#: module-level convenience functions that touch the process-global
#: obs registry.  ``repro.obs``'s re-exports resolve to these through
#: alias following, so one set covers both spellings.
_OBS_GLOBAL_FUNCTIONS = {
    f"repro.obs.metrics:{name}"
    for name in (
        "counter", "gauge", "histogram", "merge", "registry",
        "reset", "scalars", "snapshot",
    )
}


# -- seed-taint ---------------------------------------------------------
def seed_taint_pass(index: ProgramIndex) -> List[Diagnostic]:
    """Run the REP1001/REP1002 interprocedural seed-chain check."""
    needs_seed = _needs_seed_fixpoint(index)
    out: List[Diagnostic] = []
    for key in sorted(index.functions):
        ff, fn = index.functions[key]
        if not _in_library(ff):
            continue
        for call in fn.calls:
            callee_key = index.resolve_call(ff, fn, call)
            if callee_key is None or callee_key not in needs_seed:
                continue
            _, callee = index.functions[callee_key]
            finding = _check_seal(ff, fn, call, callee_key, callee)
            if finding is not None:
                out.append(finding)
    return out


def _in_library(ff: FileFacts) -> bool:
    return ff.module is not None and (
        ff.module == "repro" or ff.module.startswith("repro.")
    )


def _needs_seed_fixpoint(index: ProgramIndex) -> Set[str]:
    needs: Set[str] = set()
    for key, (ff, fn) in index.functions.items():
        if _seeds_directly(index, ff, fn):
            needs.add(key)
    if _ENSURE_RNG in index.functions:
        needs.add(_ENSURE_RNG)
    changed = True
    while changed:
        changed = False
        for key, (ff, fn) in index.functions.items():
            if key in needs or not fn.seed_params():
                continue
            for call in fn.calls:
                callee_key = index.resolve_call(ff, fn, call)
                if callee_key is None or callee_key not in needs:
                    continue
                _, callee = index.functions[callee_key]
                if _fills_seed_slot_seeded(call, callee):
                    needs.add(key)
                    changed = True
                    break
    return needs


def _seeds_directly(
    index: ProgramIndex, ff: FileFacts, fn: FunctionFacts
) -> bool:
    seed_names = {p.name for p in fn.seed_params()}
    if not seed_names:
        return False
    aliases = ff.alias_map()
    for call in fn.calls:
        head, _, rest = call.callee.partition(".")
        if head in seed_names and rest:
            return True  # method call on a seedish parameter
        absolute = (
            aliases[head] + (f".{rest}" if rest else "")
            if head in aliases else call.callee
        )
        if absolute in _RNG_CONSTRUCTORS and (
            call.seeded_pos or call.seeded_kw
        ):
            return True
    return False


def _map_filled_params(
    call: CallFact, callee: FunctionFacts
) -> Tuple[Set[str], Set[str]]:
    """(seedish params of callee that are filled, of those the seeded ones)."""
    filled: Set[str] = set()
    seeded: Set[str] = set()
    for i in range(min(call.n_pos, callee.n_positional)):
        param = callee.params[i]
        if param.seedish:
            filled.add(param.name)
            if i in call.seeded_pos:
                seeded.add(param.name)
    by_name = {p.name: p for p in callee.params}
    for kw in call.keywords:
        param = by_name.get(kw)
        if param is not None and param.seedish:
            filled.add(param.name)
            if kw in call.seeded_kw:
                seeded.add(param.name)
    return filled, seeded


def _fills_seed_slot_seeded(call: CallFact, callee: FunctionFacts) -> bool:
    _, seeded = _map_filled_params(call, callee)
    return bool(seeded)


def _check_seal(
    ff: FileFacts,
    fn: FunctionFacts,
    call: CallFact,
    callee_key: str,
    callee: FunctionFacts,
) -> Optional[Diagnostic]:
    seed_params = callee.seed_params()
    if not seed_params:
        return None
    if call.has_star:
        return None  # *args/**kwargs may carry the seed — stay quiet
    filled, _ = _map_filled_params(call, callee)
    if filled:
        return None  # some seed slot got an explicit value
    if any(not p.has_default for p in seed_params):
        return None  # a required seed slot is unfilled: runtime's business
    slots = ", ".join(p.name for p in seed_params)
    callee_name = callee_key.split(":", 1)[1]
    if fn.seed_params():
        own = ", ".join(p.name for p in fn.seed_params())
        return Diagnostic(
            path=ff.path, line=call.lineno, col=call.col, code="REP1002",
            message=(
                f"call to '{callee_name}' leaves its seed parameter(s) "
                f"[{slots}] at their defaults although the caller has "
                f"[{own}]; thread the caller's seed through"
            ),
        )
    where = (
        "module import time" if fn.qualname == MODULE_SCOPE
        else f"'{fn.qualname}'"
    )
    return Diagnostic(
        path=ff.path, line=call.lineno, col=call.col, code="REP1001",
        message=(
            f"call to '{callee_name}' at {where} leaves its seed "
            f"parameter(s) [{slots}] at their defaults and the caller "
            f"has no rng/seed parameter: the seed chain is sealed here; "
            f"accept and thread a seed, or pass one explicitly"
        ),
    )


# -- pool-safety --------------------------------------------------------
def pool_safety_pass(index: ProgramIndex) -> List[Diagnostic]:
    """Run the REP1011–REP1013 worker-reachability race checks."""
    entries = index.pool_entries()
    if not entries:
        return []
    initializer_roots = {
        target for _, entry, target in entries if entry.kind == "initializer"
    }
    roots = {target for _, _, target in entries}
    parents: Dict[str, Optional[str]] = {root: None for root in sorted(roots)}
    order: List[str] = []
    queue = deque(sorted(roots))
    edges = index.edges()
    while queue:
        node = queue.popleft()
        order.append(node)
        for callee_key, _ in edges.get(node, ()):
            if callee_key not in parents:
                parents[callee_key] = node
                queue.append(callee_key)
    out: List[Diagnostic] = []
    for key in order:
        ff, fn = index.functions[key]
        chain = _witness_chain(parents, key)
        if key not in initializer_roots:
            for write in fn.global_writes:
                out.append(Diagnostic(
                    path=ff.path, line=write.lineno, col=write.col,
                    code="REP1011",
                    message=(
                        f"'{fn.qualname}' writes module-level state "
                        f"'{write.name}' ({write.detail}) but runs in a "
                        f"pool worker ({chain}); worker writes never "
                        f"reach the parent — return results instead"
                    ),
                ))
        for write in fn.csr_writes:
            out.append(Diagnostic(
                path=ff.path, line=write.lineno, col=write.col,
                code="REP1012",
                message=(
                    f"'{fn.qualname}' mutates frozen CSR array "
                    f"'{write.name}' ({write.detail}) while reachable "
                    f"from a pool worker ({chain}); CSR views may be "
                    f"mmap-backed and shared — copy before mutating"
                ),
            ))
        for callee_key, call in edges.get(key, ()):
            if callee_key in _OBS_GLOBAL_FUNCTIONS:
                callee_name = callee_key.split(":", 1)[1]
                out.append(Diagnostic(
                    path=ff.path, line=call.lineno, col=call.col,
                    code="REP1013",
                    message=(
                        f"'{fn.qualname}' touches the process-global obs "
                        f"registry via '{callee_name}' while reachable "
                        f"from a pool worker ({chain}); use a local "
                        f"MetricsRegistry and ship its snapshot back for "
                        f"the parent to merge"
                    ),
                ))
    return out


def _witness_chain(parents: Dict[str, Optional[str]], key: str) -> str:
    chain: List[str] = []
    cursor: Optional[str] = key
    while cursor is not None:
        chain.append(cursor.split(":", 1)[1])
        cursor = parents.get(cursor)
    chain.reverse()
    if len(chain) == 1:
        return f"entry '{chain[0]}'"
    return "entry '" + chain[0] + "' via " + " -> ".join(chain[1:])
