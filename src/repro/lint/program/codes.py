"""Rule codes emitted by the whole-program passes.

Kept in a leaf module (no imports) so :mod:`repro.lint.registry` can
fold them into the catalog — ``allow[...]`` waivers must recognise the
program codes — without the registry depending on the analyzer itself.

``REP9xx`` is the import-graph family (layering contract, cycles,
external-dependency containment); ``REP10xx`` is the dataflow family
over the interprocedural call graph (seed-taint, pool-safety).
"""

from __future__ import annotations

from typing import Dict

#: Codes produced by the whole-program analyzer (``repro lint --program``).
PROGRAM_CODES: Dict[str, str] = {
    "REP901": "import violates the declared layering contract "
              "(a layer may only import layers below it)",
    "REP902": "module participates in a top-level import cycle",
    "REP903": "external dependency imported outside its contracted packages",
    "REP904": "module belongs to no layer the contract declares",
    "REP1001": "seed chain sealed: seeded construction called from a "
               "function with no rng/seed parameter of its own",
    "REP1002": "seed chain dropped: caller has an rng/seed parameter "
               "but does not thread it into the seeded callee",
    "REP1011": "function reachable from a multiprocessing worker writes "
               "module-level mutable state",
    "REP1012": "function reachable from a multiprocessing worker mutates "
               "frozen CSR arrays",
    "REP1013": "function reachable from a multiprocessing worker touches "
               "the process-global obs metrics registry",
}
