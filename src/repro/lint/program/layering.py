"""Import-graph pass: layering contract, cycles, external containment.

* ``REP901`` — an import that points *upward* in the declared layering
  (:data:`repro.lint.program.contract.LAYERS`).
* ``REP902`` — a top-level import cycle at module granularity.  Lazy
  (function-scoped / ``TYPE_CHECKING``) imports are exempt here — they
  are the sanctioned way to break a load-time cycle — but NOT exempt
  from REP901: laziness changes when an import runs, not which way the
  architecture points.
* ``REP903`` — a contracted external dependency imported from a package
  outside its allowlist (numpy's row is enforced per-file as REP801, so
  it is skipped here).
* ``REP904`` — a project module whose package appears in no declared
  layer: the contract must be extended before the analyzer accepts it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.program import contract
from repro.lint.program.callgraph import ProgramIndex


def layering_pass(index: ProgramIndex) -> List[Diagnostic]:
    """Run the REP901–REP904 import-graph checks."""
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_undeclared_modules(index))
    diagnostics.extend(_layer_violations(index))
    diagnostics.extend(_external_violations(index))
    diagnostics.extend(_cycles(index))
    return diagnostics


def _undeclared_modules(index: ProgramIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module, ff in sorted(index.modules.items()):
        if module != "repro" and not module.startswith("repro."):
            continue  # a src root may host non-repro helpers; not ours
        if contract.layer_of(module) is None:
            pkg = contract.package_of(module)
            out.append(Diagnostic(
                path=ff.path, line=1, col=0, code="REP904",
                message=(
                    f"module '{module}' belongs to package '{pkg}' which "
                    f"appears in no declared layer; add it to "
                    f"repro.lint.program.contract.LAYERS"
                ),
            ))
    return out


def _layer_violations(index: ProgramIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    edges = index.module_import_edges()
    for module in sorted(edges):
        ff = index.modules[module]
        for imported, line, col, _lazy in edges[module]:
            if contract.allowed_import(module, imported):
                continue
            src_layer = contract.layer_of(module)
            dst_layer = contract.layer_of(imported)
            assert src_layer is not None and dst_layer is not None
            out.append(Diagnostic(
                path=ff.path, line=line, col=col, code="REP901",
                message=(
                    f"'{module}' (layer {contract.layer_name(src_layer)}) "
                    f"may not import '{imported}' (layer "
                    f"{contract.layer_name(dst_layer)}): imports must "
                    f"point at the same layer or below"
                ),
            ))
    return out


def _external_violations(index: ProgramIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module, ff in sorted(index.modules.items()):
        if module != "repro" and not module.startswith("repro."):
            continue
        pkg = contract.package_of(module)
        for imp in ff.imports:
            top = imp.target.split(".")[0]
            if top == "numpy":
                continue  # REP801 owns numpy, per-file
            allowed = contract.EXTERNAL_CONTRACT.get(top)
            if allowed is None or pkg in allowed:
                continue
            where = (
                "packages {" + ", ".join(allowed) + "}"
                if allowed else "no library package (tests only)"
            )
            out.append(Diagnostic(
                path=ff.path, line=imp.lineno, col=imp.col, code="REP903",
                message=(
                    f"external dependency '{top}' is contracted to "
                    f"{where}; '{module}' may not import it"
                ),
            ))
    return out


def _cycles(index: ProgramIndex) -> List[Diagnostic]:
    """Tarjan SCCs over the *eager* (top-level) import graph."""
    edges = index.module_import_edges()
    eager: Dict[str, List[Tuple[str, int, int]]] = {
        module: [
            (imported, line, col)
            for imported, line, col, lazy in targets
            if not lazy and imported in edges
        ]
        for module, targets in edges.items()
    }
    sccs = _tarjan(eager)
    out: List[Diagnostic] = []
    for component in sccs:
        if len(component) < 2:
            continue
        cyclic: Set[str] = set(component)
        members = " <-> ".join(sorted(cyclic))
        for module in sorted(cyclic):
            ff = index.modules[module]
            for imported, line, col in eager[module]:
                if imported in cyclic:
                    out.append(Diagnostic(
                        path=ff.path, line=line, col=col, code="REP902",
                        message=(
                            f"top-level import of '{imported}' closes an "
                            f"import cycle ({members}); break it with a "
                            f"lazy import or by moving the shared code down"
                        ),
                    ))
    return out


def _tarjan(
    graph: Dict[str, List[Tuple[str, int, int]]]
) -> List[List[str]]:
    """Iterative Tarjan strongly-connected components."""
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in indices:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                indices[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            successors = graph.get(node, ())
            for i in range(edge_index, len(successors)):
                succ = successors[i][0]
                if succ not in indices:
                    work[-1] = (node, i + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == indices[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs
