"""Per-file facts for the whole-program passes.

One AST walk per file distils everything the cross-file passes need —
import edges, module-scope name bindings, conservative per-function
summaries (calls with argument shapes, global writes, CSR-array
mutations), class layouts, and :mod:`multiprocessing` pool entry
points.  The result (:class:`FileFacts`) is a frozen, picklable value:
it is what the content-hash cache stores, so a warm ``--program`` run
never re-parses an unchanged file.

Summaries are *intraprocedural* and syntactic on purpose: a call is
recorded as the dotted expression written at the call site plus which
argument slots were filled (and which of them reference an ``rng`` /
``seed`` parameter of the enclosing function).  All resolution —
aliases, class-scoped method lookup, ``functools.partial`` unwrapping —
happens later in :mod:`repro.lint.program.callgraph`, where every
file's facts are on hand.

Nested functions fold into their nearest module-level enclosing
function (or method): the analyzer over-approximates by assuming a
locally-defined function is called by its definer, which is the
conservative direction for both dataflow passes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: qualname used for statements executed at module import time.
MODULE_SCOPE = "<module>"

#: parameter names that carry the determinism chain.
_SEEDISH_EXACT = {"rng", "seed"}
_SEEDISH_SUFFIXES = ("_rng", "_seed")

#: callables that construct a :mod:`multiprocessing` pool / executor.
_POOL_CONSTRUCTORS = {"Pool", "ThreadPool", "ProcessPoolExecutor"}

#: callables that spawn one worker process around a ``target=`` entry
#: point (``multiprocessing.Process`` / a spawn context's ``Process``).
_PROCESS_CONSTRUCTORS = {"Process"}

#: pool / executor methods that ship a callable to workers.
_DISPATCH_METHODS = {
    "apply", "apply_async", "imap", "imap_unordered", "map", "map_async",
    "starmap", "starmap_async", "submit",
}

#: methods that mutate their receiver in place (list/dict/set/array).
_MUTATOR_METHODS = {
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "reverse", "setdefault", "sort", "update",
}

#: attributes of a frozen CSR view that must never be written.
_CSR_ARRAYS = {"indptr", "indices", "weights", "verts"}


def seedish(name: str) -> bool:
    """Whether a parameter name carries the rng/seed determinism chain."""
    return name in _SEEDISH_EXACT or name.endswith(_SEEDISH_SUFFIXES)


@dataclass(frozen=True)
class ImportFact:
    """One import statement edge out of this file."""

    lineno: int
    col: int
    target: str  # dotted module as imported ("repro.graphs.csr", "numpy")
    lazy: bool  # function-scoped or under `if TYPE_CHECKING:`


@dataclass(frozen=True)
class ParamFact:
    """One parameter of a summarised function."""

    name: str
    seedish: bool
    has_default: bool


@dataclass(frozen=True)
class CallFact:
    """One call site, summarised syntactically."""

    lineno: int
    col: int
    callee: str  # dotted expression as written ("f", "mod.f", "self.m")
    n_pos: int
    seeded_pos: Tuple[int, ...]  # positional slots referencing a seedish param
    keywords: Tuple[str, ...]
    seeded_kw: Tuple[str, ...]  # keyword slots referencing a seedish param
    has_star: bool  # *args / **kwargs present (slot mapping unknown)


@dataclass(frozen=True)
class WriteFact:
    """One state mutation inside a function body."""

    lineno: int
    col: int
    name: str  # the written module-global / the CSR attribute expression
    detail: str  # "assign" | "subscript" | "attribute" | "mutator:<meth>"


@dataclass(frozen=True)
class FunctionFacts:
    """Conservative intraprocedural summary of one function or method."""

    qualname: str  # "f", "Class.meth", or MODULE_SCOPE
    lineno: int
    params: Tuple[ParamFact, ...]  # positional (incl. posonly) then kwonly
    n_positional: int  # how many leading entries of params are positional
    is_method: bool  # first positional is self/cls (already dropped)
    calls: Tuple[CallFact, ...]
    global_writes: Tuple[WriteFact, ...]
    csr_writes: Tuple[WriteFact, ...]

    def seed_params(self) -> Tuple[ParamFact, ...]:
        """The parameters that carry the determinism chain."""
        return tuple(p for p in self.params if p.seedish)


@dataclass(frozen=True)
class PoolEntryFact:
    """A callable shipped into a multiprocessing pool or child process."""

    lineno: int
    target: str  # dotted expression of the worker callable as written
    kind: str  # "initializer" | "dispatch" | "process"


@dataclass(frozen=True)
class ClassFacts:
    """Class layout for class-scoped name resolution."""

    name: str
    bases: Tuple[str, ...]  # dotted base expressions as written
    methods: Tuple[str, ...]


@dataclass(frozen=True)
class FileFacts:
    """Everything the whole-program passes need from one file."""

    path: str
    module: Optional[str]  # dotted name under a src root, else None
    is_package: bool  # True for __init__.py files
    imports: Tuple[ImportFact, ...]
    aliases: Tuple[Tuple[str, str], ...]  # local name -> dotted target
    functions: Tuple[FunctionFacts, ...]
    classes: Tuple[ClassFacts, ...]
    pool_entries: Tuple[PoolEntryFact, ...]

    def alias_map(self) -> Dict[str, str]:
        return dict(self.aliases)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _unwrap_partial(node: ast.expr) -> ast.expr:
    """``functools.partial(f, ...)`` -> ``f`` (one level)."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("partial", "functools.partial") and node.args:
            return node.args[0]
    return node


@dataclass
class _FunctionAccumulator:
    """Mutable build state for one FunctionFacts."""

    qualname: str
    lineno: int
    params: Tuple[ParamFact, ...]
    n_positional: int
    is_method: bool
    seed_names: Set[str]
    locals: Set[str] = field(default_factory=set)
    globals_declared: Set[str] = field(default_factory=set)
    calls: List[CallFact] = field(default_factory=list)
    global_writes: List[WriteFact] = field(default_factory=list)
    csr_writes: List[WriteFact] = field(default_factory=list)

    def finish(self) -> FunctionFacts:
        return FunctionFacts(
            qualname=self.qualname,
            lineno=self.lineno,
            params=self.params,
            n_positional=self.n_positional,
            is_method=self.is_method,
            calls=tuple(self.calls),
            global_writes=tuple(self.global_writes),
            csr_writes=tuple(self.csr_writes),
        )


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names a bare assignment target binds.

    ``x = ...`` and ``x, (y, *z) = ...`` bind; ``x[k] = ...`` and
    ``x.attr = ...`` *store into* an existing object without binding,
    so they must not shadow a module global of the same name.
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _binding_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names the function body binds locally (shadowing module globals)."""
    bound: Set[str] = set()
    for node in ast.walk(fn):
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            targets = (node.target,)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets = (node.optional_vars,)
        elif isinstance(node, ast.NamedExpr):
            targets = (node.target,)
        for target in targets:
            bound.update(_binding_names(target))
    return bound


class _Extractor:
    """Single-pass facts extraction over one parsed file."""

    def __init__(
        self, path: str, module: Optional[str], tree: ast.Module
    ) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.imports: List[ImportFact] = []
        self.aliases: Dict[str, str] = {}
        self.functions: List[FunctionFacts] = []
        self.classes: List[ClassFacts] = []
        self.pool_entries: List[PoolEntryFact] = []
        self.module_globals: Set[str] = set()
        # stack state
        self._fn_stack: List[_FunctionAccumulator] = []
        self._class_stack: List[str] = []
        self._pool_names: List[Set[str]] = [set()]
        self._module_acc = _FunctionAccumulator(
            qualname=MODULE_SCOPE, lineno=1, params=(), n_positional=0,
            is_method=False, seed_names=set(),
        )

    # -- entry ---------------------------------------------------------
    def run(self, is_package: bool) -> FileFacts:
        for name in self._collect_module_globals():
            self.module_globals.add(name)
        self._walk_body(self.tree.body, lazy=False)
        functions = [*self.functions, self._module_acc.finish()]
        return FileFacts(
            path=self.path,
            module=self.module,
            is_package=is_package,
            imports=tuple(self.imports),
            aliases=tuple(sorted(self.aliases.items())),
            functions=tuple(functions),
            classes=tuple(self.classes),
            pool_entries=tuple(self.pool_entries),
        )

    def _collect_module_globals(self) -> Set[str]:
        names: Set[str] = set()
        for node in self.tree.body:
            targets: Sequence[ast.expr] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = (node.target,)
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        return names

    # -- scope helpers -------------------------------------------------
    def _acc(self) -> _FunctionAccumulator:
        return self._fn_stack[-1] if self._fn_stack else self._module_acc

    def _in_nested_function(self) -> bool:
        return len(self._fn_stack) > 0

    # -- the walk ------------------------------------------------------
    def _walk_body(self, body: Sequence[ast.stmt], lazy: bool) -> None:
        for stmt in body:
            self._walk_stmt(stmt, lazy)

    def _walk_stmt(self, node: ast.stmt, lazy: bool) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            self._handle_import(node, lazy)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._handle_function(node, lazy)
        elif isinstance(node, ast.ClassDef):
            self._handle_class(node, lazy)
        elif isinstance(node, ast.Global):
            self._acc().globals_declared.update(node.names)
            self._acc().locals.difference_update(node.names)
        elif isinstance(node, ast.If) and self._is_type_checking(node.test):
            self._walk_body(node.body, lazy=True)
            self._walk_body(node.orelse, lazy)
        else:
            self._handle_statement(node, lazy)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._walk_stmt(child, lazy)
                elif isinstance(child, ast.expr):
                    self._walk_expr(child)
                elif isinstance(child, (ast.excepthandler, ast.withitem,
                                        ast.match_case)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._walk_stmt(sub, lazy)
                        elif isinstance(sub, ast.expr):
                            self._walk_expr(sub)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    # -- imports -------------------------------------------------------
    def _handle_import(self, node: ast.stmt, lazy: bool) -> None:
        lazy = lazy or self._in_nested_function()
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.imports.append(ImportFact(
                    lineno=node.lineno, col=node.col_offset,
                    target=alias.name, lazy=lazy,
                ))
                local = alias.asname or alias.name.split(".")[0]
                self.aliases.setdefault(
                    local, alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from_base(node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    self.imports.append(ImportFact(
                        lineno=node.lineno, col=node.col_offset,
                        target=base, lazy=lazy,
                    ))
                    continue
                self.imports.append(ImportFact(
                    lineno=node.lineno, col=node.col_offset,
                    target=f"{base}.{alias.name}", lazy=lazy,
                ))
                self.aliases.setdefault(
                    alias.asname or alias.name, f"{base}.{alias.name}"
                )

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        if self.module is None:
            return None
        parts = self.module.split(".")
        # a package __init__ is its own package; a plain module's package
        # is its parent — level 1 refers to that package either way
        if not self._is_init():
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:-drop] if drop < len(parts) else []
        if node.module:
            parts = [*parts, node.module]
        return ".".join(parts) if parts else None

    def _is_init(self) -> bool:
        return self.path.endswith("__init__.py")

    # -- functions and classes -----------------------------------------
    def _handle_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", lazy: bool
    ) -> None:
        nested = self._in_nested_function()
        if nested:
            # fold the nested body into the enclosing function's summary
            self._acc().locals.add(node.name)
            self._walk_body(node.body, lazy=True)
            return
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        is_method = bool(self._class_stack) and not any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        if is_method and positional:
            positional = positional[1:]
        pos_defaults = len(args.defaults)
        params: List[ParamFact] = []
        for i, a in enumerate(positional):
            # defaults align to the tail of the *full* positional list
            full_index = i + (1 if is_method and (args.posonlyargs or args.args) else 0)
            total = len(args.posonlyargs) + len(args.args)
            has_default = full_index >= total - pos_defaults
            params.append(ParamFact(a.arg, seedish(a.arg), has_default))
        n_positional = len(params)
        for a, d in zip(args.kwonlyargs, args.kw_defaults):
            params.append(ParamFact(a.arg, seedish(a.arg), d is not None))
        qualname = (
            f"{'.'.join(self._class_stack)}.{node.name}"
            if self._class_stack else node.name
        )
        acc = _FunctionAccumulator(
            qualname=qualname,
            lineno=node.lineno,
            params=tuple(params),
            n_positional=n_positional,
            is_method=is_method,
            seed_names={p.name for p in params if p.seedish},
        )
        acc.locals = _local_bindings(node) | {
            a.arg for a in positional + list(args.kwonlyargs)
        }
        if args.vararg:
            acc.locals.add(args.vararg.arg)
        if args.kwarg:
            acc.locals.add(args.kwarg.arg)
        self._fn_stack.append(acc)
        self._pool_names.append(set())
        self._walk_body(node.body, lazy=True)
        self._pool_names.pop()
        self._fn_stack.pop()
        self.functions.append(acc.finish())

    def _handle_class(self, node: ast.ClassDef, lazy: bool) -> None:
        if self._in_nested_function():
            self._walk_body(node.body, lazy=True)
            return
        methods = tuple(
            stmt.name for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        bases = tuple(b for b in (_dotted(base) for base in node.bases) if b)
        self.classes.append(ClassFacts(node.name, bases, methods))
        self._class_stack.append(node.name)
        self._walk_body(node.body, lazy)
        self._class_stack.pop()

    # -- statements ----------------------------------------------------
    def _handle_statement(self, node: ast.stmt, lazy: bool) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_binding(target, node.value)
                self._record_store(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if getattr(node, "value", None) is not None or isinstance(
                node, ast.AugAssign
            ):
                self._record_store(node.target)
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None:
                    self._record_binding(item.optional_vars, item.context_expr)

    def _record_binding(self, target: ast.expr, value: ast.expr) -> None:
        """Track names bound to pool objects inside the current function."""
        if isinstance(target, ast.Name):
            if self._is_pool_constructor(value):
                self._pool_names[-1].add(target.id)
            else:
                self._pool_names[-1].discard(target.id)

    @staticmethod
    def _leaf_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _is_pool_constructor(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Call) and (
            self._leaf_name(node.func) in _POOL_CONSTRUCTORS
        )

    # -- stores (global writes / CSR mutations) ------------------------
    def _record_store(self, target: ast.expr) -> None:
        acc = self._acc()
        in_module_scope = acc is self._module_acc
        # CSR array stores: <expr>.weights[i] = v / <expr>.indptr = v
        chain = target
        if isinstance(chain, ast.Subscript):
            chain = chain.value
        if isinstance(chain, ast.Attribute) and chain.attr in _CSR_ARRAYS:
            # a constructor initializing its own attributes
            # (self.indptr = ... inside __init__) is construction, not
            # mutation of an existing shared CSR view
            constructor_self = (
                isinstance(chain.value, ast.Name)
                and chain.value.id == "self"
                and acc.qualname.endswith("__init__")
            )
            if not constructor_self:
                kind = (
                    "subscript" if isinstance(target, ast.Subscript)
                    else "attribute"
                )
                acc.csr_writes.append(WriteFact(
                    target.lineno, target.col_offset,
                    f"{_dotted(chain) or chain.attr}", kind,
                ))
        if in_module_scope:
            return  # module-level assignments *define* globals
        # module-global stores: X = / X[...] = / X.attr =
        if isinstance(target, ast.Name):
            name = target.id
            if name in acc.globals_declared:
                acc.global_writes.append(WriteFact(
                    target.lineno, target.col_offset, name, "assign",
                ))
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name):
            name = base.id
            if (
                name in self.module_globals or name in acc.globals_declared
            ) and name not in acc.locals:
                detail = (
                    "subscript" if isinstance(target, ast.Subscript) else "attribute"
                )
                acc.global_writes.append(WriteFact(
                    target.lineno, target.col_offset, name, detail,
                ))

    # -- expressions ---------------------------------------------------
    def _walk_expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._handle_call(sub)
            elif isinstance(sub, ast.Lambda):
                pass  # lambdas fold into the enclosing summary via walk

    def _references_seed(self, expr: ast.expr) -> bool:
        seed_names = self._acc().seed_names
        if not seed_names:
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id in seed_names
            for sub in ast.walk(expr)
        )

    def _handle_call(self, node: ast.Call) -> None:
        acc = self._acc()
        callee = _dotted(node.func)
        # mutator method on a module global: STATE.update(...)
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _MUTATOR_METHODS
        ):
            base = node.func.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                if isinstance(base, ast.Attribute) and base.attr in _CSR_ARRAYS:
                    acc.csr_writes.append(WriteFact(
                        node.lineno, node.col_offset,
                        _dotted(base) or base.attr,
                        f"mutator:{node.func.attr}",
                    ))
                base = base.value
            if (
                isinstance(base, ast.Name)
                and acc is not self._module_acc
                and (
                    base.id in self.module_globals
                    or base.id in acc.globals_declared
                )
                and base.id not in acc.locals
            ):
                acc.global_writes.append(WriteFact(
                    node.lineno, node.col_offset, base.id,
                    f"mutator:{node.func.attr}",
                ))
        # pool entry points
        if self._is_pool_constructor(node):
            for kw in node.keywords:
                if kw.arg == "initializer":
                    target = _dotted(_unwrap_partial(kw.value))
                    if target:
                        self.pool_entries.append(PoolEntryFact(
                            node.lineno, target, "initializer",
                        ))
        elif self._leaf_name(node.func) in _PROCESS_CONSTRUCTORS:
            # Process(target=...) — a daemon-style worker entry point;
            # everything reachable from it runs in a child process, so
            # the worker-reachability races apply exactly as they do to
            # pool dispatch targets.
            for kw in node.keywords:
                if kw.arg == "target":
                    target = _dotted(_unwrap_partial(kw.value))
                    if target:
                        self.pool_entries.append(PoolEntryFact(
                            node.lineno, target, "process",
                        ))
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in _DISPATCH_METHODS
            and isinstance(node.func.value, ast.Name)
            and any(node.func.value.id in s for s in self._pool_names)
        ):
            shipped: Optional[ast.expr] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg in ("func", "fn"):
                    shipped = kw.value
            if shipped is not None:
                target = _dotted(_unwrap_partial(shipped))
                if target:
                    self.pool_entries.append(PoolEntryFact(
                        node.lineno, target, "dispatch",
                    ))
        if not callee:
            return
        seeded_pos = tuple(
            i for i, arg in enumerate(node.args)
            if not isinstance(arg, ast.Starred) and self._references_seed(arg)
        )
        keywords = tuple(kw.arg for kw in node.keywords if kw.arg is not None)
        seeded_kw = tuple(
            kw.arg for kw in node.keywords
            if kw.arg is not None and self._references_seed(kw.value)
        )
        has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        )
        acc.calls.append(CallFact(
            lineno=node.lineno, col=node.col_offset, callee=callee,
            n_pos=sum(1 for a in node.args if not isinstance(a, ast.Starred)),
            seeded_pos=seeded_pos, keywords=keywords, seeded_kw=seeded_kw,
            has_star=has_star,
        ))


def extract_facts(path: str, module: Optional[str], tree: ast.Module) -> FileFacts:
    """Extract :class:`FileFacts` from one parsed file."""
    return _Extractor(path, module, tree).run(
        is_package=path.endswith("__init__.py")
    )
