"""Whole-program analysis for ``repro lint --program``.

The per-file rules see one AST at a time; this subpackage sees the
project.  It builds an import graph checked against the declared
layering contract (:mod:`~repro.lint.program.contract`), resolves a
conservative call graph from intraprocedural summaries
(:mod:`~repro.lint.program.facts`, :mod:`~repro.lint.program.callgraph`),
and runs two dataflow passes over it
(:mod:`~repro.lint.program.dataflow`): seed-taint (``REP1001``/
``REP1002``) and the pool-safety race detector (``REP1011``–
``REP1013``).  Findings are ordinary :class:`~repro.lint.diagnostics.
Diagnostic` values and honour line-level ``allow[...]`` waivers.
"""

from repro.lint.program.analyzer import analyze_program
from repro.lint.program.callgraph import ProgramIndex
from repro.lint.program.codes import PROGRAM_CODES
from repro.lint.program.contract import (
    EXTERNAL_CONTRACT,
    LAYERS,
    allowed_import,
    layer_of,
    package_of,
    render_contract,
)
from repro.lint.program.facts import FileFacts, extract_facts

__all__ = [
    "EXTERNAL_CONTRACT",
    "FileFacts",
    "LAYERS",
    "PROGRAM_CODES",
    "ProgramIndex",
    "allowed_import",
    "analyze_program",
    "extract_facts",
    "layer_of",
    "package_of",
    "render_contract",
]
