"""Symbol resolution and call-graph construction over extracted facts.

:class:`ProgramIndex` glues the per-file :class:`~repro.lint.program.facts.FileFacts`
into a whole-program view:

* ``module -> facts`` for every file that lives under a src root,
* ``"module:qualname" -> function summary`` for every module-level
  function, method, and the per-module ``<module>`` pseudo-function,
* dotted-name resolution through import aliases (following re-exports a
  few hops, so ``from repro.obs import merge`` resolves to the def in
  ``repro.obs.metrics``), class-scoped ``self.meth`` lookup with base
  classes, and ``ClassName(...)`` to ``ClassName.__init__``.

Resolution is *conservative*: anything it cannot pin to a project
definition (attribute calls on locals, externals, builtins) resolves to
``None`` and contributes no call edge.  The dataflow passes are
designed so that a missing edge can only suppress a finding, never
invent one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.program.facts import (
    MODULE_SCOPE,
    CallFact,
    ClassFacts,
    FileFacts,
    FunctionFacts,
    PoolEntryFact,
)

_MAX_ALIAS_HOPS = 4


def fqn(module: str, qualname: str) -> str:
    """The program-wide key for a function: ``module:qualname``."""
    return f"{module}:{qualname}"


class ProgramIndex:
    """Whole-program symbol table and call graph."""

    def __init__(self, facts: Iterable[FileFacts]) -> None:
        #: module name -> facts, for files under a src root
        self.modules: Dict[str, FileFacts] = {}
        #: every scanned file (pool entries in tests still count)
        self.files: Tuple[FileFacts, ...] = tuple(facts)
        #: "module:qualname" -> (owning file, summary)
        self.functions: Dict[str, Tuple[FileFacts, FunctionFacts]] = {}
        #: "module:ClassName" -> class layout
        self.classes: Dict[str, ClassFacts] = {}
        for ff in self.files:
            if ff.module is None:
                continue
            self.modules[ff.module] = ff
            for fn in ff.functions:
                self.functions[fqn(ff.module, fn.qualname)] = (ff, fn)
            for cls in ff.classes:
                self.classes[f"{ff.module}:{cls.name}"] = cls
        self._edges: Optional[Dict[str, List[Tuple[str, CallFact]]]] = None

    # -- symbol resolution ---------------------------------------------
    def resolve_dotted(self, ff: FileFacts, dotted: str) -> Optional[str]:
        """Resolve a dotted expression written in ``ff`` to a function fqn."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        aliases = ff.alias_map()
        if head in aliases:
            absolute = aliases[head] + (f".{rest}" if rest else "")
        elif ff.module is not None and self._defines(ff, head):
            absolute = f"{ff.module}.{dotted}"
        else:
            return None
        return self._resolve_absolute(absolute)

    def resolve_call(
        self, ff: FileFacts, caller: FunctionFacts, call: CallFact
    ) -> Optional[str]:
        """Resolve one call site to a project function fqn, or None."""
        if ff.module is None:
            return None
        callee = call.callee
        if callee.startswith("self.") and "." in caller.qualname:
            cls_name = caller.qualname.split(".", 1)[0]
            meth = callee.split(".", 1)[1]
            if "." in meth:
                return None  # self.attr.meth(...) — not resolvable
            return self._resolve_method(ff.module, cls_name, meth)
        return self.resolve_dotted(ff, callee)

    def resolve_class(self, ff: FileFacts, dotted: str) -> Optional[str]:
        """Resolve a dotted expression to a ``module:ClassName`` key."""
        if ff.module is None:
            return None
        head, _, rest = dotted.partition(".")
        aliases = ff.alias_map()
        if head in aliases:
            absolute = aliases[head] + (f".{rest}" if rest else "")
        elif any(c.name == head for c in ff.classes):
            absolute = f"{ff.module}.{dotted}"
        else:
            return None
        return self._resolve_absolute_class(absolute)

    def _defines(self, ff: FileFacts, name: str) -> bool:
        return any(f.qualname == name for f in ff.functions) or any(
            c.name == name for c in ff.classes
        )

    def _resolve_absolute(self, dotted: str, hops: int = 0) -> Optional[str]:
        if hops > _MAX_ALIAS_HOPS:
            return None
        module, symbol = self._split_module(dotted)
        if module is None:
            return None
        ff = self.modules[module]
        if len(symbol) == 1:
            name = symbol[0]
            key = fqn(module, name)
            if key in self.functions:
                return key
            if f"{module}:{name}" in self.classes:
                return self._class_init(module, name)
            alias = ff.alias_map().get(name)
            if alias is not None:
                return self._resolve_absolute(alias, hops + 1)
        elif len(symbol) == 2:
            cls_or_mod, name = symbol
            key = fqn(module, f"{cls_or_mod}.{name}")
            if key in self.functions:  # ClassName.meth referenced directly
                return key
            alias = ff.alias_map().get(cls_or_mod)
            if alias is not None:
                return self._resolve_absolute(f"{alias}.{name}", hops + 1)
        return None

    def _resolve_absolute_class(
        self, dotted: str, hops: int = 0
    ) -> Optional[str]:
        if hops > _MAX_ALIAS_HOPS:
            return None
        module, symbol = self._split_module(dotted)
        if module is None or len(symbol) != 1:
            return None
        name = symbol[0]
        if f"{module}:{name}" in self.classes:
            return f"{module}:{name}"
        alias = self.modules[module].alias_map().get(name)
        if alias is not None:
            return self._resolve_absolute_class(alias, hops + 1)
        return None

    def _split_module(
        self, dotted: str
    ) -> Tuple[Optional[str], Tuple[str, ...]]:
        """Longest project-module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for k in range(len(parts), 0, -1):
            module = ".".join(parts[:k])
            if module in self.modules:
                return module, tuple(parts[k:])
        return None, ()

    def _class_init(self, module: str, cls_name: str) -> Optional[str]:
        """``Cls(...)`` resolves to ``Cls.__init__`` (walking bases)."""
        return self._resolve_method(module, cls_name, "__init__")

    def _resolve_method(
        self, module: str, cls_name: str, meth: str, depth: int = 0
    ) -> Optional[str]:
        if depth > 4:
            return None
        cls = self.classes.get(f"{module}:{cls_name}")
        if cls is None:
            return None
        if meth in cls.methods:
            return fqn(module, f"{cls_name}.{meth}")
        for base in cls.bases:
            base_key = self.resolve_class(self.modules[module], base)
            if base_key is None:
                continue
            base_module, base_name = base_key.split(":", 1)
            found = self._resolve_method(base_module, base_name, meth, depth + 1)
            if found is not None:
                return found
        return None

    # -- graph views ---------------------------------------------------
    def edges(self) -> Dict[str, List[Tuple[str, CallFact]]]:
        """Adjacency: caller fqn -> [(callee fqn, call site)]."""
        if self._edges is None:
            adjacency: Dict[str, List[Tuple[str, CallFact]]] = {}
            for key, (ff, fn) in self.functions.items():
                out: List[Tuple[str, CallFact]] = []
                for call in fn.calls:
                    callee = self.resolve_call(ff, fn, call)
                    if callee is not None:
                        out.append((callee, call))
                adjacency[key] = out
            self._edges = adjacency
        return self._edges

    def pool_entries(self) -> List[Tuple[FileFacts, PoolEntryFact, str]]:
        """Every pool entry resolved to a project function fqn."""
        resolved: List[Tuple[FileFacts, PoolEntryFact, str]] = []
        for ff in self.files:
            for entry in ff.pool_entries:
                target = self.resolve_dotted(ff, entry.target)
                if target is not None:
                    resolved.append((ff, entry, target))
        return resolved

    def module_import_edges(self) -> Dict[str, List[Tuple[str, int, int, bool]]]:
        """Module-granularity import graph.

        Returns ``module -> [(imported module, line, col, lazy)]`` with
        import targets snapped to the longest project-module prefix
        (``from repro.graphs.csr import CSRGraph`` -> ``repro.graphs.csr``).
        External imports are excluded — they are REP903/REP801 business.
        """
        graph: Dict[str, List[Tuple[str, int, int, bool]]] = {}
        for module, ff in self.modules.items():
            out: List[Tuple[str, int, int, bool]] = []
            for imp in ff.imports:
                target_module, _ = self._split_module(imp.target)
                if target_module is not None and target_module != module:
                    out.append((target_module, imp.lineno, imp.col, imp.lazy))
            graph[module] = out
        return graph
