"""The declared architecture: layering contract and external containment.

This module is the **single source of truth** for which package may
import which.  The whole-program import pass (``REP901``–``REP904``)
enforces it, the per-file numpy rule (``REP801``) reads its external
section, DESIGN.md embeds :func:`render_contract`'s output verbatim
(asserted in sync by a test), and new packages must be added here
before the analyzer will accept them at all.

Semantics
---------
:data:`LAYERS` lists layers bottom-up.  A module may import

* any module of its **own package** (intra-package imports are free),
* any package in a **strictly lower** layer,
* any package in its **own layer** (sibling packages at one level are
  peers — e.g. ``repro.graphs`` and ``repro.kernels`` hand CSR columns
  back and forth; the module-granularity cycle check ``REP902`` keeps
  genuine import cycles out of such peer groups).

Imports *upward* are ``REP901`` — that is the arrow the contract
exists to forbid: the foundation must never know about the layers
built on top of it.  Function-scoped (lazy) imports are held to the
same direction discipline; laziness only changes *when* an import
runs, not which way the architecture points.

:data:`EXTERNAL_CONTRACT` maps optional third-party imports to the
repro packages allowed to import them.  numpy's row is enforced
per-file as ``REP801`` (so it gates even without ``--program``); every
other row is the program-level ``REP903``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Bottom-up layering: (layer name, packages in the layer).  A package
#: is the first two dotted components (``repro.graphs``); the bare
#: ``repro`` facade and single-module packages (``repro.cli``,
#: ``repro.io``, ...) name themselves.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundation", ("repro.determinism", "repro.obs")),
    ("data", ("repro.graphs", "repro.kernels", "repro.io")),
    ("model", ("repro.congest",)),
    ("structures", ("repro.mst", "repro.spt", "repro.spanners",
                    "repro.hopsets", "repro.lelists", "repro.traversal")),
    ("algorithms", ("repro.core", "repro.baselines")),
    ("serving", ("repro.oracle", "repro.serve")),
    ("analysis", ("repro.analysis",)),
    ("harness", ("repro.harness",)),
    ("tooling", ("repro.lint",)),
    ("frontend", ("repro", "repro.cli", "repro.__main__")),
)

#: Optional third-party imports and the packages allowed to use them.
#: An empty tuple would mean "no library package may import this at
#: all".  numpy's row is what the per-file REP801 rule enforces; the
#: rest are REP903.  networkx is confined to the lazy interop helpers
#: on :class:`repro.graphs.weighted_graph.WeightedGraph`.
EXTERNAL_CONTRACT: Dict[str, Tuple[str, ...]] = {
    "numpy": ("repro.kernels",),
    "networkx": ("repro.graphs",),
}

_LAYER_INDEX: Dict[str, int] = {
    pkg: i for i, (_, pkgs) in enumerate(LAYERS) for pkg in pkgs
}


def package_of(module: str) -> str:
    """The contract-granularity package a dotted module belongs to.

    ``repro.graphs.csr`` -> ``repro.graphs``; the facade module
    ``repro`` and top-level modules (``repro.cli``) name themselves.
    """
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module


def layer_of(module: str) -> Optional[int]:
    """Layer index of ``module`` (0 = foundation), None if undeclared."""
    return _LAYER_INDEX.get(package_of(module))


def layer_name(index: int) -> str:
    """Human-readable name of layer ``index``."""
    return LAYERS[index][0]


def allowed_import(importer: str, imported: str) -> bool:
    """Whether the contract permits ``importer`` to import ``imported``.

    Both are dotted module names inside the ``repro`` tree; modules
    outside any declared layer are handled by the caller (``REP904``).
    """
    src_pkg, dst_pkg = package_of(importer), package_of(imported)
    if src_pkg == dst_pkg:
        return True
    src_layer, dst_layer = _LAYER_INDEX.get(src_pkg), _LAYER_INDEX.get(dst_pkg)
    if src_layer is None or dst_layer is None:
        return True  # undeclared packages are REP904, not REP901
    return dst_layer <= src_layer


def render_contract() -> str:
    """The layering diagram DESIGN.md embeds (asserted in sync by test).

    Rendered top-down — the frontend at the top may import everything
    below it; the foundation at the bottom imports nothing.
    """
    rows: List[str] = [
        "```",
        "may import everything below; nothing may import upward",
    ]
    for i in range(len(LAYERS) - 1, -1, -1):
        name, pkgs = LAYERS[i]
        rows.append(f"  [{i}] {name:<10}  " + "  ".join(pkgs))
    rows.append("")
    rows.append("externals: " + "  ".join(
        f"{ext} -> {'{' + ', '.join(allowed) + '}' if allowed else '(tests only)'}"
        for ext, allowed in sorted(EXTERNAL_CONTRACT.items())
    ))
    rows.append("```")
    return "\n".join(rows)
