"""Content-hash cache for per-file analyses.

``repro lint --program`` parses and summarises every file before the
cross-file passes run; for a warm tree that work is pure waste.  The
cache stores each file's finished :class:`~repro.lint.engine.FileAnalysis`
(raw rule diagnostics, suppression table, extracted facts) in a pickle
keyed by ``sha256(version, path, content bytes)`` — touch a file and
its entry simply misses; the program passes themselves always recompute
(they are cheap and depend on *every* file's facts).

The cache directory defaults to ``.repro-lint-cache/`` under the
working directory and is safe to delete at any time.  Entries that
fail to load (version skew, truncation) are treated as misses and
overwritten.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Optional, Tuple

#: bump when FileAnalysis / FileFacts / rule semantics change shape.
CACHE_VERSION = "2"

DEFAULT_CACHE_DIR = Path(".repro-lint-cache")


class AnalysisCache:
    """Pickle-per-file cache keyed by content hash."""

    def __init__(self, directory: Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def key(self, path: Path, content: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(CACHE_VERSION.encode("ascii"))
        digest.update(b"\0")
        digest.update(str(path).encode("utf-8", "replace"))
        digest.update(b"\0")
        digest.update(content)
        return digest.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, path: Path, content: bytes) -> Tuple[str, Optional[object]]:
        """(cache key, cached analysis or None)."""
        key = self.key(path, content)
        entry = self._entry(key)
        try:
            with entry.open("rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return key, None
        self.hits += 1
        return key, value

    def store(self, key: str, value: object) -> None:
        """Best-effort write; a read-only tree must not break linting."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self._entry(key).with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(self._entry(key))
        except OSError:
            pass
