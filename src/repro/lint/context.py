"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per linted file: the parsed AST, a
parent map (rules frequently need "who consumes this node"), the
dotted module name when the file lives under a ``src`` root, and the
raw source lines for precise reporting.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, or None outside a ``src`` root.

    ``src/repro/core/slt.py`` maps to ``repro.core.slt``;
    ``src/repro/lint/__init__.py`` maps to ``repro.lint``.  Test and
    script files (no ``src`` ancestor) have no module identity — rules
    scoped to the installed package skip them.
    """
    parts = path.resolve().parts
    try:
        src_idx = len(parts) - 1 - parts[::-1].index("src")
    except ValueError:
        return None
    rel = parts[src_idx + 1 :]
    if not rel or not rel[-1].endswith(".py"):
        return None
    names = list(rel[:-1])
    stem = rel[-1][: -len(".py")]
    if stem != "__init__":
        names.append(stem)
    return ".".join(names) if names else None


class FileContext:
    """Everything a rule needs to analyze one file."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.module: Optional[str] = module_name_for(path)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self._parents.get(id(node))

    def in_repro_package(self) -> bool:
        """True when the file is part of the installed ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )
