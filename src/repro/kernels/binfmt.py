"""Versioned little-endian binary graph format (``.rpg``).

Layout — a fixed 64-byte header followed by the three raw CSR columns:

====================  ======  =====================================
field                 bytes   meaning
====================  ======  =====================================
magic                 8       ``b"RPROGRPH"``
version               u32     format version (currently 1)
header_size           u32     64; readers seek here for the payload
n                     u64     vertex count
m_arcs                u64     directed arc count (2x undirected edges)
payload_size          u64     bytes after the header (truncation check)
payload_crc32         u32     zlib CRC-32 of the whole payload
flags                 u32     reserved, 0
reserved              16      zeros
indptr                8(n+1)  int64 little-endian row offsets
indices               4m      int32 little-endian arc targets
weights               8m      float64 little-endian arc weights
====================  ======  =====================================

Vertex identity is positional (vertex ``i`` is row ``i``); labels are
not stored.  :func:`load_packed` validates magic, version, the exact
file size implied by the header, and (by default) the payload CRC
*before* exposing any array — a truncated or bit-flipped file raises
:class:`PackedFormatError` with the reason, never returns garbage
arrays.  Loading maps the file with :mod:`mmap` and serves the columns
as zero-copy ``memoryview`` casts, so a multi-GB graph costs no Python
objects beyond the view wrappers; the OS pages arcs in on demand.  On
big-endian hosts the columns are copied through ``array.byteswap``
instead (correctness over zero-copy on that rare platform).

:class:`PackWriter` streams a file in one pass — payload chunks in
layout order with a running CRC, header fixed up on close — which is
what lets :mod:`repro.kernels.genpack` emit 10^7-node graphs without
ever holding them in memory.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import zlib
from array import array
from types import TracebackType
from typing import Any, BinaryIO, Optional, Sequence, Type, Union, cast

from repro.graphs.csr import CSRGraph

MAGIC = b"RPROGRPH"
FORMAT_VERSION = 1
HEADER_SIZE = 64
_HEADER = struct.Struct("<8sIIQQQII16s")
_MAX_N = 2**31 - 2  # indices are int32

PathLike = Union[str, "os.PathLike[str]"]


class PackedFormatError(ValueError):
    """The file is not a valid ``.rpg`` graph (wrong magic, version,
    size, or checksum) — raised before any array is exposed."""


def _le(values: Union[Sequence[int], Sequence[float]], typecode: str) -> bytes:
    """``values`` as packed little-endian bytes of ``typecode``."""
    arr = array(typecode, values)
    if sys.byteorder == "big":
        arr.byteswap()
    return arr.tobytes()


class PackWriter:
    """Streaming single-pass ``.rpg`` writer.

    Callers :meth:`write` payload chunks in layout order (all of
    ``indptr``, then ``indices``, then ``weights``); :meth:`close`
    verifies the byte count and stamps the real header.  Use as a
    context manager — an exception aborts without stamping, so a
    half-written file never validates.
    """

    def __init__(self, path: PathLike, n: int, m_arcs: int) -> None:
        if n < 0 or n > _MAX_N:
            raise PackedFormatError(f"n={n} outside the int32-indexable range")
        self.path = os.fspath(path)
        self.n = n
        self.m_arcs = m_arcs
        self.payload_size = 8 * (n + 1) + 4 * m_arcs + 8 * m_arcs
        self._crc = 0
        self._written = 0
        self._fh: Optional[BinaryIO] = open(self.path, "wb")
        self._fh.write(b"\x00" * HEADER_SIZE)

    def write(self, chunk: Union[bytes, memoryview]) -> None:
        """Append one payload chunk (little-endian bytes, layout order)."""
        if self._fh is None:
            raise PackedFormatError("writer already closed")
        self._fh.write(chunk)
        self._crc = zlib.crc32(chunk, self._crc)
        self._written += len(chunk)

    def close(self) -> None:
        """Verify the payload length and stamp the header."""
        if self._fh is None:
            return
        fh, self._fh = self._fh, None
        try:
            if self._written != self.payload_size:
                raise PackedFormatError(
                    f"payload is {self._written} bytes, header promises "
                    f"{self.payload_size} (n={self.n}, m_arcs={self.m_arcs})"
                )
            fh.seek(0)
            fh.write(
                _HEADER.pack(
                    MAGIC, FORMAT_VERSION, HEADER_SIZE, self.n, self.m_arcs,
                    self.payload_size, self._crc, 0, b"\x00" * 16,
                )
            )
        finally:
            fh.close()

    def abort(self) -> None:
        """Close without stamping; the file stays invalid."""
        if self._fh is not None:
            fh, self._fh = self._fh, None
            fh.close()

    def __enter__(self) -> "PackWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def pack_arrays(
    path: PathLike,
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    chunk_rows: int = 1 << 18,
) -> None:
    """Pack raw CSR columns into ``path`` (chunked, bounded memory)."""
    n = len(indptr) - 1
    m_arcs = len(indices)
    if n < 0 or indptr[0] != 0 or indptr[-1] != m_arcs or len(weights) != m_arcs:
        raise PackedFormatError("inconsistent CSR columns")
    with PackWriter(path, n, m_arcs) as w:
        for lo in range(0, n + 1, chunk_rows):
            w.write(_le(indptr[lo:lo + chunk_rows], "q"))
        for lo in range(0, m_arcs, chunk_rows):
            w.write(_le(indices[lo:lo + chunk_rows], "i"))
        for lo in range(0, m_arcs, chunk_rows):
            w.write(_le(weights[lo:lo + chunk_rows], "d"))


def pack_csr(csr: CSRGraph, path: PathLike) -> None:
    """Pack a frozen :class:`CSRGraph` (labels are dropped: vertex ``i``
    of the file is position ``i`` of ``csr.verts``)."""
    pack_arrays(path, csr.indptr, csr.indices, csr.weights)


def _swapped(view: memoryview, typecode: str) -> "array[Any]":
    arr: "array[Any]" = array(typecode)
    arr.frombytes(view.tobytes())
    arr.byteswap()
    return arr


class PackedGraph:
    """A ``.rpg`` file served straight from ``mmap``.

    ``indptr``/``indices``/``weights`` are zero-copy ``memoryview``
    casts over the mapping (``'q'``/``'i'``/``'d'``) — indexable by
    both the pure-Python and numpy kernels without materializing a
    single per-vertex Python object.  Close (or use as a context
    manager) to release the mapping; the views raise once released.
    """

    __slots__ = ("path", "n", "m_arcs", "payload_size", "indptr", "indices",
                 "weights", "_mm", "_fh", "_mv")

    path: str
    n: int
    m_arcs: int
    payload_size: int
    indptr: Sequence[int]
    indices: Sequence[int]
    weights: Sequence[float]

    def __init__(self, path: PathLike, verify: bool = True) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[BinaryIO] = open(self.path, "rb")
        try:
            header = self._fh.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                raise PackedFormatError(
                    f"{self.path}: {len(header)}-byte file is shorter than "
                    f"the {HEADER_SIZE}-byte header"
                )
            magic, version, header_size, n, m_arcs, payload, crc, _flags, _r = (
                _HEADER.unpack(header)
            )
            if magic != MAGIC:
                raise PackedFormatError(
                    f"{self.path}: bad magic {magic!r} (not a .rpg graph)"
                )
            if version != FORMAT_VERSION:
                raise PackedFormatError(
                    f"{self.path}: unsupported format version {version} "
                    f"(this reader handles {FORMAT_VERSION})"
                )
            if header_size != HEADER_SIZE:
                raise PackedFormatError(
                    f"{self.path}: header_size {header_size} != {HEADER_SIZE}"
                )
            expected_payload = 8 * (n + 1) + 4 * m_arcs + 8 * m_arcs
            if payload != expected_payload:
                raise PackedFormatError(
                    f"{self.path}: payload_size {payload} inconsistent with "
                    f"n={n}, m_arcs={m_arcs} (expected {expected_payload})"
                )
            actual = os.fstat(self._fh.fileno()).st_size
            if actual != HEADER_SIZE + payload:
                raise PackedFormatError(
                    f"{self.path}: file is {actual} bytes, header promises "
                    f"{HEADER_SIZE + payload} — truncated or corrupt"
                )
            self.n = int(n)
            self.m_arcs = int(m_arcs)
            self.payload_size = int(payload)
            self._mm: Optional[mmap.mmap] = mmap.mmap(
                self._fh.fileno(), 0, access=mmap.ACCESS_READ
            )
            mv = memoryview(self._mm)
            self._mv: Optional[memoryview] = mv
            if verify:
                found = zlib.crc32(mv[HEADER_SIZE:])
                if found != crc:
                    raise PackedFormatError(
                        f"{self.path}: payload CRC32 {found:#010x} does not "
                        f"match header {crc:#010x} — corrupt file"
                    )
            ip_end = HEADER_SIZE + 8 * (self.n + 1)
            idx_end = ip_end + 4 * self.m_arcs
            if sys.byteorder == "little":
                self.indptr = cast(Sequence[int], mv[HEADER_SIZE:ip_end].cast("q"))
                self.indices = cast(Sequence[int], mv[ip_end:idx_end].cast("i"))
                self.weights = cast(Sequence[float], mv[idx_end:].cast("d"))
            else:  # rare host: copy + byteswap, correctness first
                self.indptr = _swapped(mv[HEADER_SIZE:ip_end], "q")
                self.indices = _swapped(mv[ip_end:idx_end], "i")
                self.weights = _swapped(mv[idx_end:], "d")
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Release the column views, the mapping and the file handle.

        If numpy arrays (or other buffer consumers) built over the
        columns are still alive, the mapping itself cannot be torn down
        yet — in that case the reference is dropped and the OS mapping
        is released when the last consumer is garbage-collected.
        """
        for name in ("indptr", "indices", "weights", "_mv"):
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                try:
                    view.release()
                except BufferError:
                    pass  # a zero-copy ndarray still holds this buffer
        mm = getattr(self, "_mm", None)
        if mm is not None:
            self._mm = None
            try:
                mm.close()
            except BufferError:
                pass  # unmapped once the exported arrays die
        fh = getattr(self, "_fh", None)
        if fh is not None:
            fh.close()

    def __enter__(self) -> "PackedGraph":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def load_packed(path: PathLike, verify: bool = True) -> PackedGraph:
    """Open a ``.rpg`` file (see :class:`PackedGraph`).

    ``verify=True`` (the default) checks the payload CRC32 up front —
    one sequential pass; pass ``verify=False`` to skip it on repeated
    loads of an already-validated cache entry (size/magic/version
    checks always run).
    """
    return PackedGraph(path, verify=verify)
