"""Streamed generation of packed ring-chords graphs.

The ``huge`` tier (10^6–10^7 vertices) cannot afford a
:class:`~repro.graphs.weighted_graph.WeightedGraph` — at that scale the
adjacency maps alone are gigabytes of Python objects.  Because the
ring-chords family is a pure function of ``(n, chords, seed)`` — fixed
neighbour offsets, hash-derived weights (see
:func:`repro.graphs.generators.ring_chord_weight`) — its CSR can be
written straight to a :class:`~repro.kernels.binfmt.PackWriter` in
vertex-chunked passes: one for ``indptr`` (a flat stride, the degree is
uniform), one for ``indices``, one for ``weights``.  Peak memory is one
chunk, regardless of ``n``.

:func:`ensure_packed` is the cache front-end the harness uses: generate
once into ``$REPRO_HUGE_CACHE`` (default: a ``repro-huge`` directory
under the system temp dir), atomically rename into place, and serve the
cached file on every later run.  The numpy fast path vectorizes the
chunk arithmetic (wrapping uint64 splitmix64, bit-identical to the
pure-Python hash); without numpy the same bytes emerge from plain
loops, only slower.
"""

from __future__ import annotations

import os
import sys
import tempfile
from array import array
from pathlib import Path
from typing import Any, Optional, Sequence, Tuple, Union

from repro.graphs.generators import (
    _MASK64,
    _RC_MIX1,
    _RC_MIX2,
    _RC_U,
    _RC_V,
    ring_chord_offsets,
    ring_chord_weight,
)
from repro.kernels.binfmt import PackedFormatError, PackWriter, load_packed
from repro.kernels.dispatch import numpy_or_none

#: vertices per streamed chunk (~ tens of MB of payload per pass)
CHUNK_VERTICES = 1 << 16

PathLike = Union[str, "os.PathLike[str]"]


def default_cache_dir() -> Path:
    """``$REPRO_HUGE_CACHE`` or ``<tmp>/repro-huge``."""
    env = os.environ.get("REPRO_HUGE_CACHE")
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-huge"


def packed_name(n: int, chords: int, seed: int) -> str:
    """Canonical cache file name for one ring-chords instance."""
    return f"ring-chords-n{n}-c{chords}-s{seed}.rpg"


def pack_ring_chords(
    path: PathLike, n: int, chords: int, seed: int,
    chunk_vertices: int = CHUNK_VERTICES,
) -> None:
    """Stream the ring-chords CSR for ``(n, chords, seed)`` into ``path``."""
    offsets = ring_chord_offsets(n, chords)
    np = numpy_or_none()
    with PackWriter(path, n, n * len(offsets)) as w:
        if np is not None:
            _pack_numpy(w, np, n, offsets, seed, chunk_vertices)
        else:
            _pack_python(w, n, offsets, seed, chunk_vertices)


def _le_py(values: Union[Sequence[int], Sequence[float]], typecode: str) -> bytes:
    arr = array(typecode, values)
    if sys.byteorder == "big":
        arr.byteswap()
    return arr.tobytes()


def _pack_python(
    w: PackWriter, n: int, offsets: Tuple[int, ...], seed: int, chunk: int
) -> None:
    deg = len(offsets)
    for lo in range(0, n + 1, chunk):
        hi = min(lo + chunk, n + 1)
        w.write(_le_py([i * deg for i in range(lo, hi)], "q"))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        w.write(_le_py(
            [(u + o) % n for u in range(lo, hi) for o in offsets], "i"
        ))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        w.write(_le_py(
            [
                ring_chord_weight(seed, u, (u + o) % n)
                for u in range(lo, hi)
                for o in offsets
            ],
            "d",
        ))


def _pack_numpy(
    w: PackWriter, np: Any, n: int, offsets: Tuple[int, ...],
    seed: int, chunk: int,
) -> None:
    """Vectorized chunk passes; the weight hash is bit-identical to
    :func:`~repro.graphs.generators.ring_chord_weight` (wrapping uint64)."""
    deg = len(offsets)
    offs = np.asarray(offsets, dtype=np.uint64)
    u64 = np.uint64
    for lo in range(0, n + 1, chunk):
        hi = min(lo + chunk, n + 1)
        w.write((np.arange(lo, hi, dtype=np.int64) * deg).astype("<i8").tobytes())
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        us = np.arange(lo, hi, dtype=np.uint64)
        tg = (us[:, None] + offs[None, :]) % u64(n)
        w.write(tg.astype("<i4").tobytes())
    two64 = np.float64(2.0) ** np.float64(64)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        us = np.arange(lo, hi, dtype=np.uint64)
        tg = (us[:, None] + offs[None, :]) % u64(n)
        uu = np.broadcast_to(us[:, None], tg.shape)
        a = np.minimum(uu, tg)
        b = np.maximum(uu, tg)
        z = u64(seed & _MASK64) ^ (a * u64(_RC_U) + b * u64(_RC_V))
        z = (z ^ (z >> u64(30))) * u64(_RC_MIX1)
        z = (z ^ (z >> u64(27))) * u64(_RC_MIX2)
        z = z ^ (z >> u64(31))
        wts = np.float64(1.0) + z.astype(np.float64) / two64
        w.write(wts.astype("<f8").tobytes())


def ensure_packed(
    n: int,
    chords: int,
    seed: int,
    cache_dir: Optional[PathLike] = None,
    force: bool = False,
) -> Path:
    """The cached packed file for ``(n, chords, seed)``, generating it
    on first use (atomic rename, safe under concurrent callers)."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / packed_name(n, chords, seed)
    if path.exists() and not force:
        try:
            load_packed(path, verify=False).close()
        except PackedFormatError:
            path.unlink()  # stale/corrupt cache entry: regenerate below
        else:
            return path
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    try:
        pack_ring_chords(tmp, n, chords, seed)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path
