"""Pure-Python SSSP kernel over raw CSR arrays.

This is the always-available fallback behind ``kernel="python"``: a
binary-heap Dijkstra that operates directly on the three frozen CSR
arrays — ``indptr``/``indices``/``weights`` — without touching vertex
labels or any :class:`~repro.graphs.weighted_graph.WeightedGraph`
machinery.  Because it only *indexes* its inputs, it accepts Python
lists, ``array('d')`` columns from :class:`~repro.graphs.csr.CSRGraph`,
and the ``memoryview`` columns an mmap-ed
:class:`~repro.kernels.binfmt.PackedGraph` exposes, all interchangeably.

Cap contract (shared with :mod:`repro.kernels.npkern`): with a finite
``cap``, every vertex whose true distance is ``<= cap`` is settled
exactly; entries beyond the cap are either valid upper bounds or
``inf`` — callers must not read them as exact.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

INF = float("inf")

#: parent-array sentinels, matching ``shortest_paths._csr_dijkstra``
PARENT_SOURCE = -1
PARENT_UNREACHED = -2


def sssp(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    cap: Optional[float] = None,
) -> Tuple[List[float], List[int]]:
    """One SSSP run with every vertex of ``sources`` at distance 0.

    Returns flat ``(dist, parent)`` lists of length ``n``; ``parent[v]``
    is ``-1`` for sources, ``-2`` for unreached vertices, else the
    predecessor index on a shortest path.  Duplicate sources are
    harmless.
    """
    n = len(indptr) - 1
    dist: List[float] = [INF] * n
    parent: List[int] = [PARENT_UNREACHED] * n
    heap: List[Tuple[float, int]] = []
    for s in sources:
        if dist[s] != 0.0:
            dist[s] = 0.0
            parent[s] = PARENT_SOURCE
            heap.append((0.0, s))
    heapq.heapify(heap)
    pop, push = heapq.heappop, heapq.heappush
    while heap:
        d, u = pop(heap)
        if d > dist[u]:
            continue
        if cap is not None and d > cap:
            break  # all vertices with true dist <= cap are already settled
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    return dist, parent


def sssp_matrix(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    caps: Optional[Sequence[Optional[float]]] = None,
) -> List[List[float]]:
    """Batched SSSP: one distance row per source.

    The fallback simply loops single-source runs; the numpy kernel
    settles all rows in one array-level pass.  ``caps[k]`` bounds row
    ``k`` under the shared cap contract (``None`` = unbounded).
    """
    rows: List[List[float]] = []
    for k, s in enumerate(sources):
        cap = caps[k] if caps is not None else None
        rows.append(sssp(indptr, indices, weights, (s,), cap)[0])
    return rows


def residual(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    dist: Sequence[float],
) -> Tuple[float, int]:
    """Fixed-point residual of one distance row.

    Returns ``(max_violation, unsettled_arcs)``: the largest positive
    ``dist[v] - (dist[u] + w(u,v))`` over arcs with both endpoints
    finite, and the number of arcs whose tail is finite but whose head
    is still ``inf``.  ``(0.0, 0)`` certifies ``dist`` as a
    Bellman-Ford fixed point — which, for relaxation-built rows (every
    finite entry is witnessed by a real path), means the row is exact.
    """
    worst = 0.0
    unsettled = 0
    n = len(indptr) - 1
    for u in range(n):
        du = dist[u]
        if du == INF:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            dv = dist[indices[e]]
            if dv == INF:
                unsettled += 1
                continue
            violation = dv - du - weights[e]
            if violation > worst:
                worst = violation
    return worst, unsettled
