"""numpy frontier-relaxation SSSP kernel.

Importing this module requires numpy — callers go through
:func:`repro.kernels.dispatch.resolve_kernel` and only reach here when
``kernel="numpy"`` resolved successfully.

The batched kernel (:func:`sssp_matrix`) is bucketed sparse frontier
relaxation over the 2-D ``(sources × nodes)`` distance matrix:

* the frontier is a flat vector of ``row * n + vertex`` keys; each
  round expands every out-arc of the frontier in one shot — a reshaped
  ``(frontier, degree)`` gather when the graph is uniform-degree (the
  ring-chords family), a ``np.repeat``/cumsum expansion otherwise;
* a delta bucket (``delta ~ 2x mean weight``) parks frontier entries
  far above the current minimum, which keeps wasted re-expansion of
  not-yet-final labels near 1x of the arc count;
* concurrent relaxations of one target fold with ``np.minimum.at``,
  and the improved-target set is deduplicated without sorting by a
  stamp array (scatter round ids, keep first-writer);
* sources are processed in row blocks (default 8) so the working set
  of the random gathers stays cache-sized at large ``n``.

Rounds are bounded by the hop length of the longest shortest path over
the bucket schedule; every round is pure array code — no per-edge
Python bytecode.

Parity contract (gated by ``tests/test_kernels.py``): distances agree
with :mod:`repro.kernels.pykern` to 1e-9 on every workload, including
zero-weight edges, disconnected components, isolated vertices and
duplicate sources.  Parent choices may differ on ties, but every
parent chain is a witness shortest path.  The cap contract is shared
with pykern: entries with true distance ``<= cap`` are exact, entries
beyond the cap are upper bounds or ``inf``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.pykern import PARENT_SOURCE, PARENT_UNREACHED

NDArray = Any  # numpy is untyped in the CI mypy environment

#: default row-block size for the batched matrix kernel
DEFAULT_BLOCK = 8
#: sentinel standing in for inf in the fused residual (dists must stay below)
_RESIDUAL_SENTINEL = 1e30


class PreparedCSR:
    """CSR columns converted once for repeated kernel calls.

    Building this costs one pass over the columns (Python lists are the
    slow case; ``array('d')``/memoryview inputs convert zero-copy);
    certify chunks, landmark batches and the harness reuse it across
    many :func:`sssp_matrix`/:func:`residual_matrix` calls.  When every
    vertex has the same degree ``d`` the index/weight columns are also
    kept as ``(n, d)`` views for the reshape fast path.
    """

    __slots__ = ("ip", "idx", "w", "n", "uniform_degree", "idx2", "w2")

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
    ) -> None:
        self.ip = np.asarray(indptr, dtype=np.int64)
        self.idx = np.asarray(indices, dtype=np.int64)
        self.w = np.asarray(weights, dtype=np.float64)
        self.n = int(self.ip.shape[0]) - 1
        self.uniform_degree = 0
        self.idx2: Optional[NDArray] = None
        self.w2: Optional[NDArray] = None
        if self.n > 0 and self.idx.shape[0] % self.n == 0:
            d = self.idx.shape[0] // self.n
            degs = np.diff(self.ip)
            if d > 0 and bool((degs == d).all()):
                self.uniform_degree = int(d)
                self.idx2 = self.idx.astype(np.int32).reshape(self.n, d)
                self.w2 = self.w.reshape(self.n, d)


def prepare(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
) -> PreparedCSR:
    """Convert CSR columns once; pass the result to the ``*_prepared``
    entry points (or to the plain ones — ndarrays re-convert for free)."""
    return PreparedCSR(indptr, indices, weights)


def _auto_delta(w: NDArray) -> float:
    """Bucket width: ~2x the mean arc weight (floored away from zero)."""
    if w.shape[0] == 0:
        return 1.0
    return max(2.0 * float(w.mean()), 1e-9)


def _expand_uniform(
    prep: PreparedCSR, keys: NDArray, dv: NDArray, rowbase: NDArray, verts: NDArray
) -> Tuple[NDArray, NDArray]:
    """(candidate dists, flat target keys) over the frontier's arcs —
    uniform-degree reshape path, one 2-D gather per column."""
    tg32 = prep.idx2[verts]
    cand2 = dv[:, None] + prep.w2[verts]
    tk2 = np.add(tg32, rowbase[:, None], dtype=np.int64)
    return cand2.reshape(-1), tk2.reshape(-1)


def _expand_general(
    prep: PreparedCSR, keys: NDArray, dv: NDArray, rowbase: NDArray, verts: NDArray
) -> Tuple[NDArray, NDArray]:
    """General CSR expansion via ``np.repeat`` + the cumsum trick."""
    degs = np.diff(prep.ip)[verts]
    total = int(degs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty.astype(np.float64), empty
    entry = np.repeat(np.arange(verts.shape[0], dtype=np.int64), degs)
    base = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(degs)[:-1]))
    eids = prep.ip[verts][entry] + (np.arange(total, dtype=np.int64) - base[entry])
    cand = dv[entry] + prep.w[eids]
    tkeys = rowbase[entry] + prep.idx[eids]
    return cand, tkeys


def _relax_block(
    prep: PreparedCSR,
    flat: NDArray,
    pending: NDArray,
    caps_flat: Optional[NDArray],
    delta: float,
) -> None:
    """Bucketed relaxation of one row block, in place on ``flat``."""
    n = prep.n
    uniform = prep.uniform_degree > 0
    scratch = np.full(flat.shape[0], -1, dtype=np.int32)
    ctr = 0
    while pending.size:
        dv = flat[pending]
        parked: Optional[NDArray] = None
        if pending.size > 64:
            thr = float(dv.min()) + delta
            active = dv <= thr
            if not bool(active.all()):
                parked = pending[~active]
                pending, dv = pending[active], dv[active]
        verts = pending % n
        rowbase = pending - verts
        if uniform:
            cand, tkeys = _expand_uniform(prep, pending, dv, rowbase, verts)
        else:
            cand, tkeys = _expand_general(prep, pending, dv, rowbase, verts)
        if tkeys.shape[0]:
            better = cand < flat[tkeys]
            if caps_flat is not None:
                better &= cand <= caps_flat[tkeys]
            nz = np.flatnonzero(better)
        else:
            nz = tkeys
        if nz.shape[0] == 0:
            pending = parked if parked is not None else np.empty(0, dtype=np.int64)
            continue
        tko = tkeys[nz]
        np.minimum.at(flat, tko, cand[nz])
        if ctr + tko.shape[0] + (0 if parked is None else parked.shape[0]) > 2**31 - 2:
            scratch.fill(-1)
            ctr = 0
        stamps = np.arange(ctr, ctr + tko.shape[0], dtype=np.int32)
        ctr += tko.shape[0]
        scratch[tko] = stamps
        ukeys = tko[scratch[tko] == stamps]
        if parked is not None:
            scratch[parked] = np.arange(ctr, ctr + parked.shape[0], dtype=np.int32)
            fresh = scratch[ukeys] < ctr  # not already among the parked keys
            ctr += parked.shape[0]
            pending = np.concatenate((parked, ukeys[fresh]))
        else:
            pending = ukeys


def sssp_matrix_prepared(
    prep: PreparedCSR,
    sources: Sequence[int],
    caps: Optional[Sequence[Optional[float]]] = None,
    block: int = DEFAULT_BLOCK,
    delta: Optional[float] = None,
) -> NDArray:
    """Batched SSSP on prepared columns: the ``(sources × nodes)``
    float64 distance matrix, settled block-by-block."""
    n = prep.n
    src = np.asarray(sources, dtype=np.int64)
    rows = src.shape[0]
    width = _auto_delta(prep.w) if delta is None else delta
    capv: Optional[NDArray] = None
    if caps is not None:
        capv = np.asarray(
            [np.inf if c is None else float(c) for c in caps], dtype=np.float64
        )
    dist = np.full((rows, n), np.inf)
    for lo in range(0, rows, max(1, block)):
        hi = min(lo + max(1, block), rows)
        bs = hi - lo
        sub = dist[lo:hi]
        row_ids = np.arange(bs, dtype=np.int64)
        sub[row_ids, src[lo:hi]] = 0.0
        flat = sub.reshape(-1)
        caps_flat: Optional[NDArray] = None
        if capv is not None:
            caps_flat = np.repeat(capv[lo:hi], n)
        _relax_block(prep, flat, row_ids * n + src[lo:hi], caps_flat, width)
    return dist


def sssp_matrix(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    caps: Optional[Sequence[Optional[float]]] = None,
) -> NDArray:
    """Batched SSSP on raw CSR columns (converts, then delegates)."""
    return sssp_matrix_prepared(prepare(indptr, indices, weights), sources, caps)


def sssp(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    cap: Optional[float] = None,
) -> Tuple[List[float], List[int]]:
    """Drop-in for :func:`repro.kernels.pykern.sssp` (flat lists out),
    with parent pointers tracked through a per-round lexsort."""
    prep = prepare(indptr, indices, weights)
    n = prep.n
    dist = np.full(n, np.inf)
    parent = np.full(n, PARENT_UNREACHED, dtype=np.int64)
    src = np.unique(np.asarray(sources, dtype=np.int64))
    dist[src] = 0.0
    parent[src] = PARENT_SOURCE
    keys = src
    zero = np.zeros(src.shape[0], dtype=np.int64)
    uniform = prep.uniform_degree > 0
    while keys.size:
        dv = dist[keys]
        verts = keys
        rowbase = np.zeros(keys.shape[0], dtype=np.int64)
        if uniform:
            cand, tkeys = _expand_uniform(prep, keys, dv, rowbase, verts)
            par = np.repeat(verts, prep.uniform_degree)
        else:
            degs = np.diff(prep.ip)[verts]
            cand, tkeys = _expand_general(prep, keys, dv, rowbase, verts)
            par = np.repeat(verts, degs)
        if tkeys.shape[0] == 0:
            break
        better = cand < dist[tkeys]
        if cap is not None:
            better &= cand <= cap
        cand, tkeys, par = cand[better], tkeys[better], par[better]
        if tkeys.shape[0] == 0:
            break
        order = np.lexsort((par, cand, tkeys))
        tkeys, cand, par = tkeys[order], cand[order], par[order]
        first = np.ones(tkeys.shape[0], dtype=bool)
        first[1:] = tkeys[1:] != tkeys[:-1]
        starts = np.flatnonzero(first)
        ukeys = tkeys[starts]
        dist[ukeys] = cand[starts]  # lexsort: first of each group is the min
        parent[ukeys] = par[starts]
        keys = ukeys
    del zero
    return dist.tolist(), parent.tolist()


def residual_matrix_prepared(
    prep: PreparedCSR, dist_matrix: NDArray
) -> Tuple[float, int]:
    """Vectorized fixed-point residual over every row of ``dist_matrix``.

    Same contract as :func:`repro.kernels.pykern.residual`, folded over
    rows: ``(max positive violation, arcs with finite tail but inf
    head)``.  ``(0.0, 0)`` certifies every row as a Bellman-Ford fixed
    point.  Finite distances must stay below 1e28 (the fused path
    encodes ``inf`` as a 1e30 sentinel) — weights are poly(n) per the
    paper's preliminaries, so real workloads sit far under that.
    """
    n = prep.n
    dm = np.asarray(dist_matrix, dtype=np.float64).reshape(-1, n)
    uniform = prep.uniform_degree > 0
    tails: Optional[NDArray] = None
    if not uniform:
        tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(prep.ip))
    worst = 0.0
    unsettled = 0
    for row in dm:
        sent = np.where(np.isfinite(row), row, _RESIDUAL_SENTINEL)
        if uniform:
            v = sent[prep.idx2] - sent[:, None] - prep.w2
        else:
            v = sent[prep.idx] - sent[tails] - prep.w
        mx = float(v.max()) if v.size else 0.0
        if mx > _RESIDUAL_SENTINEL / 10.0:
            # some reachable head is still inf: count those arcs, then
            # take the max over the genuinely settled ones
            high = v > _RESIDUAL_SENTINEL / 10.0
            unsettled += int(np.count_nonzero(high))
            settled = v[~high]
            mx = float(settled.max()) if settled.size else 0.0
        if mx > worst:
            worst = mx
    return worst, unsettled


def residual_matrix(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    dist_matrix: NDArray,
) -> Tuple[float, int]:
    """Raw-column wrapper around :func:`residual_matrix_prepared`."""
    return residual_matrix_prepared(prepare(indptr, indices, weights), dist_matrix)
