"""Kernel selection: which backend executes an SSSP call.

Two backends exist: ``"python"`` (:mod:`repro.kernels.pykern`, always
available, stdlib-only) and ``"numpy"`` (:mod:`repro.kernels.npkern`,
present only when the ``fast`` extra is installed).  ``"auto"``
resolves to numpy when importable and falls back to python otherwise —
it never fails.  Asking for ``"numpy"`` explicitly on a machine
without numpy raises, so CI's no-numpy leg exercises the fallback
rather than silently downgrading an explicit request.

numpy is imported *here and only here* (lint rule REP801 keeps any
other ``import numpy`` out of the tree), lazily and guarded, so merely
importing :mod:`repro.kernels` costs nothing on a stdlib-only machine.
"""

from __future__ import annotations

from types import ModuleType
from typing import Optional, Tuple

#: executable kernel names; ``"auto"`` additionally resolves to one of these
KERNELS: Tuple[str, ...] = ("python", "numpy")

_NUMPY: Optional[ModuleType] = None
_NUMPY_CHECKED = False


def numpy_or_none() -> Optional[ModuleType]:
    """The numpy module, or ``None`` when it is not installed (cached)."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy  # noqa: PLC0415  (lazy: optional dependency)
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def has_numpy() -> bool:
    """True when the numpy backend can be used."""
    return numpy_or_none() is not None


def resolve_kernel(kernel: str) -> str:
    """Resolve a requested kernel name to an executable backend.

    ``"auto"`` prefers numpy and silently falls back to python;
    ``"numpy"`` raises :class:`RuntimeError` when numpy is missing;
    anything outside :data:`KERNELS` + ``"auto"`` raises
    :class:`ValueError`.
    """
    if kernel == "auto":
        return "numpy" if has_numpy() else "python"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS + ('auto',)}"
        )
    if kernel == "numpy" and not has_numpy():
        raise RuntimeError(
            "kernel 'numpy' requested but numpy is not installed; "
            "pip install -e .[fast] or use kernel='python'/'auto'"
        )
    return kernel
