"""Array-level compute kernels and the packed binary graph format.

The kernels layer is the repository's answer to "as fast as the
hardware allows": the same frozen CSR columns every subsystem already
shares (PR 1) feed either a pure-Python heap Dijkstra
(:mod:`~repro.kernels.pykern`, always available) or a numpy
frontier-relaxation kernel (:mod:`~repro.kernels.npkern`, installed via
the ``fast`` extra) that settles a whole ``(sources × nodes)`` distance
matrix in one pass.  Selection is by name — ``"python"``, ``"numpy"``,
or ``"auto"`` — resolved in :mod:`~repro.kernels.dispatch`; numpy is
imported nowhere else in the tree (lint rule REP801).

Parity contract: both backends produce distances equal to 1e-9 on every
workload; ``tests/test_kernels.py`` fuzzes it, and CI runs the full
suite on a no-numpy leg so the fallback is proven, not assumed.

The second half of the layer is the ``.rpg`` packed format
(:mod:`~repro.kernels.binfmt`): a versioned little-endian header +
raw CSR dump that loads by ``mmap`` into zero-copy memoryviews, plus a
streamed generator (:mod:`~repro.kernels.genpack`) that writes
10^6–10^7-node ring-chords instances without ever materializing them —
the substrate of the harness's ``huge`` tier.
"""

from repro.kernels.dispatch import KERNELS, has_numpy, numpy_or_none, resolve_kernel
from repro.kernels.sssp import residual, sssp, sssp_matrix
from repro.kernels.binfmt import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    PackedFormatError,
    PackedGraph,
    PackWriter,
    load_packed,
    pack_arrays,
    pack_csr,
)
from repro.kernels.genpack import default_cache_dir, ensure_packed, pack_ring_chords

__all__ = [
    "KERNELS",
    "has_numpy",
    "numpy_or_none",
    "resolve_kernel",
    "sssp",
    "sssp_matrix",
    "residual",
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER_SIZE",
    "PackedFormatError",
    "PackedGraph",
    "PackWriter",
    "load_packed",
    "pack_arrays",
    "pack_csr",
    "default_cache_dir",
    "ensure_packed",
    "pack_ring_chords",
]
