"""Kernel-dispatching SSSP entry points.

Callers across the stack — ``shortest_paths``, the certify engine,
landmark selection, the harness — funnel through these three functions
with raw CSR columns and a ``kernel`` name; resolution happens here
(see :mod:`repro.kernels.dispatch`), and the numpy backend is only
imported after it resolved, so the module itself is stdlib-safe.

Outputs are normalized to plain Python containers (lists of floats /
ints), because every caller immediately builds label-keyed dicts or
aggregates from them; :func:`sssp_matrix` returns its rows lazily
normalized the same way.  The batched numpy path's raw ndarray stays an
implementation detail behind :func:`repro.kernels.npkern.sssp_matrix`
for the code paths (huge tier, residual certification) that want to
stay array-native end to end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.kernels.dispatch import resolve_kernel
from repro.kernels import pykern


def sssp(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    kernel: str = "python",
    cap: Optional[float] = None,
) -> Tuple[List[float], List[int]]:
    """One SSSP run on raw CSR columns (see :func:`pykern.sssp`)."""
    backend = resolve_kernel(kernel)
    if backend == "numpy":
        from repro.kernels import npkern

        return npkern.sssp(indptr, indices, weights, sources, cap)
    return pykern.sssp(indptr, indices, weights, sources, cap)


def sssp_matrix(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    sources: Sequence[int],
    kernel: str = "python",
    caps: Optional[Sequence[Optional[float]]] = None,
) -> List[List[float]]:
    """Batched SSSP: one distance row per source, as Python lists.

    The numpy backend settles the whole ``(sources × nodes)`` matrix in
    one frontier-relaxation pass; the python backend loops Dijkstra.
    """
    backend = resolve_kernel(kernel)
    if backend == "numpy":
        from repro.kernels import npkern

        matrix = npkern.sssp_matrix(indptr, indices, weights, sources, caps)
        return [row.tolist() for row in matrix]
    return pykern.sssp_matrix(indptr, indices, weights, sources, caps)


def residual(
    indptr: Sequence[int],
    indices: Sequence[int],
    weights: Sequence[float],
    dist: Sequence[float],
    kernel: str = "python",
) -> Tuple[float, int]:
    """Fixed-point residual of one distance row (see :func:`pykern.residual`)."""
    backend = resolve_kernel(kernel)
    if backend == "numpy":
        from repro.kernels import npkern

        return npkern.residual_matrix(indptr, indices, weights, [list(dist)])
    return pykern.residual(indptr, indices, weights, dist)
