"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
spanner     build the §5 light spanner of a graph file (or a generated one)
slt         build the §4 shallow-light tree
net         build a §6 (α, β)-net
doubling    build the §7 doubling-graph spanner
estimate    run the §8 MST-weight estimation
generate    write a workload graph to a file
bench       run the profile-driven benchmark harness (repro.harness)
graph       pack / inspect the mmap binary graph format (repro.kernels)
oracle      build / query a pickled distance oracle (repro.oracle)
lint        run the determinism & contract analyzer (repro.lint)
trace       summarize a JSONL span trace (repro.obs)

Graphs are read/written with :mod:`repro.io` (edge-list or ``.json`` by
extension).  Every command prints a short quality report (measured
stretch / lightness / rounds against the construction's guarantee).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro import io as graph_io
from repro.analysis import (
    lightness,
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
)
from repro.core import (
    build_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
    light_spanner,
    shallow_light_tree,
)
from repro.graphs import (
    WeightedGraph,
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
)


def _load(path: str) -> WeightedGraph:
    if path.endswith(".json"):
        return graph_io.read_json(path)
    return graph_io.read_edge_list(path)


def _save(graph: WeightedGraph, path: str) -> None:
    if path.endswith(".json"):
        graph_io.write_json(graph, path)
    else:
        graph_io.write_edge_list(graph, path)


def _root_of(graph: WeightedGraph, requested: Optional[str]):
    if requested is None:
        return min(graph.vertices(), key=repr)
    for v in graph.vertices():
        if str(v) == requested:
            return v
    raise SystemExit(f"error: root {requested!r} is not a vertex")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "er":
        g = erdos_renyi_graph(args.n, args.p, seed=args.seed)
    elif args.family == "geometric":
        g = random_geometric_graph(args.n, seed=args.seed)
    else:
        side = max(2, int(args.n ** 0.5))
        g = grid_graph(side, side, jitter=0.3, seed=args.seed)
    _save(g, args.output)
    print(f"wrote {g} to {args.output}")
    return 0


def cmd_spanner(args: argparse.Namespace) -> int:
    g = _load(args.graph)
    res = light_spanner(g, args.k, args.eps, random.Random(args.seed))
    print(f"input      {g}")
    print(f"spanner    {res.spanner}")
    print(f"stretch    {max_edge_stretch(g, res.spanner):.4f}"
          f"  (guaranteed <= {res.stretch_bound:.2f})")
    print(f"lightness  {lightness(g, res.spanner):.2f}")
    print(f"rounds     {res.rounds} (charged CONGEST rounds)")
    if args.output:
        _save(res.spanner, args.output)
        print(f"wrote spanner to {args.output}")
    return 0


def cmd_slt(args: argparse.Namespace) -> int:
    g = _load(args.graph)
    root = _root_of(g, args.root)
    res = shallow_light_tree(g, root, args.alpha)
    print(f"input         {g}")
    print(f"SLT           {res.tree}")
    print(f"lightness     {lightness(g, res.tree):.3f}  (budget {args.alpha})")
    print(f"root-stretch  {root_stretch(g, res.tree, root):.3f}"
          f"  (guaranteed <= {res.stretch_bound:.1f})")
    print(f"rounds        {res.rounds}")
    if args.output:
        _save(res.tree, args.output)
        print(f"wrote tree to {args.output}")
    return 0


def cmd_net(args: argparse.Namespace) -> int:
    g = _load(args.graph)
    res = build_net(g, args.scale, args.delta, random.Random(args.seed))
    print(f"input       {g}")
    print(f"net         {len(res.points)} points "
          f"(({res.alpha:.2f}, {res.beta:.2f})-net)")
    print(f"iterations  {res.iterations}")
    print(f"rounds      {res.rounds}")
    print("points      " + " ".join(str(p) for p in sorted(res.points, key=repr)))
    return 0


def cmd_doubling(args: argparse.Namespace) -> int:
    g = _load(args.graph)
    res = doubling_spanner(
        g, args.eps, random.Random(args.seed), net_method=args.net_method
    )
    print(f"input      {g}")
    print(f"spanner    {res.spanner}")
    print(f"stretch    {max_pairwise_stretch(g, res.spanner):.4f}"
          f"  (guaranteed <= {res.stretch_bound:.2f})")
    print(f"lightness  {lightness(g, res.spanner):.2f}")
    print(f"rounds     {res.rounds}")
    if args.output:
        _save(res.spanner, args.output)
        print(f"wrote spanner to {args.output}")
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    g = _load(args.graph)
    est = estimate_mst_weight_via_nets(
        g, net_method=args.net_method, rng=random.Random(args.seed)
    )
    print(f"input  {g}")
    print(f"Psi    {est.psi:.1f}")
    print(f"L      {est.mst_weight:.1f}  (exact, for reference)")
    print(f"ratio  {est.approximation_ratio:.2f}"
          f"  (guaranteed O(alpha log n), alpha = {est.alpha:.2f})")
    return 0


def cmd_graph_pack(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.kernels import pack_ring_chords

    t0 = time.perf_counter()
    pack_ring_chords(args.out, args.n, args.chords, args.seed)
    pack_s = time.perf_counter() - t0
    size = os.path.getsize(args.out)
    print(f"family      ring-chords  n={args.n}  chords={args.chords}  "
          f"seed={args.seed}")
    print(f"packed in   {pack_s:.3f}s")
    print(f"wrote {size} bytes to {args.out}")
    return 0


def cmd_graph_load(args: argparse.Namespace) -> int:
    from repro.kernels import PackedFormatError, load_packed

    try:
        with load_packed(args.path, verify=not args.no_verify) as pg:
            print(f"file        {pg.path}")
            print(f"vertices    {pg.n}")
            print(f"arcs        {pg.m_arcs}  ({pg.m_arcs // 2} undirected edges)")
            print(f"payload     {pg.payload_size} bytes")
            print(f"checksum    {'skipped' if args.no_verify else 'ok'}")
    except PackedFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_oracle_build(args: argparse.Namespace) -> int:
    import pickle
    import time

    from repro.oracle import DistanceOracle

    structure = _load(args.structure)
    t0 = time.perf_counter()
    oracle = DistanceOracle.build(
        structure,
        landmarks=args.landmarks,
        strategy=args.strategy,
        seed=args.seed,
        cache_size=args.cache_size,
    )
    build_s = time.perf_counter() - t0
    if args.spot_check:
        from repro.analysis import verify_oracle

        verify_oracle(structure, oracle, pairs=args.spot_check, seed=args.seed)
        print(f"spot-check  {args.spot_check} pairs vs Dijkstra: ok")
    with open(args.output, "wb") as fh:
        pickle.dump(oracle, fh)
    print(f"structure   {structure}")
    print(f"oracle      {oracle}")
    print(f"landmarks   {' '.join(str(v) for v in oracle.landmarks)}")
    print(f"built in    {build_s:.3f}s")
    print(f"wrote oracle to {args.output}")
    return 0


def cmd_oracle_query(args: argparse.Namespace) -> int:
    import pickle

    with open(args.oracle, "rb") as fh:
        oracle = pickle.load(fh)
    if len(args.pair) % 2:
        raise SystemExit("error: vertices must come in pairs (u v [u v ...])")
    by_name = {str(v): v for v in oracle.csr.verts}

    def resolve(requested: str):
        try:
            return by_name[requested]
        except KeyError:
            raise SystemExit(
                f"error: {requested!r} is not a vertex of the served structure"
            ) from None

    pairs = [
        (resolve(args.pair[i]), resolve(args.pair[i + 1]))
        for i in range(0, len(args.pair), 2)
    ]
    for (u, v), d in zip(pairs, oracle.query_many(pairs)):
        print(f"d({u}, {v}) = {d:.6g}")
    if args.k_nearest is not None:
        v = resolve(args.k_nearest)
        ranked = oracle.k_nearest(v, args.k)
        print(f"{args.k}-nearest of {v}: "
              + "  ".join(f"{u}@{d:.6g}" for u, d in ranked))
    info = oracle.cache_info()
    print(f"cache       {info['hits']} hit(s), {info['misses']} miss(es), "
          f"{info['size']}/{info['maxsize']} entries")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro import lint

    if args.rules:
        for code, summary in lint.rule_catalog().items():
            print(f"{code}  {summary}")
        return 0
    cache = None
    if args.program and not args.no_cache:
        from repro.lint.cache import AnalysisCache

        cache = AnalysisCache(Path(args.cache_dir))
    try:
        diagnostics = lint.lint_paths(
            [Path(p) for p in args.paths], program=args.program, cache=cache
        )
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([d.to_json() for d in diagnostics], indent=2))
    elif args.format == "sarif":
        from repro.lint.sarif import sarif_report

        print(json.dumps(sarif_report(diagnostics), indent=2))
    else:
        for diag in diagnostics:
            print(diag.render())
        if diagnostics:
            print(f"{len(diagnostics)} finding(s)")
    return 1 if diagnostics else 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import summarize_trace

    try:
        print(summarize_trace(args.trace, top=args.top))
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _bench_huge(args: argparse.Namespace) -> int:
    """``repro bench --suite huge``: the mmap-backed huge tier."""
    from repro import harness

    if args.profiles:
        try:
            selected = [harness.get_profile(name) for name in args.profiles]
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
    else:
        selected = harness.huge_profiles()
    kernel = args.kernel or "auto"
    print(f"running {len(selected)} huge profile(s) (kernel {kernel!r})")
    records = []
    for i, profile in enumerate(selected, start=1):
        try:
            record = harness.run_huge_profile(profile, kernel=kernel)
        except (KeyError, ValueError, RuntimeError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        records.append(record)
        status = "ok" if record.ok else "VIOLATED"
        print(
            f"[{i}/{len(selected)}] {profile.name:<24} "
            f"n={record.n:<8} "
            f"pack {record.generation_seconds:7.3f}s  "
            f"sssp {record.construction_seconds:7.3f}s  "
            f"cert {record.certification_seconds:7.3f}s  {status}"
        )
    violated = [r.profile for r in records if not r.ok]
    rc = 0
    if violated:
        print(f"QUALITY VIOLATED: {', '.join(violated)}")
        rc = 1
    report = harness.make_report(records, suite="huge", tag=args.tag)
    if args.out:
        harness.write_report(report, args.out)
        print(f"wrote {len(records)} record(s) to {args.out}")
    return rc


def cmd_bench(args: argparse.Namespace) -> int:
    # imported lazily so the file-based commands stay snappy
    from repro import harness

    if args.list:
        print(f"{'profile':<26} {'family':<16} {'algorithm':<18} section")
        for p in harness.all_profiles():
            print(f"{p.name:<26} {p.family:<16} {p.algorithm:<18} {p.section}")
            print(f"{'':<26} {p.description}")
        return 0

    if args.suite == "huge":
        return _bench_huge(args)

    # --suite is a size tier, or a named group: "congest" (the CONGEST
    # profiles at smoke sizes — CI's congest-smoke job), "queries"
    # (every oracle-servable profile at smoke sizes with the query
    # workload enabled — CI's oracle-smoke job) or "huge" (the
    # mmap-backed kernel profiles, handled above)
    queries = args.queries
    if args.suite == "congest":
        tier, default_selection = "smoke", harness.congest_profiles()
    elif args.suite == "queries":
        tier, default_selection = "smoke", harness.queryable_profiles()
        queries = True
    else:
        tier, default_selection = args.suite, harness.all_profiles()

    if args.profiles:
        try:
            selected = [harness.get_profile(name) for name in args.profiles]
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
    else:
        selected = default_selection

    print(
        f"running {len(selected)} profile(s) at tier {tier!r} "
        f"({args.engine} engine)"
    )
    tracer = None
    if args.trace:
        from repro import obs

        tracer = obs.enable()
    try:
        records = harness.run_suite(
            selected, tier=tier, measure_memory=not args.no_memory,
            progress=print,
            engine=args.engine,
            certify_workers=args.certify_workers,
            certify_sample=args.certify_sample,
            queries=queries,
            kernel=args.kernel or "python",
        )
    finally:
        if tracer is not None:
            from repro import obs

            obs.disable()
    if tracer is not None:
        with open(args.trace, "w", encoding="utf-8") as fh:
            span_lines = tracer.write_jsonl(fh)
        print(f"wrote {span_lines} span(s) to {args.trace}")
    if queries:
        served = [r for r in records if r.queries]
        for r in served:
            q = r.queries
            print(
                f"    {r.profile:<24} queries {q['count']:>6}  "
                f"p50 {q['p50_ms']:.3f}ms  p99 {q['p99_ms']:.3f}ms  "
                f"{q['qps']:.0f} q/s  hit-rate {q['cache_hit_rate']:.0%}"
            )
    violated = [r.profile for r in records if not r.ok]
    rc = 0
    if violated:
        print(f"QUALITY VIOLATED: {', '.join(violated)}")
        rc = 1

    report = harness.make_report(records, suite=args.suite, tag=args.tag)
    if args.out:
        harness.write_report(report, args.out)
        print(f"wrote {len(records)} record(s) to {args.out}")

    if args.compare:
        try:
            baseline = harness.load_report(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot load baseline: {exc}") from exc
        try:
            comparison = harness.compare_reports(baseline, report, tolerance=args.tolerance)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        print(f"\ndeltas vs {args.compare} (tolerance {args.tolerance:.0%}):")
        print(comparison.render())
        if not comparison.ok:
            rc = 1
    return rc


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import time

    from repro.oracle import DistanceOracle
    from repro.serve import Server

    if bool(args.profile) == bool(args.structure):
        raise SystemExit("error: give exactly one of --profile or --structure")
    landmarks = args.landmarks
    if args.structure:
        structure = _load(args.structure)
        seed = args.seed if args.seed is not None else 0
        if landmarks is None:
            landmarks = 8
    else:
        from repro import harness
        from repro.harness.loadgen import build_profile_structure
        from repro.harness.queries import QUERY_MIXES

        try:
            profile = harness.get_profile(args.profile)
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        _graph, structure, gen_s, build_s = build_profile_structure(
            profile, args.tier
        )
        seed = profile.seed if args.seed is None else args.seed
        if landmarks is None:
            landmarks = QUERY_MIXES[args.tier].landmarks
        print(
            f"built {profile.name}@{args.tier}: generation {gen_s:.3f}s, "
            f"construction {build_s:.3f}s",
            flush=True,
        )
    t0 = time.perf_counter()
    oracle = DistanceOracle.build(
        structure,
        landmarks=landmarks,
        strategy=args.strategy,
        seed=seed,
        cache_size=args.cache_size,
    )
    print(f"oracle built in {time.perf_counter() - t0:.3f}s", flush=True)
    server = Server(
        oracle,
        workers=args.workers,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        warm=args.warm,
        max_frame=args.max_frame,
    )
    server.start()
    address = server.address
    spec = (
        f"unix:{address}" if isinstance(address, str)
        else f"{address[0]}:{address[1]}"
    )
    # the machine-readable handshake line the load generator (and the CI
    # smoke job) waits for before opening connections
    print(
        f"READY address={spec} workers={server.workers} "
        f"n={oracle.csr.n} landmarks={len(oracle.landmark_indices)} "
        f"payload_bytes={server.payload_bytes} pid={os.getpid()}",
        flush=True,
    )

    def _stop(signum: int, frame: object) -> None:
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    server.serve_forever()
    print("daemon stopped", flush=True)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro import harness
    from repro.harness import loadgen
    from repro.harness.queries import QUERY_MIXES, build_query_mix
    from repro.harness.runner import ProfileRecord

    try:
        profile = harness.get_profile(args.profile)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    tier = args.tier
    if args.mode == "closed":
        levels = [float(int(x)) for x in args.concurrency.split(",")]
    else:
        levels = [float(x) for x in args.rate.split(",")]
    graph, structure, gen_s, build_s = loadgen.build_profile_structure(
        profile, tier
    )
    mix = QUERY_MIXES[tier]
    raw_pairs, _sources = build_query_mix(structure, mix, profile.seed)
    pairs = [(str(u), str(v)) for u, v in raw_pairs]
    print(
        f"{profile.name}@{tier}: {len(pairs)} pairs, "
        f"mode {args.mode}, levels {levels}"
    )

    proc = None
    if args.connect:
        from repro.serve import address_of

        address = address_of(args.connect)
    else:
        proc, address = loadgen.launch_daemon([
            "--profile", profile.name, "--tier", tier,
            "--workers", str(args.workers), "--port", "0",
            "--warm", str(args.warm),
        ])
    try:
        block = loadgen.drive_load(
            address,
            pairs,
            args.mode,
            levels,
            arrivals=args.arrivals,
            duration=args.duration,
            repeats=args.repeats,
            clients=args.clients,
            seed=profile.seed,
            workers=None if args.connect else args.workers,
        )
    finally:
        if proc is not None:
            loadgen.stop_daemon(proc)

    for level in block["levels"]:
        print(
            f"  {level['key']:>6}  {level['requests']:>6} req  "
            f"p50 {level['p50_ms']:.3f}ms  p99 {level['p99_ms']:.3f}ms  "
            f"p999 {level['p999_ms']:.3f}ms  {level['qps']:.0f} q/s  "
            f"failures {level['failure_rate']:.2%}"
        )

    record = ProfileRecord(
        profile=profile.name,
        tier=tier,
        family=profile.family,
        algorithm=profile.algorithm,
        section=profile.section,
        seed=profile.seed,
        params=dict(profile.algo_params(tier)),
        n=graph.n,
        m=graph.m,
        generation_seconds=gen_s,
        construction_seconds=build_s,
        certification_seconds=0.0,
        peak_memory_bytes=None,
        rounds=None,
        metrics={},
        ok=True,
        load=block,
    )
    report = harness.make_report([record], suite="load", tag=args.tag)
    rc = 0
    if args.out:
        harness.write_report(report, args.out)
        print(f"wrote load report to {args.out}")
    if args.compare:
        try:
            baseline = harness.load_report(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot load baseline: {exc}") from exc
        try:
            comparison = harness.compare_reports(
                baseline, report, tolerance=args.tolerance
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        print(f"\ndeltas vs {args.compare} (tolerance {args.tolerance:.0%}):")
        print(comparison.render())
        if not comparison.ok:
            rc = 1
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed light-network constructions "
        "(Elkin–Filtser–Neiman, PODC 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a workload graph")
    p.add_argument("--family", choices=["er", "geometric", "grid"], default="er")
    p.add_argument("--n", type=int, default=50)
    p.add_argument("--p", type=float, default=0.2, help="ER edge probability")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("output", help="output file (.json or edge list)")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("spanner", help="§5 light spanner")
    p.add_argument("graph")
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--eps", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output")
    p.set_defaults(fn=cmd_spanner)

    p = sub.add_parser("slt", help="§4 shallow-light tree")
    p.add_argument("graph")
    p.add_argument("--alpha", type=float, default=5.0, help="lightness budget")
    p.add_argument("--root", default=None)
    p.add_argument("--output")
    p.set_defaults(fn=cmd_slt)

    p = sub.add_parser("net", help="§6 (α, β)-net")
    p.add_argument("graph")
    p.add_argument("--scale", type=float, required=True, help="Δ")
    p.add_argument("--delta", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_net)

    p = sub.add_parser("doubling", help="§7 doubling-graph spanner")
    p.add_argument("graph")
    p.add_argument("--eps", type=float, default=0.1)
    p.add_argument("--net-method", choices=["greedy", "distributed"], default="greedy")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output")
    p.set_defaults(fn=cmd_doubling)

    p = sub.add_parser("estimate", help="§8 MST-weight estimation via nets")
    p.add_argument("graph")
    p.add_argument("--net-method", choices=["greedy", "distributed"], default="greedy")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser(
        "lint",
        help="repo-specific determinism & contract analyzer (repro.lint)",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to analyze (default: src)",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (json is one object per finding; sarif is "
             "a SARIF 2.1.0 log for code-scanning upload)",
    )
    p.add_argument(
        "--rules", action="store_true",
        help="list every rule code with its summary and exit",
    )
    p.add_argument(
        "--program", action="store_true",
        help="also run the whole-program passes (import-graph layering, "
             "seed-taint, pool-safety) over the combined tree",
    )
    p.add_argument(
        "--cache-dir", default=".repro-lint-cache", metavar="DIR",
        help="per-file analysis cache for --program runs "
             "(default: .repro-lint-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file analysis cache",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("bench", help="profile-driven benchmark harness")
    p.add_argument("--list", action="store_true", help="list registered profiles")
    p.add_argument(
        "--profile", action="append", dest="profiles", metavar="NAME",
        help="run only this profile (repeatable; default: all)",
    )
    p.add_argument(
        "--suite",
        choices=["smoke", "table1", "stress", "congest", "queries", "huge"],
        default="smoke",
        help="size tier to run, or a named group: 'congest' (CONGEST-layer "
             "profiles at smoke sizes) / 'queries' (oracle-servable "
             "profiles at smoke sizes with the query workload on) / "
             "'huge' (10^6+-vertex kernel profiles served from the "
             "packed mmap format; kernel defaults to 'auto') "
             "(default: smoke)",
    )
    p.add_argument(
        "--kernel", choices=["python", "numpy", "auto"], default=None,
        help="SSSP backend for kernel profiles and spanner certification "
             "(repro.kernels; default: python, or auto for --suite huge)",
    )
    p.add_argument(
        "--queries", action="store_true",
        help="serve the tier's seeded query mix over each constructed "
             "structure through a distance oracle and record the "
             "latency/throughput/cache block (implied by --suite queries)",
    )
    p.add_argument(
        "--engine", choices=["sparse", "dense"], default="sparse",
        help="CONGEST round engine for congest-* profiles: the "
             "sparse-activation engine (default) or the dense "
             "scan-everything compatibility loop",
    )
    p.add_argument(
        "--certify-workers", type=int, default=1, metavar="N",
        help="fan stretch certification out across N processes "
             "(bounded-radius engine; default: 1, in-process)",
    )
    p.add_argument(
        "--certify-sample", type=float, default=None, metavar="P",
        help="certify only a seeded random P-fraction (0 < P <= 1) of the "
             "edges — an estimate for graphs too big for exact "
             "certification, recorded as certification.mode='sampled'",
    )
    p.add_argument("--out", help="write the JSON report here (e.g. BENCH_smoke.json)")
    p.add_argument("--compare", metavar="BASELINE",
                   help="diff this run against a prior report; gate on regressions")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="relative time/memory tolerance for the gate (default 0.5)")
    p.add_argument("--tag", default=None, help="free-form tag stamped into the report")
    p.add_argument("--no-memory", "--no-mem", action="store_true",
                   help="skip the tracemalloc re-run (tracemalloc instruments "
                        "every allocation and distorts hot-loop timings; "
                        "peak_memory_bytes is recorded as null)")
    p.add_argument("--trace", metavar="OUT.jsonl",
                   help="record a hierarchical span trace of the run and "
                        "write it as JSONL (one span per line; inspect with "
                        "'repro trace summarize')")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "graph",
        help="pack / inspect the versioned mmap binary graph format "
             "(repro.kernels)",
    )
    graph_sub = p.add_subparsers(dest="graph_command", required=True)

    p = graph_sub.add_parser(
        "pack",
        help="stream a generated family into a .rpg file "
             "(CSR columns, little-endian, CRC-stamped)",
    )
    p.add_argument("--family", choices=["ring-chords"], default="ring-chords",
                   help="graph family (only ring-chords streams today)")
    p.add_argument("--n", type=int, required=True, help="vertex count")
    p.add_argument("--chords", type=int, default=4,
                   help="chord offsets per vertex (default: 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output .rpg file")
    p.set_defaults(fn=cmd_graph_pack)

    p = graph_sub.add_parser(
        "load", help="open a .rpg file via mmap and print its header"
    )
    p.add_argument("path", help=".rpg file written by 'repro graph pack'")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the CRC32 payload pass (size/magic/version "
                        "checks still run)")
    p.set_defaults(fn=cmd_graph_load)

    p = sub.add_parser(
        "oracle",
        help="preprocess-once / query-many distance serving (repro.oracle)",
    )
    oracle_sub = p.add_subparsers(dest="oracle_command", required=True)

    p = oracle_sub.add_parser(
        "build", help="preprocess a structure file into a pickled oracle"
    )
    p.add_argument("structure",
                   help="the structure to serve (.json or edge list; e.g. a "
                        "spanner written by 'repro spanner --output')")
    p.add_argument("output", help="pickle file the oracle is written to")
    p.add_argument("--landmarks", type=int, default=8,
                   help="number of ALT landmarks (default: 8)")
    p.add_argument("--strategy", choices=["far", "degree"], default="far",
                   help="landmark selection strategy (default: far-sampling)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-size", type=int, default=4096,
                   help="LRU result-cache capacity (default: 4096)")
    p.add_argument("--spot-check", type=int, default=0, metavar="PAIRS",
                   help="verify this many seeded pairs against Dijkstra "
                        "before writing the oracle")
    p.set_defaults(fn=cmd_oracle_build)

    p = oracle_sub.add_parser(
        "query", help="serve distance queries from a pickled oracle"
    )
    p.add_argument("oracle", help="pickle file written by 'repro oracle build'")
    p.add_argument("pair", nargs="*", metavar="VERTEX",
                   help="query pairs, flattened: u v [u v ...]")
    p.add_argument("--k-nearest", metavar="VERTEX", default=None,
                   help="also print the --k nearest vertices of this vertex")
    p.add_argument("--k", type=int, default=5,
                   help="neighbourhood size for --k-nearest (default: 5)")
    p.set_defaults(fn=cmd_oracle_query)

    p = sub.add_parser(
        "trace", help="inspect JSONL span traces (repro.obs)"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    p = trace_sub.add_parser(
        "summarize",
        help="render the span tree with self/total time and top hot spans",
    )
    p.add_argument("trace", help="JSONL trace written by 'repro bench --trace'")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="how many hot spans to rank by self time (default: 10)")
    p.set_defaults(fn=cmd_trace_summarize)

    p = sub.add_parser(
        "serve",
        help="multi-worker shared-memory serving daemon (repro.serve); "
             "prints a READY line once the socket is bound",
    )
    p.add_argument("--profile", default=None,
                   help="serve this harness profile's structure "
                        "(built at --tier with the profile's seed)")
    p.add_argument("--tier", choices=["smoke", "table1", "stress"],
                   default="smoke",
                   help="size tier for --profile (default: smoke)")
    p.add_argument("--structure", default=None,
                   help="serve a structure file instead of a profile "
                        "(.json or edge list)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes over the shared segment (default: 2)")
    p.add_argument("--landmarks", type=int, default=None,
                   help="ALT landmarks (default: the tier's query-mix "
                        "count, or 8 for --structure)")
    p.add_argument("--strategy", choices=["far", "degree"], default="far",
                   help="landmark selection strategy (default: far-sampling)")
    p.add_argument("--seed", type=int, default=None,
                   help="oracle seed (default: the profile's seed, or 0)")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="per-worker LRU result-cache capacity (default: 4096)")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind host (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP bind port; 0 picks an ephemeral port, "
                        "reported on the READY line (default: 0)")
    p.add_argument("--unix", metavar="PATH", default=None,
                   help="serve a unix-domain socket at PATH instead of TCP")
    p.add_argument("--warm", type=int, default=0, metavar="N",
                   help="seeded warm-up queries per worker before ready "
                        "(default: 0)")
    p.add_argument("--max-frame", type=int, default=1 << 20,
                   help="largest accepted/emitted frame body in bytes "
                        "(default: 1 MiB)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="closed/open-loop load generator against the serving daemon "
             "(repro.harness.loadgen); writes a schema-v6 'load' report",
    )
    p.add_argument("--profile", required=True,
                   help="harness profile whose structure and seeded query "
                        "mix drive the load")
    p.add_argument("--tier", choices=["smoke", "table1", "stress"],
                   default="smoke",
                   help="size tier (default: smoke)")
    p.add_argument("--mode", choices=["closed", "open"], default="closed",
                   help="closed loop (fixed concurrency) or open loop "
                        "(seeded arrival schedule) (default: closed)")
    p.add_argument("--concurrency", default="1,2,4", metavar="K[,K...]",
                   help="closed-loop concurrency levels (default: 1,2,4)")
    p.add_argument("--rate", default="100", metavar="QPS[,QPS...]",
                   help="open-loop offered rates in requests/s (default: 100)")
    p.add_argument("--arrivals", choices=["poisson", "bursty"],
                   default="poisson",
                   help="open-loop arrival process (default: poisson)")
    p.add_argument("--duration", type=float, default=5.0, metavar="S",
                   help="open-loop schedule horizon in seconds (default: 5)")
    p.add_argument("--repeats", type=int, default=1, metavar="R",
                   help="closed-loop passes over the query mix (default: 1)")
    p.add_argument("--clients", type=int, default=8, metavar="N",
                   help="open-loop connection pool size (default: 8)")
    p.add_argument("--connect", metavar="ADDR", default=None,
                   help="drive an already-running daemon at host:port or "
                        "unix:/path instead of launching one")
    p.add_argument("--workers", type=int, default=2,
                   help="workers of the self-launched daemon (default: 2; "
                        "ignored with --connect)")
    p.add_argument("--warm", type=int, default=0, metavar="N",
                   help="warm-up queries per worker of the self-launched "
                        "daemon (default: 0)")
    p.add_argument("--out", help="write the JSON load report here")
    p.add_argument("--compare", metavar="BASELINE",
                   help="diff this run against a prior load report; "
                        "gate on regressions")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="relative latency/qps tolerance for the gate "
                        "(default 0.5)")
    p.add_argument("--tag", default=None,
                   help="free-form tag stamped into the report")
    p.set_defaults(fn=cmd_loadgen)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
