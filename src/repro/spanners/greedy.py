"""Greedy (2k−1)-spanner [ADD+93] — the sequential quality baseline.

Scan edges in non-decreasing weight order; add an edge ``{u, v}`` iff the
spanner built so far has ``d_H(u, v) > (2k−1)·w(u, v)``.  Guarantees:
stretch ≤ 2k−1, size O(n^{1+1/k}) (girth argument), and lightness
O(n^{1/k}) up to (1+ε) factors [CW18, FS16] — the paper cites this
algorithm as *existentially optimal* but inherently sequential, which is
precisely the gap its distributed construction fills.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.mst.kruskal import edge_sort_key

Vertex = Hashable


def _bounded_distance(h: WeightedGraph, source: Vertex, target: Vertex, bound: float) -> float:
    """Distance from ``source`` to ``target`` in ``h``, or inf if > ``bound``.

    Dijkstra pruned at ``bound`` — the standard trick that makes the greedy
    spanner near-quadratic instead of cubic.
    """
    dist: Dict[Vertex, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 1
    settled = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u == target:
            return d
        if u in settled:
            continue
        settled.add(u)
        for v, w in h.neighbor_items(u):
            nd = d + w
            if nd <= bound and nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return dist.get(target, float("inf"))


def greedy_spanner(graph: WeightedGraph, stretch: float) -> WeightedGraph:
    """Build the greedy ``stretch``-spanner of ``graph``.

    Parameters
    ----------
    stretch:
        The stretch bound t (use ``2k - 1`` for the classical trade-off).

    Returns
    -------
    WeightedGraph
        A subgraph H of G with ``d_H(u, v) <= stretch * d_G(u, v)`` for all
        pairs (certified per-edge, which implies all pairs by the triangle
        inequality).
    """
    if stretch < 1:
        raise ValueError(f"stretch must be >= 1, got {stretch}")
    spanner = WeightedGraph(graph.vertices())
    for u, v, w in sorted(graph.edges(), key=lambda e: edge_sort_key(*e)):
        if _bounded_distance(spanner, u, v, stretch * w) > stretch * w:
            spanner.add_edge(u, v, w)
    return spanner
