"""Elkin–Neiman spanner as a *native* CONGEST node program.

§5 simulates [EN17b] on cluster graphs; on an ordinary unweighted
communication graph the algorithm is directly distributed — k rounds,
messages of two words ``(s(x), m(x)−1)``.  This module runs it on the
simulator, which (a) validates the pure-function implementation in
:mod:`repro.spanners.elkin_neiman` against a message-level execution, and
(b) demonstrates the O(k)-round claim with *measured* rounds.

Shift values travel as floats; ids as vertex ids — 2 words, inside the
model's O(log n)-bit budget (footnote 8).
"""

from __future__ import annotations

import random

from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from repro.congest.algorithm import CongestAlgorithm, Inbox, NodeView, Outbox
from repro.congest.simulator import SyncNetwork
from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import WeightedGraph
from repro.spanners.elkin_neiman import ElkinNeimanRun, sample_shifts

Vertex = Hashable


class DistributedElkinNeiman(CongestAlgorithm):
    """k-round max-propagation of exponential shifts (unweighted graphs).

    State written per node: ``en_edges`` — the set of neighbours the node
    buys spanner edges to (sources within 1 of its max, §5's rule).

    Activity contract: every node with a neighbour transmits in every
    round until k, so mail alone keeps the whole graph active for the
    algorithm's k rounds — ``en_round`` (mail-bearing rounds seen) then
    coincides with the global round counter, and isolated nodes are
    terminated at setup.
    """

    def __init__(self, shifts: Dict[Vertex, float], k: int) -> None:
        self.shifts = shifts
        self.k = k

    def setup(self, node: NodeView) -> Outbox:
        # Isolated nodes never receive mail, so (activity contract) they
        # must terminate immediately rather than count empty rounds.
        node.state["en_round"] = self.k if node.degree == 0 else 0
        node.state["en_m"] = self.shifts[node.id]
        node.state["en_source"] = node.id
        node.state["en_best"] = {}  # source -> (value, delivering neighbour)
        msg = (node.id, self.shifts[node.id] - 1.0)
        return {nbr: msg for nbr in node.neighbors}

    def step(self, node: NodeView, inbox: Inbox) -> Outbox:
        if node.state["en_round"] >= self.k:
            return {}
        node.state["en_round"] += 1
        for sender, (src, val) in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            best = node.state["en_best"].get(src)
            if best is None or val > best[0]:
                node.state["en_best"][src] = (val, sender)
            if val > node.state["en_m"]:
                node.state["en_m"] = val
                node.state["en_source"] = src
        if node.state["en_round"] >= self.k:
            return {}
        msg = (node.state["en_source"], node.state["en_m"] - 1.0)
        return {nbr: msg for nbr in node.neighbors}

    def is_done(self, node: NodeView) -> bool:
        return node.state.get("en_round", 0) >= self.k

    def finish(self, node: NodeView) -> None:
        edges: Set[Vertex] = set()
        m = node.state["en_m"]
        for src, (val, sender) in node.state["en_best"].items():
            if src != node.id and val >= m - 1.0:
                edges.add(sender)
        node.state["en_edges"] = edges


def elkin_neiman_distributed(
    graph: WeightedGraph,
    k: int,
    rng: Optional[random.Random] = None,
    shifts: Optional[Dict[Vertex, float]] = None,
    network: Optional[SyncNetwork] = None,
) -> Tuple[ElkinNeimanRun, int]:
    """Run the native [EN17b] program; return (run, measured rounds).

    The graph is treated as unweighted (the algorithm's setting); the
    returned edges are a (2k−1)-hop-spanner of it.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = ensure_rng(rng)
    if shifts is None:
        shifts = sample_shifts(list(graph.vertices()), k, rng)
    net = network if network is not None else SyncNetwork(graph)
    net.reset()
    rounds = net.run(DistributedElkinNeiman(shifts, k))
    edges: Set[FrozenSet[Vertex]] = set()
    for v in graph.vertices():
        for nbr in net.view(v).state["en_edges"]:
            edges.add(frozenset((v, nbr)))
    run = ElkinNeimanRun(edges=edges, shifts=shifts, rounds=rounds, messages_per_round=[])
    return run, rounds
