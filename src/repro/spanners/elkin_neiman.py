"""Elkin–Neiman unweighted (2k−1)-spanner [EN17b] (§5 of the paper).

The algorithm as the paper describes it: every vertex ``x`` samples
``r(x)`` from an exponential distribution (conditioned on ``r(x) < k`` —
footnote 10: the stretch analysis assumes it, and it "can be verified
locally"; we resample until it holds).  For ``k`` synchronous rounds each
vertex propagates ``(s(x), m(x) − 1)``, where ``m(x)`` is the largest
shifted value ``r(y) − d_hop(y, x)`` seen so far and ``s(x)`` its source.
Afterwards ``x`` adds, for every source ``y`` whose message reached it with
value at least ``m(x) − 1``, one edge to a neighbour that delivered that
message.  Stretch 2k−1 is guaranteed (given the conditioning); the edge
count is O(n^{1+1/k}) in expectation with rate ``β = ln(n)/k``.

§5 *simulates* this algorithm on cluster graphs whose vertices are MST
clusters; to support that, the implementation here is a pure synchronous
function over an abstract adjacency structure, independent of the CONGEST
simulator, and it reports the per-round message traffic the §5 driver
needs for its convergecast/broadcast round accounting.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple,
)

from repro.determinism import ensure_rng

Node = Hashable


def sample_shifts(
    nodes: Iterable[Node], k: int, rng: random.Random,
    beta: Optional[float] = None,
) -> Dict[Node, float]:
    """Sample ``r(x) ~ Exp(β)`` conditioned on ``r(x) < k`` for every node.

    ``β`` defaults to ``ln(n)/k`` (n = number of nodes), the rate that
    balances O(n^{1/k}) expected edges per vertex against the conditioning.
    """
    nodes = list(nodes)
    n = max(len(nodes), 2)
    rate = beta if beta is not None else math.log(n) / k
    shifts: Dict[Node, float] = {}
    for x in nodes:
        r = rng.expovariate(rate)
        while r >= k:  # footnote 10: condition on r(x) < k
            r = rng.expovariate(rate)
        shifts[x] = r
    return shifts


@dataclass
class ElkinNeimanRun:
    """Result of one Elkin–Neiman run.

    Attributes
    ----------
    edges:
        The spanner edges, each a frozenset pair of nodes.
    shifts:
        The sampled exponential shifts ``r(x)``.
    rounds:
        Number of synchronous propagation rounds (= k).
    messages_per_round:
        Messages exchanged in each round — the §5 cluster-graph driver
        charges its convergecast/broadcast phases from these counts.
    """

    edges: Set[FrozenSet[Node]]
    shifts: Dict[Node, float]
    rounds: int
    messages_per_round: List[int] = field(default_factory=list)


def elkin_neiman_spanner(
    adjacency: Mapping[Node, Set[Node]],
    k: int,
    rng: Optional[random.Random] = None,
    beta: Optional[float] = None,
    shifts: Optional[Dict[Node, float]] = None,
) -> ElkinNeimanRun:
    """Run the [EN17b] spanner on an unweighted graph.

    Parameters
    ----------
    adjacency:
        Node → set of neighbours (symmetric).
    k:
        Stretch parameter; the result is a (2k−1)-spanner.
    rng:
        Random source (fresh one if omitted); ignored when ``shifts`` given.
    shifts:
        Pre-sampled shifts (the §5 case-1 driver samples them centrally at
        the root and broadcasts, so they arrive from outside).

    Returns
    -------
    ElkinNeimanRun
        Spanner edges and instrumentation.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = ensure_rng(rng)
    nodes = list(adjacency)
    if shifts is None:
        shifts = sample_shifts(nodes, k, rng, beta)

    # --- indexed CSR fast path: relabel nodes to 0..n-1 once and run the
    # k propagation rounds over flat arrays.  Every node sends its current
    # (source, value) to every neighbour each round, so a node's inbox is
    # exactly its neighbours' previous outputs — no inbox materialisation.
    # The old dict implementation sorted each inbox by ``repr(sender)``
    # to break value ties; sorting each neighbour row once by that same
    # key preserves the tie-break (first strict maximum wins) while
    # moving the per-round scans to integer-indexed lists.
    n_nodes = len(nodes)
    node_index = {x: i for i, x in enumerate(nodes)}
    repr_rank = {i: r for r, i in enumerate(sorted(range(n_nodes), key=lambda i: repr(nodes[i])))}
    indptr: List[int] = [0] * (n_nodes + 1)
    total = 0
    for i, x in enumerate(nodes):
        total += len(adjacency[x])
        indptr[i + 1] = total
    indices: List[int] = [0] * total
    pos = 0
    for x in nodes:
        row = sorted((node_index[nbr] for nbr in adjacency[x]), key=repr_rank.__getitem__)
        for j in row:
            indices[pos] = j
            pos += 1

    # m[x]: best shifted value seen; best[x][y] = (value, delivering neighbour)
    m: List[float] = [shifts[x] for x in nodes]
    source: List[int] = list(range(n_nodes))
    best: List[Dict[int, Tuple[float, int]]] = [{} for _ in range(n_nodes)]
    # round-0 messages: (s(x), m(x) - 1) to every neighbour
    out_src: List[int] = list(range(n_nodes))
    out_val: List[float] = [m[i] - 1 for i in range(n_nodes)]
    messages_per_round: List[int] = []

    for _round in range(k):
        messages_per_round.append(total)
        new_src = list(out_src)
        new_val = list(out_val)
        for x in range(n_nodes):
            bx = best[x]
            mx = m[x]
            sx = source[x]
            for sender in indices[indptr[x]:indptr[x + 1]]:
                src = out_src[sender]
                val = out_val[sender]
                cur = bx.get(src)
                if cur is None or val > cur[0]:
                    bx[src] = (val, sender)
                if val > mx:
                    mx = val
                    sx = src
            m[x] = mx
            source[x] = sx
            new_src[x] = sx
            new_val[x] = mx - 1
        out_src = new_src
        out_val = new_val

    edges: Set[FrozenSet[Node]] = set()
    for x in range(n_nodes):
        mx_cut = m[x] - 1
        for src, (val, sender) in best[x].items():
            if src == x:
                continue
            if val >= mx_cut:
                edges.add(frozenset((nodes[x], nodes[sender])))
    return ElkinNeimanRun(
        edges=edges, shifts=shifts, rounds=k, messages_per_round=messages_per_round
    )
