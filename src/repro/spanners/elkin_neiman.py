"""Elkin–Neiman unweighted (2k−1)-spanner [EN17b] (§5 of the paper).

The algorithm as the paper describes it: every vertex ``x`` samples
``r(x)`` from an exponential distribution (conditioned on ``r(x) < k`` —
footnote 10: the stretch analysis assumes it, and it "can be verified
locally"; we resample until it holds).  For ``k`` synchronous rounds each
vertex propagates ``(s(x), m(x) − 1)``, where ``m(x)`` is the largest
shifted value ``r(y) − d_hop(y, x)`` seen so far and ``s(x)`` its source.
Afterwards ``x`` adds, for every source ``y`` whose message reached it with
value at least ``m(x) − 1``, one edge to a neighbour that delivered that
message.  Stretch 2k−1 is guaranteed (given the conditioning); the edge
count is O(n^{1+1/k}) in expectation with rate ``β = ln(n)/k``.

§5 *simulates* this algorithm on cluster graphs whose vertices are MST
clusters; to support that, the implementation here is a pure synchronous
function over an abstract adjacency structure, independent of the CONGEST
simulator, and it reports the per-round message traffic the §5 driver
needs for its convergecast/broadcast round accounting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

Node = Hashable


def sample_shifts(
    nodes, k: int, rng: random.Random, beta: Optional[float] = None
) -> Dict[Node, float]:
    """Sample ``r(x) ~ Exp(β)`` conditioned on ``r(x) < k`` for every node.

    ``β`` defaults to ``ln(n)/k`` (n = number of nodes), the rate that
    balances O(n^{1/k}) expected edges per vertex against the conditioning.
    """
    nodes = list(nodes)
    n = max(len(nodes), 2)
    rate = beta if beta is not None else math.log(n) / k
    shifts: Dict[Node, float] = {}
    for x in nodes:
        r = rng.expovariate(rate)
        while r >= k:  # footnote 10: condition on r(x) < k
            r = rng.expovariate(rate)
        shifts[x] = r
    return shifts


@dataclass
class ElkinNeimanRun:
    """Result of one Elkin–Neiman run.

    Attributes
    ----------
    edges:
        The spanner edges, each a frozenset pair of nodes.
    shifts:
        The sampled exponential shifts ``r(x)``.
    rounds:
        Number of synchronous propagation rounds (= k).
    messages_per_round:
        Messages exchanged in each round — the §5 cluster-graph driver
        charges its convergecast/broadcast phases from these counts.
    """

    edges: Set[FrozenSet[Node]]
    shifts: Dict[Node, float]
    rounds: int
    messages_per_round: List[int] = field(default_factory=list)


def elkin_neiman_spanner(
    adjacency: Mapping[Node, Set[Node]],
    k: int,
    rng: Optional[random.Random] = None,
    beta: Optional[float] = None,
    shifts: Optional[Dict[Node, float]] = None,
) -> ElkinNeimanRun:
    """Run the [EN17b] spanner on an unweighted graph.

    Parameters
    ----------
    adjacency:
        Node → set of neighbours (symmetric).
    k:
        Stretch parameter; the result is a (2k−1)-spanner.
    rng:
        Random source (fresh one if omitted); ignored when ``shifts`` given.
    shifts:
        Pre-sampled shifts (the §5 case-1 driver samples them centrally at
        the root and broadcasts, so they arrive from outside).

    Returns
    -------
    ElkinNeimanRun
        Spanner edges and instrumentation.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = rng if rng is not None else random.Random()
    nodes = list(adjacency)
    if shifts is None:
        shifts = sample_shifts(nodes, k, rng, beta)

    # m(x): best shifted value seen; best[x][y] = (value, delivering neighbour)
    m: Dict[Node, float] = dict(shifts)
    source: Dict[Node, Node] = {x: x for x in nodes}
    best: Dict[Node, Dict[Node, Tuple[float, Node]]] = {x: {} for x in nodes}
    # round-0 messages: (s(x), m(x) - 1) to every neighbour
    outgoing: Dict[Node, Tuple[Node, float]] = {x: (x, shifts[x] - 1) for x in nodes}
    messages_per_round: List[int] = []

    for _round in range(k):
        inboxes: Dict[Node, List[Tuple[Node, Node, float]]] = {x: [] for x in nodes}
        count = 0
        for x, (src, val) in outgoing.items():
            for nbr in adjacency[x]:
                inboxes[nbr].append((x, src, val))
                count += 1
        messages_per_round.append(count)
        outgoing = {}
        for x in nodes:
            # deterministic tie-break on equal values: lowest sender id
            inboxes[x].sort(key=lambda t: repr(t[0]))
            for sender, src, val in inboxes[x]:
                cur = best[x].get(src)
                if cur is None or val > cur[0]:
                    best[x][src] = (val, sender)
                if val > m[x]:
                    m[x] = val
                    source[x] = src
            outgoing[x] = (source[x], m[x] - 1)

    edges: Set[FrozenSet[Node]] = set()
    for x in nodes:
        for src, (val, sender) in best[x].items():
            if src == x:
                continue
            if val >= m[x] - 1:
                edges.add(frozenset((x, sender)))
    return ElkinNeimanRun(
        edges=edges, shifts=shifts, rounds=k, messages_per_round=messages_per_round
    )
