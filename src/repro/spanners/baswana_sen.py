"""Baswana–Sen randomized (2k−1)-spanner [BS07].

§5 of the paper uses this algorithm verbatim for the low-weight bucket
``E' = {e : w(e) <= L/n}``: it bounds only the *number* of edges, but on E′
that suffices for lightness because each edge is so light.

The algorithm (weighted version): maintain a clustering, initially every
vertex its own cluster.  In each of ``k − 1`` phases, cluster centers are
sampled with probability ``n^{-1/k}``; a vertex adjacent to a sampled
cluster joins the nearest one (by lightest edge) and adds that edge plus
the lightest edge to every neighbouring cluster that beats it; a vertex
with no sampled neighbour adds the lightest edge to *every* neighbouring
cluster and retires.  A final phase connects every vertex to each adjacent
surviving cluster.  Stretch 2k−1 holds deterministically; the edge count is
O(k·n^{1+1/k}) in expectation.

Round cost in CONGEST: O(k) (the paper, footnote 9).
"""

from __future__ import annotations

import random

from typing import Dict, Hashable, Optional, Tuple, Union

from repro.congest.ledger import RoundLedger
from repro.determinism import ensure_rng
from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import WeightedGraph
from repro.mst.kruskal import edge_sort_key

Vertex = Hashable

#: Rounds charged per phase of the distributed implementation (constant
#: work per phase: sampling announcement, cluster-join, edge selection).
_ROUNDS_PER_PHASE = 3


def baswana_sen_spanner(
    graph: Union[WeightedGraph, CSRGraph],
    k: int,
    rng: Optional[random.Random] = None,
    ledger: Optional[RoundLedger] = None,
) -> WeightedGraph:
    """Build a (2k−1)-spanner of ``graph`` with expected O(k·n^{1+1/k}) edges.

    The "remaining" edge set the algorithm repeatedly scans and prunes is
    kept as the input's frozen CSR view plus a per-arc alive mask: cluster
    scans are integer-indexed row sweeps, and retiring an edge flips two
    bytes (the arc and its mirror) instead of two dict deletions.

    Parameters
    ----------
    graph:
        The input graph — a :class:`WeightedGraph` (frozen internally) or
        an already-frozen :class:`CSRGraph`.
    k:
        Stretch parameter (k >= 1); k = 1 returns the graph itself.
    rng:
        Random source (fresh unseeded one if omitted).
    ledger:
        Optional round ledger; charged ``3k`` rounds (the O(k) CONGEST
        cost with the library's fixed constant).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if ledger is not None:
        ledger.charge("baswana-sen", _ROUNDS_PER_PHASE * k)
    csr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    if k == 1:
        return csr.to_weighted()
    rng = ensure_rng(rng)

    n = csr.n
    p = n ** (-1.0 / k) if n > 1 else 1.0
    indptr, indices, weights, verts = csr.indptr, csr.indices, csr.weights, csr.verts
    index_of = csr.index_of
    mirror = csr.mirror()
    alive = bytearray(b"\x01" * len(indices))
    spanner = WeightedGraph(verts)
    center: Dict[Vertex, Vertex] = {v: v for v in verts}

    def lightest_per_cluster(v: Vertex) -> Dict[Vertex, Tuple[float, Vertex]]:
        """Lightest remaining edge from ``v`` to each adjacent cluster.

        Weight-first comparison; the (deterministic) ``edge_sort_key``
        repr tie-break is only materialised on exact weight ties.
        """
        best: Dict[Vertex, Tuple[float, Vertex]] = {}
        i = index_of(v)
        a, b = indptr[i], indptr[i + 1]
        for s, ui in enumerate(indices[a:b], a):
            if not alive[s]:
                continue
            u = verts[ui]
            cu = center.get(u)
            if cu is None:
                continue
            w = weights[s]
            cur = best.get(cu)
            if cur is None or w < cur[0] or (
                w == cur[0] and edge_sort_key(v, u, w) < edge_sort_key(v, cur[1], cur[0])
            ):
                best[cu] = (w, u)
        return best

    def drop_edges_to_clusters(v: Vertex, clusters: set) -> None:
        """Retire all of ``v``'s remaining edges into any of ``clusters``
        (one row scan for the whole batch)."""
        i = index_of(v)
        a, b = indptr[i], indptr[i + 1]
        for s, ui in enumerate(indices[a:b], a):
            if alive[s] and center.get(verts[ui]) in clusters:
                alive[s] = 0
                alive[mirror[s]] = 0

    for _phase in range(1, k):
        centers = set(center.values())
        sampled = {c for c in centers if rng.random() < p}
        new_center: Dict[Vertex, Vertex] = {
            v: c for v, c in center.items() if c in sampled
        }
        # all vertices decide on the same snapshot of the alive mask (the
        # distributed algorithm is synchronous); drops apply afterwards
        additions = []
        drops = []
        for v in sorted(center, key=repr):
            if center[v] in sampled:
                continue
            best = lightest_per_cluster(v)
            sampled_adjacent = {c: e for c, e in best.items() if c in sampled}
            if not sampled_adjacent:
                # no sampled neighbour: connect to every adjacent cluster, retire
                for c, (w, u) in best.items():
                    additions.append((v, u, w))
                    drops.append((v, c))
            else:
                c_star, (w_star, u_star) = min(
                    sampled_adjacent.items(),
                    key=lambda item, v=v: edge_sort_key(v, item[1][1], item[1][0]),
                )
                additions.append((v, u_star, w_star))
                new_center[v] = c_star
                drops.append((v, c_star))
                for c, (w, u) in best.items():
                    if c == c_star:
                        continue
                    if w < w_star or (
                        w == w_star
                        and edge_sort_key(v, u, w) < edge_sort_key(v, u_star, w_star)
                    ):
                        additions.append((v, u, w))
                        drops.append((v, c))
        for v, u, w in additions:
            spanner.add_edge(v, u, w)
        drops_by_vertex: Dict[Vertex, set] = {}
        for v, c in drops:
            drops_by_vertex.setdefault(v, set()).add(c)
        for v, clusters in drops_by_vertex.items():
            drop_edges_to_clusters(v, clusters)
        center = new_center
        # intra-cluster edges are never needed again
        for i in range(n):
            ci = center.get(verts[i])
            if ci is None:
                continue
            for s in range(indptr[i], indptr[i + 1]):
                if alive[s] and indices[s] > i and center.get(verts[indices[s]]) == ci:
                    alive[s] = 0
                    alive[mirror[s]] = 0

    # final phase: every vertex buys the lightest edge to each adjacent cluster
    for v in sorted(verts, key=repr):
        best = lightest_per_cluster(v)
        for _c, (w, u) in best.items():
            spanner.add_edge(v, u, w)
    return spanner
