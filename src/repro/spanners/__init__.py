"""Spanner substrate algorithms.

* :func:`~repro.spanners.greedy.greedy_spanner` — the [ADD+93] greedy
  (2k−1)-spanner; the paper's quality yardstick (existentially optimal
  [FS16]) and the sequential baseline the benchmarks compare against.
* :func:`~repro.spanners.baswana_sen.baswana_sen_spanner` — the [BS07]
  randomized (2k−1)-spanner used verbatim for the low-weight bucket E′ of
  the §5 construction (O(k) rounds).
* :func:`~repro.spanners.elkin_neiman.elkin_neiman_spanner` — the [EN17b]
  unweighted spanner (exponential shifts, k max-propagation rounds) that
  §5 simulates over its cluster graphs.
"""

from repro.spanners.greedy import greedy_spanner
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.elkin_neiman import (
    ElkinNeimanRun,
    elkin_neiman_spanner,
    sample_shifts,
)
from repro.spanners.elkin_neiman_distributed import (
    DistributedElkinNeiman,
    elkin_neiman_distributed,
)

__all__ = [
    "greedy_spanner",
    "baswana_sen_spanner",
    "elkin_neiman_spanner",
    "ElkinNeimanRun",
    "sample_shifts",
    "DistributedElkinNeiman",
    "elkin_neiman_distributed",
]
