"""repro — reproduction of *Distributed Construction of Light Networks*
(Elkin, Filtser, Neiman; PODC 2020).

Public API highlights
---------------------
Graphs & model
    :class:`repro.graphs.WeightedGraph`, the generators in
    :mod:`repro.graphs`, and the CONGEST simulator in :mod:`repro.congest`.
The paper's constructions (Table 1)
    :func:`repro.core.light_spanner`   — (2k−1)(1+ε)-spanner, lightness
    O(k·n^{1/k})  (§5);
    :func:`repro.core.shallow_light_tree` — (1+O(1)/(α−1), α)-SLT (§4);
    :func:`repro.core.build_net`       — ((1+δ)Δ, Δ/(1+δ))-net (§6);
    :func:`repro.core.doubling_spanner` — (1+ε)-spanner for doubling
    graphs (§7);
    :func:`repro.core.estimate_mst_weight_via_nets` — the §8 reduction.
Measurement
    :mod:`repro.analysis` — stretch / lightness / validity certificates.
Serving
    :mod:`repro.oracle` — preprocess-once/query-many distance oracle
    over any constructed structure (exact-on-structure, so the paper's
    stretch bound carries over to every answer).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.graphs import WeightedGraph
from repro.core import (
    light_spanner,
    shallow_light_tree,
    slt_base,
    build_net,
    greedy_net,
    doubling_spanner,
    estimate_mst_weight_via_nets,
)
from repro.analysis import (
    certify_edge_stretch,
    lightness,
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
)
from repro.oracle import DistanceOracle, build_oracle

__version__ = "1.0.0"

__all__ = [
    "WeightedGraph",
    "light_spanner",
    "shallow_light_tree",
    "slt_base",
    "build_net",
    "greedy_net",
    "doubling_spanner",
    "estimate_mst_weight_via_nets",
    "certify_edge_stretch",
    "lightness",
    "max_edge_stretch",
    "max_pairwise_stretch",
    "root_stretch",
    "DistanceOracle",
    "build_oracle",
    "__version__",
]
