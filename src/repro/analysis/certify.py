"""Bounded-radius batched certification engine for per-edge stretch.

The paper's spanner certificate is per-edge (§5.1: for every edge
``e = {u, v} ∈ E``, ``d_H(u, v) <= (2k−1)(1+ε)·w(e)``), yet the obvious
certifier runs one *full* SSSP in H per vertex — Ω(n·m log n) work of
which almost all is wasted: from a source ``u`` only the distances at
``u``'s incident G-neighbours matter, and those sit inside the ball
``B_H(u, bound · max_incident_w(u))`` whenever the spanner is any good.
This module exploits exactly that (the same truncated-exploration trick
the §7 doubling spanner uses for its 2Δ-bounded searches):

* **edge pruning** — an edge already in H (at no larger weight) has
  ``d_H(u, v) <= w(e)``, stretch at most 1, and is never explored; each
  remaining edge is certified from one endpoint only;
* **targeted, radius-capped search** — per source, a Dijkstra over H's
  frozen CSR arrays that stops as soon as every incident target is
  settled (the work saver: on a good spanner the targets settle long
  before the graph is explored), with the §5.1 radius
  ``bound · max_incident_w(u)`` as the violation certificate: popped
  labels are monotone, so the first pop beyond the radius proves every
  unsettled target violates the bound — ``fail_fast`` callers stop
  right there, exact-value callers count the crossing and carry on;
* **batching** — sources are processed in chunks over shared
  version-stamped scratch arrays (no per-source O(n) reinitialisation)
  and one shared frozen CSR, which is also the unit that
  ``workers=N`` fans out across :mod:`multiprocessing` workers;
* **sampling** — ``sample=p`` certifies a seeded random ``p``-fraction
  of the eligible edges, for graphs too big for exact certification
  (the result is then a lower bound on the true maximum).

Exactness contract: every non-sampled mode returns the same value as the
classic full-SSSP certifier up to float round-off (far below the 1e-9
verification tolerance — the engine certifies each edge from one endpoint
where the classic loop visited both, and summing a path's weights in the
reverse order can differ in the last bit).  When a search hits the radius
truncation, the engine lifts the cap and keeps draining the same heap
(counted in ``Certification.fallbacks``) instead of restarting, unless
``fail_fast`` was requested — the mode :func:`~repro.analysis.validation.
verify_spanner` uses, where crossing the radius already proves the
violation and the exact value is not needed.
"""

from __future__ import annotations

import heapq
import multiprocessing
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.csr import CSRGraph
from repro.graphs.weighted_graph import WeightedGraph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import DEFAULT_COUNT_BOUNDS, MetricsRegistry, Snapshot

INF = float("inf")

#: one unit of per-source work: (h-index of the source,
#: ((h-index of target, edge weight), ...))
SourceWork = Tuple[int, Tuple[Tuple[int, float], ...]]


@dataclass(frozen=True)
class Certification:
    """Outcome and accounting of one certification run.

    ``max_stretch`` is exact (equal to the full-SSSP certifier up to
    float round-off) in every mode except ``"sampled"``, where it is the
    maximum over the sampled edge subset — a lower bound on the true
    value.
    """

    max_stretch: float
    mode: str  # "exact" | "bounded" | "sampled"
    bound: Optional[float]
    workers: int
    sample: Optional[float]
    kernel: str  # "python" (heap engine) | "numpy" (batched matrix kernel)
    edges_total: int  # eligible G edges (before any pruning)
    edges_in_spanner: int  # pruned: already in H at no larger weight
    edges_checked: int  # targets actually certified by a search
    sources_explored: int  # sources that ran a targeted search
    sources_short_circuited: int  # sources with every incident edge pruned
    fallbacks: int  # searches that crossed the radius and kept going
    bound_exceeded: bool  # fail_fast mode: a radius crossing proved violation
    sampled_edges: Optional[int] = None  # == edges_checked when sampling

    @property
    def ok(self) -> bool:
        """True when no violation of ``bound`` was observed (trivially
        True when no bound was given)."""
        if self.bound_exceeded:
            return False
        if self.bound is None:
            return True
        return self.max_stretch <= self.bound + 1e-9

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form for the benchmark report schema."""
        return {
            "mode": self.mode,
            "bound": self.bound,
            "workers": self.workers,
            "sample": self.sample,
            "kernel": self.kernel,
            "edges_total": self.edges_total,
            "edges_in_spanner": self.edges_in_spanner,
            "edges_checked": self.edges_checked,
            "sources_explored": self.sources_explored,
            "sources_short_circuited": self.sources_short_circuited,
            "fallbacks": self.fallbacks,
            "sampled_edges": self.sampled_edges,
        }


def _build_work(
    gcsr: CSRGraph,
    hcsr: CSRGraph,
    sample: Optional[float],
    seed: int,
) -> Tuple[List[SourceWork], int, int, int, bool]:
    """One pass over G's edges producing the per-source target lists.

    Returns ``(work, edges_total, edges_in_spanner, sources_pruned,
    missing_vertex)``; ``missing_vertex`` flags a G vertex with incident
    edges that H does not even contain (stretch is ``inf`` outright; the
    scan stops there, so the other counters are zeroed rather than
    reported half-scanned).
    """
    h_index = {v: i for i, v in enumerate(hcsr.verts)}
    g2h = [h_index.get(v, -1) for v in gcsr.verts]
    rng = random.Random(seed) if sample is not None else None
    work: List[SourceWork] = []
    edges_total = 0
    edges_in_spanner = 0
    sources_pruned = 0
    indptr, indices, weights = gcsr.indptr, gcsr.indices, gcsr.weights
    for ui in range(gcsr.n):
        a, b = indptr[ui], indptr[ui + 1]
        if a == b:
            continue
        targets: List[Tuple[int, float]] = []
        for s in range(a, b):
            vi = indices[s]
            if vi < ui:
                continue  # certified once, from the smaller endpoint
            edges_total += 1
            w = weights[s]
            uh, vh = g2h[ui], g2h[vi]
            if uh < 0 or vh < 0:
                return [], gcsr.m, 0, 0, True
            slot = hcsr.edge_slot(uh, vh)
            # exact comparison on purpose: any slack would mis-prune
            # near-zero-weight edges whose true ratio is large
            if slot >= 0 and hcsr.weights[slot] <= w:
                edges_in_spanner += 1  # d_H <= w(e): stretch at most 1
                continue
            if rng is not None and rng.random() >= sample:
                continue
            targets.append((vh, w))
        if targets:
            work.append((g2h[ui], tuple(targets)))
        else:
            sources_pruned += 1
    return work, edges_total, edges_in_spanner, sources_pruned, False


def _certify_chunk(
    hcsr: CSRGraph,
    work: Sequence[SourceWork],
    lo: int,
    hi: int,
    bound: Optional[float],
    fail_fast: bool,
) -> Tuple[float, int, bool, Snapshot]:
    """Certify ``work[lo:hi]``; returns ``(worst, fallbacks, exceeded,
    metrics snapshot)``.

    The scratch arrays are version-stamped so consecutive sources reuse
    them without O(n) clears: an entry is live only when its stamp
    matches the current source's version.

    The snapshot is the chunk's *local* metrics (per-source target-count
    histogram) — a pool worker aggregates into its own registry and
    ships the picklable snapshot back with the result; the parent folds
    it into the process-wide registry at the chunk boundary, so the
    workers=N totals equal the workers=1 totals exactly.
    """
    chunk_metrics = MetricsRegistry()
    targets_hist = chunk_metrics.histogram(
        "certify.source.targets", DEFAULT_COUNT_BOUNDS
    )
    n = hcsr.n
    indptr, indices, weights = hcsr.indptr, hcsr.indices, hcsr.weights
    dist = [0.0] * n
    stamp = [0] * n  # dist[v] is live iff stamp[v] == version
    done = [0] * n  # v is settled iff done[v] == version
    is_target = [0] * n  # v is an unsettled target iff is_target[v] == version
    version = 0
    worst = 1.0
    fallbacks = 0
    push, pop = heapq.heappush, heapq.heappop
    for src, targets in work[lo:hi]:
        targets_hist.observe(len(targets))
        version += 1
        # the + 1e-9 mirrors the verifiers' ratio tolerance: a crossing
        # proves ratio > bound + 1e-9 for every unsettled target's edge
        cap = (
            (bound + 1e-9) * max(w for _, w in targets)
            if bound is not None else INF
        )
        remaining = 0
        for vh, _ in targets:
            if is_target[vh] != version:
                is_target[vh] = version
                remaining += 1
        stamp[src] = version
        dist[src] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, src)]
        while heap and remaining:
            d, u = pop(heap)
            if done[u] == version or d > dist[u]:
                continue
            if d > cap:
                # every unsettled target is beyond bound · max_incident_w:
                # the certificate is already violated for its edge
                if fail_fast:
                    return INF, fallbacks, True, chunk_metrics.snapshot()
                fallbacks += 1
                cap = INF  # lift the radius and keep draining the same heap
            done[u] = version
            if is_target[u] == version:
                is_target[u] = 0
                remaining -= 1
                if not remaining:
                    break
            a, b = indptr[u], indptr[u + 1]
            for s in range(a, b):
                v = indices[s]
                nd = d + weights[s]
                if stamp[v] != version or nd < dist[v]:
                    stamp[v] = version
                    dist[v] = nd
                    push(heap, (nd, v))
        for vh, w in targets:
            if done[vh] != version:
                # unreachable in H
                return INF, fallbacks, False, chunk_metrics.snapshot()
            ratio = dist[vh] / w
            if ratio > worst:
                worst = ratio
    return worst, fallbacks, False, chunk_metrics.snapshot()


def _certify_chunk_numpy(
    hcsr: CSRGraph,
    work: Sequence[SourceWork],
    bound: Optional[float],
    fail_fast: bool,
    batch: int = 64,
) -> Tuple[float, int, bool, Snapshot]:
    """The numpy sibling of :func:`_certify_chunk`: batched matrix SSSP.

    Sources are settled ``batch`` rows at a time by the vectorized
    frontier-relaxation kernel, each row capped at the same §5.1 radius
    ``(bound + 1e-9) · max_incident_w`` the heap engine truncates at.
    The kernels' cap contract makes the violation test one comparison:
    a target observed above its row's cap has true distance above the
    cap (entries at or below the cap are exact), so ``fail_fast`` stops
    right there, and exact-value callers re-run that one source uncapped
    (counted in ``fallbacks``, mirroring the heap engine's lifted-cap
    drains).
    """
    from repro.kernels import npkern

    chunk_metrics = MetricsRegistry()
    targets_hist = chunk_metrics.histogram(
        "certify.source.targets", DEFAULT_COUNT_BOUNDS
    )
    prep = npkern.prepare(hcsr.indptr, hcsr.indices, hcsr.weights)
    worst = 1.0
    fallbacks = 0
    for lo in range(0, len(work), batch):
        sub = work[lo:lo + batch]
        sources = [src for src, _ in sub]
        caps: Optional[List[Optional[float]]] = None
        if bound is not None:
            caps = [
                (bound + 1e-9) * max(w for _, w in targets)
                for _, targets in sub
            ]
        dm = npkern.sssp_matrix_prepared(prep, sources, caps)
        for r, (src, targets) in enumerate(sub):
            targets_hist.observe(len(targets))
            row = dm[r]
            cap = caps[r] if caps is not None else None
            if cap is not None and any(float(row[vh]) > cap for vh, _ in targets):
                # beyond-cap observation == certified violation of bound
                if fail_fast:
                    return INF, fallbacks, True, chunk_metrics.snapshot()
                fallbacks += 1
                row = npkern.sssp_matrix_prepared(prep, [src], None)[0]
            for vh, w in targets:
                d = float(row[vh])
                if d == INF:
                    return INF, fallbacks, False, chunk_metrics.snapshot()
                ratio = d / w
                if ratio > worst:
                    worst = ratio
    return worst, fallbacks, False, chunk_metrics.snapshot()


# -- multiprocessing plumbing -------------------------------------------------
# Workers inherit (or unpickle, under spawn) the frozen CSR and the full
# work list exactly once via the pool initializer; tasks then name chunks
# by index range so no per-task graph pickling happens.
_POOL_STATE: Dict[str, object] = {}


def _pool_init(
    hcsr: CSRGraph,
    work: Sequence[SourceWork],
    bound: Optional[float],
    fail_fast: bool,
) -> None:
    _POOL_STATE["args"] = (hcsr, work, bound, fail_fast)


def _pool_chunk(span: Tuple[int, int]) -> Tuple[float, int, bool, Snapshot]:
    hcsr, work, bound, fail_fast = _POOL_STATE["args"]
    return _certify_chunk(hcsr, work, span[0], span[1], bound, fail_fast)


def certify_edge_stretch(
    graph: WeightedGraph,
    spanner: WeightedGraph,
    bound: Optional[float] = None,
    workers: int = 1,
    sample: Optional[float] = None,
    seed: int = 0,
    fail_fast: bool = False,
    kernel: str = "python",
) -> Certification:
    """Certify ``max_{e={u,v} ∈ E(G)} d_H(u, v) / w(e)`` with the
    bounded-radius batched engine.

    Parameters
    ----------
    graph, spanner:
        The host graph G and the subgraph H to certify (both are frozen
        to their cached CSR views).
    bound:
        The stretch guarantee being certified.  Sets the per-source
        truncation radius ``bound · max_incident_w(u)``; the returned
        value stays exact (see the module docstring) unless
        ``fail_fast`` is also given.
    workers:
        ``> 1`` chunks the per-source work across that many
        :mod:`multiprocessing` processes sharing one frozen CSR.
    sample:
        When in ``(0, 1]``, certify only a seeded random fraction of
        the eligible edges; the result is a lower bound on the true
        maximum and ``sampled_edges`` records the subset size.
    seed:
        Seed for the edge-sampling RNG (ignored unless ``sample`` is
        given).
    fail_fast:
        With ``bound``: stop at the first certified violation (radius
        crossing) and report ``max_stretch = inf`` with
        ``bound_exceeded=True`` instead of computing the exact value.
    kernel:
        SSSP backend for the per-source searches: ``"python"`` (the
        default heap engine), ``"numpy"`` (batched matrix relaxation via
        :mod:`repro.kernels` — same values to 1e-9, one vectorized pass
        per source batch), or ``"auto"``.  The numpy path is in-process;
        ``workers`` is ignored there (array batching replaces process
        fan-out).

    Raises
    ------
    ValueError
        On a non-positive ``workers``, a ``sample`` outside ``(0, 1]``,
        ``fail_fast`` without ``bound``, or an unknown kernel.
    RuntimeError
        On ``kernel="numpy"`` without numpy installed.
    """
    from repro.kernels import resolve_kernel

    backend = resolve_kernel(kernel)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if sample is not None and not (0.0 < sample <= 1.0):
        raise ValueError(f"sample must be in (0, 1], got {sample}")
    if fail_fast and bound is None:
        raise ValueError("fail_fast requires a stretch bound")
    gcsr = graph.freeze() if isinstance(graph, WeightedGraph) else graph
    hcsr = spanner.freeze() if isinstance(spanner, WeightedGraph) else spanner
    mode = "sampled" if sample is not None else (
        "bounded" if bound is not None else "exact"
    )

    with obs_trace.span("certify.build_work", mode=mode):
        work, edges_total, edges_in_spanner, pruned, missing = _build_work(
            gcsr, hcsr, sample, seed
        )
    edges_checked = sum(len(targets) for _, targets in work)

    def _result(worst: float, fallbacks: int, exceeded: bool) -> Certification:
        reg = obs_metrics.registry()
        reg.counter("certify.edges.total").inc(edges_total)
        reg.counter("certify.edges.pruned").inc(edges_in_spanner)
        reg.counter("certify.edges.checked").inc(edges_checked)
        reg.counter("certify.sources.explored").inc(len(work))
        reg.counter("certify.sources.short_circuited").inc(pruned)
        reg.counter("certify.search.fallbacks").inc(fallbacks)
        if exceeded:
            reg.counter("certify.fail_fast.exceeded").inc()
        return Certification(
            max_stretch=worst,
            mode=mode,
            bound=bound,
            workers=workers,
            sample=sample,
            kernel=backend,
            edges_total=edges_total,
            edges_in_spanner=edges_in_spanner,
            edges_checked=edges_checked,
            sources_explored=len(work),
            sources_short_circuited=pruned,
            fallbacks=fallbacks,
            bound_exceeded=exceeded,
            sampled_edges=edges_checked if sample is not None else None,
        )

    if missing:
        # an edge endpoint is not even a vertex of H: stretch is inf
        # (matches the classic certifier's dist.get(v, inf) early return)
        return _result(INF, 0, False)
    if not work:
        return _result(1.0, 0, False)

    if backend == "numpy":
        with obs_trace.span("certify.chunk", sources=len(work), kernel="numpy"):
            worst, fallbacks, exceeded, chunk_snap = _certify_chunk_numpy(
                hcsr, work, bound, fail_fast
            )
        obs_metrics.merge(chunk_snap)
        return _result(worst, fallbacks, exceeded)

    if workers == 1 or len(work) < 2 * workers:
        with obs_trace.span("certify.chunk", sources=len(work)):
            worst, fallbacks, exceeded, chunk_snap = _certify_chunk(
                hcsr, work, 0, len(work), bound, fail_fast
            )
        obs_metrics.merge(chunk_snap)
        return _result(worst, fallbacks, exceeded)

    # a few chunks per worker smooths imbalance between cheap
    # (short-circuiting) and expensive (deep-exploration) sources
    step = max(1, len(work) // (workers * 4))
    spans = [(lo, min(lo + step, len(work))) for lo in range(0, len(work), step)]
    worst, fallbacks, exceeded = 1.0, 0, False
    with obs_trace.span("certify.pool", workers=workers, chunks=len(spans)):
        with multiprocessing.Pool(
            processes=workers,
            initializer=_pool_init,
            initargs=(hcsr, work, bound, fail_fast),
        ) as pool:
            # imap_unordered so a fail_fast violation stops the run at the
            # first exceeded chunk instead of draining every span
            for w, f, e, chunk_snap in pool.imap_unordered(_pool_chunk, spans):
                # fold the worker's local metrics in at the chunk boundary
                # (workers never touch the parent's registry directly)
                obs_metrics.merge(chunk_snap)
                worst = max(worst, w)
                fallbacks += f
                exceeded = exceeded or e
                if exceeded and fail_fast:
                    pool.terminate()
                    break
    return _result(worst, fallbacks, exceeded)
