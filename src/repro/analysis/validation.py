"""Structural verification of the paper's objects.

Each ``verify_*`` raises :class:`ValidationError` with a precise message
on the first violated property — the test-suite and the benchmark harness
run them on every produced object, so a regression in any construction
fails loudly rather than skewing the measured numbers.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.oracle import DistanceOracle

from repro.analysis.certify import certify_edge_stretch
from repro.analysis.lightness import lightness
from repro.analysis.stretch import root_stretch
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph


class ValidationError(AssertionError):
    """A produced object violates one of the paper's guarantees."""


def verify_subgraph(graph: WeightedGraph, subgraph: WeightedGraph) -> None:
    """Every edge of ``subgraph`` must be an edge of ``graph``, same weight.

    The paper's spanners and SLTs are subgraphs of G — virtual shortcuts
    are not allowed (hopset edges must be expanded to witness paths first).
    """
    for u, v, w in subgraph.edges():
        if not graph.has_edge(u, v):
            raise ValidationError(f"edge {{{u!r}, {v!r}}} not in the host graph")
        if abs(graph.weight(u, v) - w) > 1e-9:
            raise ValidationError(
                f"edge {{{u!r}, {v!r}}} weight {w} differs from host "
                f"{graph.weight(u, v)}"
            )


def verify_spanning_tree(graph: WeightedGraph, tree: WeightedGraph) -> None:
    """``tree`` must be a spanning tree of ``graph`` and a subgraph of it."""
    verify_subgraph(graph, tree)
    if set(tree.vertices()) != set(graph.vertices()):
        raise ValidationError("tree does not span all vertices")
    if not tree.is_tree():
        raise ValidationError(f"not a tree: n={tree.n}, m={tree.m}")


def verify_spanner(
    graph: WeightedGraph,
    spanner: WeightedGraph,
    stretch: float,
    workers: int = 1,
) -> None:
    """``spanner`` must be a subgraph with per-edge stretch <= ``stretch``.

    Runs the bounded-radius engine with the guarantee as the truncation
    radius: on a valid spanner no search ever leaves the certified ball,
    and an invalid one is rejected at the first radius crossing
    (``fail_fast``) without paying for the exact worst value.
    """
    verify_subgraph(graph, spanner)
    if set(spanner.vertices()) != set(graph.vertices()):
        raise ValidationError("spanner does not span all vertices")
    cert = certify_edge_stretch(  # repro: allow[REP1001] -- seed only drives sample=; validation always certifies every edge
        graph, spanner, bound=stretch, workers=workers, fail_fast=True
    )
    if cert.bound_exceeded:
        raise ValidationError(
            f"stretch violated: some edge has d_H(u, v) > "
            f"{stretch:.6f} · w(e) (certified by radius truncation)"
        )
    if cert.max_stretch > stretch + 1e-9:
        raise ValidationError(
            f"stretch violated: measured {cert.max_stretch:.6f} "
            f"> allowed {stretch:.6f}"
        )


def verify_slt(
    graph: WeightedGraph,
    tree: WeightedGraph,
    root: Vertex,
    alpha: float,
    beta: float,
    mst: Optional[WeightedGraph] = None,
) -> None:
    """``tree`` must be an (α, β)-SLT: root-stretch <= α, lightness <= β.

    Pass a precomputed ``mst`` to skip the Kruskal run the lightness
    check needs (callers that already hold one — reports, the harness —
    would otherwise recompute it on every verify).  Lightness is
    measured through :func:`repro.analysis.lightness.lightness`, whose
    zero-weight-MST handling turns the old ``ZeroDivisionError`` into a
    proper :class:`ValidationError` when the tree carries weight anyway.
    """
    verify_spanning_tree(graph, tree)
    measured_stretch = root_stretch(graph, tree, root, bound=alpha)
    if measured_stretch > alpha + 1e-9:
        raise ValidationError(
            f"SLT root-stretch violated: {measured_stretch:.6f} > {alpha:.6f}"
        )
    measured_lightness = lightness(graph, tree, mst)
    if measured_lightness > beta + 1e-9:
        raise ValidationError(
            f"SLT lightness violated: {measured_lightness:.6f} > {beta:.6f}"
        )


def verify_oracle(
    structure: WeightedGraph,
    oracle: "DistanceOracle",
    pairs: int = 32,
    seed: int = 0,
    tolerance: float = 1e-9,
) -> None:
    """``oracle`` must answer exactly on ``structure``.

    The serving layer's contract is *exact-on-structure* (its stretch
    guarantee vs the host graph is inherited from the structure, so any
    deviation here silently voids the paper bound).  This spot-checks
    ``pairs`` seeded random pairs against a fresh Dijkstra per source —
    the harness and ``repro oracle build --spot-check`` run it after
    preprocessing, and CI's oracle-smoke job runs it over every smoke
    profile's structure.
    """
    verts = sorted(structure.vertices(), key=repr)
    oracle_verts = set(oracle.csr.verts)
    if oracle_verts != set(verts):
        raise ValidationError(
            f"oracle serves {len(oracle_verts)} vertices but the structure "
            f"has {len(verts)}"
        )
    if len(verts) < 2:
        return
    rng = random.Random(seed)
    inf = float("inf")
    by_source = {}
    for _ in range(pairs):
        u, v = rng.choice(verts), rng.choice(verts)
        if u not in by_source:
            by_source[u] = dijkstra(structure, u)[0]
        want = by_source[u].get(v, inf)
        got = oracle.query(u, v)
        if got == want:  # covers the inf == inf case exactly
            continue
        if abs(got - want) > tolerance:
            raise ValidationError(
                f"oracle answer for ({u!r}, {v!r}) is {got!r}, "
                f"Dijkstra on the structure says {want!r}"
            )


def verify_net(
    graph: WeightedGraph,
    points: Iterable[Vertex],
    alpha: float,
    beta: float,
) -> None:
    """``points`` must be an (α, β)-net: α-covering and β-separated (§6)."""
    points = set(points)
    if not points:
        raise ValidationError("net is empty")
    for p in sorted(points, key=repr):
        if not graph.has_vertex(p):
            raise ValidationError(f"net point {p!r} is not a vertex")
    dist, _ = dijkstra(graph, points)
    for v in graph.vertices():
        d = dist.get(v, float("inf"))
        if d > alpha + 1e-9:
            raise ValidationError(
                f"covering violated at {v!r}: nearest net point at {d:.6f} > α={alpha:.6f}"
            )
    pts = sorted(points, key=repr)
    for p in pts:
        dp, _ = dijkstra(graph, p)
        for q in pts:
            if q == p:
                continue
            if dp.get(q, float("inf")) <= beta - 1e-9:
                raise ValidationError(
                    f"separation violated: d({p!r}, {q!r}) = {dp[q]:.6f} <= β={beta:.6f}"
                )
