"""Measurement and verification of the paper's quality metrics."""

from repro.analysis.certify import Certification, certify_edge_stretch
from repro.analysis.stretch import (
    max_edge_stretch,
    max_pairwise_stretch,
    root_stretch,
    average_stretch,
    sample_pairwise_stretch,
)
from repro.analysis.lightness import lightness, sparsity
from repro.analysis.report import (
    MetricRow,
    QualityReport,
    net_report,
    slt_report,
    spanner_report,
)
from repro.analysis.validation import (
    verify_spanner,
    verify_subgraph,
    verify_spanning_tree,
    verify_slt,
    verify_net,
    verify_oracle,
)

__all__ = [
    "Certification",
    "certify_edge_stretch",
    "max_edge_stretch",
    "max_pairwise_stretch",
    "root_stretch",
    "average_stretch",
    "sample_pairwise_stretch",
    "lightness",
    "sparsity",
    "MetricRow",
    "QualityReport",
    "net_report",
    "slt_report",
    "spanner_report",
    "verify_spanner",
    "verify_subgraph",
    "verify_spanning_tree",
    "verify_slt",
    "verify_net",
    "verify_oracle",
]
