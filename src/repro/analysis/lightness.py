"""Lightness and sparsity — the paper's weight/size metrics (§1).

Lightness of H = ``w(H) / w(MST(G))``; sparsity = number of edges.  The
MST weight is computed with the library's deterministic Kruskal so every
benchmark normalizes against the same tree.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.weighted_graph import WeightedGraph
from repro.mst.kruskal import kruskal_mst


def lightness(
    graph: WeightedGraph,
    subgraph: WeightedGraph,
    mst: Optional[WeightedGraph] = None,
) -> float:
    """``w(subgraph) / w(MST(graph))`` (pass ``mst`` to reuse a computed one)."""
    tree = mst if mst is not None else kruskal_mst(graph)
    denom = tree.total_weight()
    if denom == 0:
        return 1.0 if subgraph.total_weight() == 0 else float("inf")
    return subgraph.total_weight() / denom


def sparsity(subgraph: WeightedGraph) -> int:
    """Number of edges of the subgraph (the paper's "size" column)."""
    return subgraph.m
