"""Uniform quality reports for the paper's objects.

:func:`spanner_report` / :func:`slt_report` / :func:`net_report` bundle
every Table-1 column for one produced object — measured value, guaranteed
bound, and a pass flag — so callers (CLI, benchmarks, notebooks) render
consistent summaries and the certification logic lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.certify import certify_edge_stretch
from repro.analysis.lightness import lightness, sparsity
from repro.analysis.stretch import root_stretch
from repro.analysis.validation import ValidationError, verify_net, verify_subgraph
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.mst.kruskal import kruskal_mst


@dataclass
class MetricRow:
    """One metric of a report: measured value vs guaranteed bound."""

    name: str
    measured: float
    bound: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True when the measurement respects the bound (or none given)."""
        if self.bound is None:
            return True
        return self.measured <= self.bound + 1e-9

    def render(self) -> str:
        """One aligned text line."""
        bound = f" (bound {self.bound:.4g})" if self.bound is not None else ""
        flag = "" if self.ok else "  ** VIOLATED **"
        return f"{self.name:<16} {self.measured:.4g}{bound}{flag}"


@dataclass
class QualityReport:
    """A titled collection of metric rows.

    ``certification`` carries the stretch-certification accounting
    (mode, sampled edges, worker count — see
    :meth:`repro.analysis.certify.Certification.to_dict`) when the
    report was produced by the bounded engine; ``None`` otherwise.
    """

    title: str
    rows: List[MetricRow] = field(default_factory=list)
    certification: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """True when every metric respects its bound."""
        return all(r.ok for r in self.rows)

    def metric(self, name: str) -> MetricRow:
        """Look up a row by name (raises KeyError if absent)."""
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def render(self) -> str:
        """Multi-line text rendering."""
        lines = [self.title, "-" * len(self.title)]
        lines.extend(r.render() for r in self.rows)
        return "\n".join(lines)


def spanner_report(
    graph: WeightedGraph,
    spanner: WeightedGraph,
    stretch_bound: Optional[float] = None,
    lightness_bound: Optional[float] = None,
    size_bound: Optional[float] = None,
    rounds: Optional[int] = None,
    title: str = "spanner",
    certify_workers: int = 1,
    certify_sample: Optional[float] = None,
    certify_seed: int = 0,
    certify_kernel: str = "python",
) -> QualityReport:
    """Report for a spanner: stretch, lightness, size (+ optional rounds).

    Stretch is certified by the bounded-radius engine, truncating each
    per-source search at ``stretch_bound · max_incident_w`` (exact value
    either way).  ``certify_workers > 1`` fans sources across processes;
    ``certify_sample=p`` certifies a seeded ``p``-fraction of the edges
    (then the stretch row is a lower bound and the report's
    ``certification`` block records ``mode="sampled"``);
    ``certify_kernel`` selects the SSSP backend the engine searches with
    (see :mod:`repro.kernels`).

    Raises
    ------
    ValidationError
        If ``spanner`` is not a subgraph of ``graph``.
    """
    verify_subgraph(graph, spanner)
    mst = kruskal_mst(graph)
    cert = certify_edge_stretch(
        graph, spanner, bound=stretch_bound,
        workers=certify_workers, sample=certify_sample, seed=certify_seed,
        kernel=certify_kernel,
    )
    rows = [
        MetricRow("stretch", cert.max_stretch, stretch_bound),
        MetricRow("lightness", lightness(graph, spanner, mst), lightness_bound),
        MetricRow("edges", float(sparsity(spanner)), size_bound),
    ]
    if rounds is not None:
        rows.append(MetricRow("rounds", float(rounds)))
    return QualityReport(title=title, rows=rows, certification=cert.to_dict())


def slt_report(
    graph: WeightedGraph,
    tree: WeightedGraph,
    root: Vertex,
    stretch_bound: Optional[float] = None,
    lightness_bound: Optional[float] = None,
    rounds: Optional[int] = None,
    title: str = "shallow-light tree",
) -> QualityReport:
    """Report for an SLT: root-stretch and lightness.

    Raises
    ------
    ValidationError
        If ``tree`` is not a spanning tree subgraph of ``graph``.
    """
    from repro.analysis.validation import verify_spanning_tree

    verify_spanning_tree(graph, tree)
    mst = kruskal_mst(graph)
    rows = [
        MetricRow(
            "root-stretch",
            root_stretch(graph, tree, root, bound=stretch_bound),
            stretch_bound,
        ),
        MetricRow("lightness", lightness(graph, tree, mst), lightness_bound),
    ]
    if rounds is not None:
        rows.append(MetricRow("rounds", float(rounds)))
    return QualityReport(title=title, rows=rows)


def net_report(
    graph: WeightedGraph,
    points: Iterable[Vertex],
    alpha: float,
    beta: float,
    rounds: Optional[int] = None,
    title: str = "net",
) -> QualityReport:
    """Report for a net: worst covering distance and closest pair.

    Raises
    ------
    ValidationError
        If the covering/separation guarantees are violated.
    """
    points = set(points)
    verify_net(graph, points, alpha, beta)
    dist, _ = dijkstra(graph, points)
    worst_cover = max(dist.values()) if dist else 0.0
    closest = float("inf")
    pts = sorted(points, key=repr)
    for p in pts:
        dp, _ = dijkstra(graph, p)
        for q in pts:
            if q != p:
                closest = min(closest, dp[q])
    rows = [
        MetricRow("covering", worst_cover, alpha),
        MetricRow("size", float(len(points))),
    ]
    if closest < float("inf"):
        # separation is a lower bound: report the margin β/closest <= 1
        rows.append(MetricRow("beta/closest", beta / closest, 1.0))
    if rounds is not None:
        rows.append(MetricRow("rounds", float(rounds)))
    return QualityReport(title=title, rows=rows)
