"""Stretch measurement.

The paper's stretch analyses are per-edge (§5.1: "By the triangle
inequality, it suffices to show that for every edge {u,v} ∈ E,
d_H(u, v) <= (2k−1)(1+ε)·w(e)"), so :func:`max_edge_stretch` is the
canonical certificate; :func:`max_pairwise_stretch` is the exhaustive
(all-pairs) check for test-sized graphs, and :func:`root_stretch` is the
SLT's single-source variant.

Since the bounded-radius batched engine landed, :func:`max_edge_stretch`
delegates to :mod:`repro.analysis.certify` — the same values up to float
round-off, a fraction of the work (targeted, radius-truncated searches
instead of one full SSSP per vertex), and optional process parallelism.

Disconnection contract (pinned by the test-suite): all three maximum
measures return ``inf`` as soon as any required distance is missing in
the spanner/tree — an edge endpoint unreachable for
:func:`max_edge_stretch`, any G-reachable pair for
:func:`max_pairwise_stretch` and :func:`root_stretch`.
:func:`average_stretch` likewise returns ``inf`` (the missing pair
contributes an infinite term to the mean) rather than skipping the pair.
Pairs that are disconnected in *G itself* are no constraint at all: every
measure iterates G-reachable pairs only, so a spanner of a disconnected
graph certifies finite as long as it preserves each component.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.oracle import DistanceOracle

from repro.analysis.certify import certify_edge_stretch
from repro.graphs.shortest_paths import bounded_dijkstra, dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


def max_edge_stretch(
    graph: WeightedGraph,
    spanner: WeightedGraph,
    bound: Optional[float] = None,
    workers: int = 1,
    kernel: str = "python",
) -> float:
    """``max_{e={u,v} ∈ E(G)} d_H(u, v) / w(e)``.

    By the triangle inequality this upper-bounds the all-pairs stretch.
    Runs on the bounded-radius batched certification engine
    (:func:`repro.analysis.certify.certify_edge_stretch`): edges already
    in H are skipped outright, and each remaining edge is settled by a
    targeted search from one endpoint — that target-stop, not the bound,
    is what keeps the exploration small.  The value is exact regardless
    of ``bound``: passing the construction's stretch guarantee makes the
    engine count crossings of the §5.1 radius ``bound · max_incident_w``
    (each one a certified violation — the ``fail_fast`` early-reject
    that :func:`~repro.analysis.validation.verify_spanner` uses) without
    giving up the exact answer.  ``workers > 1`` fans the sources out
    across processes; ``kernel="numpy"`` runs the per-source searches on
    the batched matrix kernel instead (see :mod:`repro.kernels`).
    """
    return certify_edge_stretch(  # repro: allow[REP1001] -- seed only drives sample=, which this exact (unsampled) query never passes
        graph, spanner, bound=bound, workers=workers, kernel=kernel
    ).max_stretch


def max_pairwise_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """Exact all-pairs stretch ``max_{u≠v} d_H(u,v) / d_G(u,v)``."""
    worst = 1.0
    for u in graph.vertices():
        dg, _ = dijkstra(graph, u)
        dh, _ = dijkstra(spanner, u)
        for v, d in dg.items():
            if v == u or d == 0:
                continue
            s = dh.get(v, INF)
            if s == INF:
                return INF
            worst = max(worst, s / d)
    return worst


def average_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """Mean pairwise stretch (reported alongside the max in benchmarks).

    Returns ``inf`` when the spanner disconnects any G-reachable pair
    (the missing pair's infinite stretch dominates the mean), mirroring
    the max measures' contract.
    """
    total = 0.0
    count = 0
    for u in graph.vertices():
        dg, _ = dijkstra(graph, u)
        dh, _ = dijkstra(spanner, u)
        for v, d in dg.items():
            if v == u or d == 0:
                continue
            total += dh.get(v, INF) / d
            count += 1
    return total / count if count else 1.0


def sample_pairwise_stretch(
    graph: WeightedGraph,
    spanner: WeightedGraph,
    pairs: int = 64,
    seed: int = 0,
    graph_oracle: Optional["DistanceOracle"] = None,
    spanner_oracle: Optional["DistanceOracle"] = None,
) -> float:
    """Oracle-served spot-check of the pairwise stretch.

    Draws ``pairs`` seeded random vertex pairs and serves both distances
    through :class:`~repro.oracle.DistanceOracle` instances — ``d_G``
    and ``d_H`` are each exact-on-their-graph, so every sampled ratio is
    a true pairwise stretch and the maximum is a lower bound on
    :func:`max_pairwise_stretch` at a fraction of its ``n`` full-SSSP
    cost.  Callers holding prebuilt oracles (the harness's query suite,
    long-lived serving processes) pass them in; otherwise both are built
    here with the same ``seed``.

    Returns ``inf`` as soon as a sampled pair is connected in G but not
    in the spanner (the disconnection contract of the exact measures).
    """
    verts = list(graph.vertices())
    if len(verts) < 2:
        return 1.0
    # deferred: repro.oracle serves structures produced by the paper's
    # constructions, which repro.analysis certifies — import lazily so
    # the two layers stay import-order independent
    from repro.oracle import build_oracle

    go = graph_oracle if graph_oracle is not None else build_oracle(graph, seed=seed)
    so = (
        spanner_oracle if spanner_oracle is not None
        else build_oracle(spanner, seed=seed)
    )
    rng = random.Random(seed)
    worst = 1.0
    for _ in range(pairs):
        u, v = rng.sample(verts, 2)
        dg = go.query(u, v)
        if dg == INF or dg == 0.0:
            continue  # pairs disconnected in G constrain nothing
        try:
            dh = so.query(u, v)
        except ValueError:
            # a G vertex the spanner does not even contain is the
            # extreme disconnection case — same contract, same answer
            return INF
        if dh == INF:
            return INF
        worst = max(worst, dh / dg)
    return worst


def root_stretch(
    graph: WeightedGraph,
    tree: WeightedGraph,
    root: Vertex,
    bound: Optional[float] = None,
) -> float:
    """``max_v d_T(rt, v) / d_G(rt, v)`` — the SLT's distortion (§4).

    With ``bound`` given, the tree exploration is truncated at radius
    ``bound · ecc_G(root)`` — any vertex outside that ball already
    violates the bound, and the exploration falls back to the full
    search only in that (failing) case, so the returned value is exact
    either way.
    """
    dg, _ = dijkstra(graph, root)
    if bound is not None:
        finite = [d for d in dg.values() if d < INF]
        radius = bound * max(finite, default=0.0)
        dt, _ = bounded_dijkstra(tree, root, radius)
        if any(v not in dt for v in dg):
            dt, _ = dijkstra(tree, root)  # violation: recover the exact value
    else:
        dt, _ = dijkstra(tree, root)
    worst = 1.0
    for v, d in dg.items():
        if v == root or d == 0:
            continue
        s = dt.get(v, INF)
        if s == INF:
            return INF
        worst = max(worst, s / d)
    return worst
