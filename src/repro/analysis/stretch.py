"""Stretch measurement.

The paper's stretch analyses are per-edge (§5.1: "By the triangle
inequality, it suffices to show that for every edge {u,v} ∈ E,
d_H(u, v) <= (2k−1)(1+ε)·w(e)"), so :func:`max_edge_stretch` is the
canonical certificate; :func:`max_pairwise_stretch` is the exhaustive
(all-pairs) check for test-sized graphs, and :func:`root_stretch` is the
SLT's single-source variant.
"""

from __future__ import annotations

from typing import Hashable

from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


def max_edge_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """``max_{e={u,v} ∈ E(G)} d_H(u, v) / w(e)``.

    By the triangle inequality this upper-bounds the all-pairs stretch.
    Computed by one Dijkstra in H per vertex (only vertices with incident
    G-edges matter).
    """
    # dijkstra auto-freezes `spanner` on the first call and reuses the
    # cached CSR view for all n runs
    worst = 1.0
    for u in graph.vertices():
        incident = list(graph.neighbor_items(u))
        if not incident:
            continue
        dist, _ = dijkstra(spanner, u)
        for v, w in incident:
            d = dist.get(v, INF)
            if d == INF:
                return INF
            worst = max(worst, d / w)
    return worst


def max_pairwise_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """Exact all-pairs stretch ``max_{u≠v} d_H(u,v) / d_G(u,v)``."""
    worst = 1.0
    for u in graph.vertices():
        dg, _ = dijkstra(graph, u)
        dh, _ = dijkstra(spanner, u)
        for v, d in dg.items():
            if v == u or d == 0:
                continue
            s = dh.get(v, INF)
            if s == INF:
                return INF
            worst = max(worst, s / d)
    return worst


def average_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """Mean pairwise stretch (reported alongside the max in benchmarks)."""
    total = 0.0
    count = 0
    for u in graph.vertices():
        dg, _ = dijkstra(graph, u)
        dh, _ = dijkstra(spanner, u)
        for v, d in dg.items():
            if v == u or d == 0:
                continue
            total += dh.get(v, INF) / d
            count += 1
    return total / count if count else 1.0


def root_stretch(graph: WeightedGraph, tree: WeightedGraph, root: Vertex) -> float:
    """``max_v d_T(rt, v) / d_G(rt, v)`` — the SLT's distortion (§4)."""
    dg, _ = dijkstra(graph, root)
    dt, _ = dijkstra(tree, root)
    worst = 1.0
    for v, d in dg.items():
        if v == root or d == 0:
            continue
        s = dt.get(v, INF)
        if s == INF:
            return INF
        worst = max(worst, s / d)
    return worst
