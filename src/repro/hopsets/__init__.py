"""Path-reporting hopsets over a random skeleton ([EN16] stand-in, §7)."""

from repro.hopsets.skeleton import Skeleton, build_skeleton, hop_bounded_distances
from repro.hopsets.hopset import (
    PathReportingHopset,
    build_hopset,
    en16_round_cost,
    bounded_exploration_cost,
)

__all__ = [
    "Skeleton",
    "build_skeleton",
    "hop_bounded_distances",
    "PathReportingHopset",
    "build_hopset",
    "en16_round_cost",
    "bounded_exploration_cost",
]
