"""Random skeleton graph G′ — the substrate of the [EN16] hopset (§7.1).

The paper: "The graph G′ is created by choosing the set V′ ⊆ V of size
≈ √(n ln n) at random, so that w.h.p. it intersects every shortest path in
G of length at least √n [hops].  The edges E′ are the √n-bounded distances
in G between the vertices of V′."

:func:`build_skeleton` reproduces this: it samples V′ (always including
any caller-designated roots), computes the h-hop-bounded distances between
skeleton vertices with bounded Bellman–Ford, and stores a *witness path*
per skeleton edge so everything downstream remains path-reporting — the §7
spanner must add real G-paths, not virtual edges.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.determinism import ensure_rng
from repro.graphs.weighted_graph import Vertex, WeightedGraph

INF = float("inf")


def hop_bounded_distances(
    graph: WeightedGraph, source: Vertex, hops: int
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """``d^{(h)}_G(source, ·)``: lightest path using at most ``hops`` edges.

    Plain Bellman–Ford truncated at ``hops`` iterations — exactly the
    object CONGEST computes in ``hops`` rounds of relaxation.
    """
    dist: Dict[Vertex, float] = {source: 0.0}
    parent: Dict[Vertex, Optional[Vertex]] = {source: None}
    frontier: Set[Vertex] = {source}
    for _ in range(hops):
        updates: Dict[Vertex, Tuple[float, Vertex]] = {}
        for u in frontier:
            du = dist[u]
            for v, w in graph.neighbor_items(u):
                nd = du + w
                if nd < dist.get(v, INF) and (v not in updates or nd < updates[v][0]):
                    updates[v] = (nd, u)
        frontier = set()
        for v, (nd, u) in updates.items():
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                frontier.add(v)
        if not frontier:
            break
    return dist, parent


def _extract_path(parent: Dict[Vertex, Optional[Vertex]], target: Vertex) -> List[Vertex]:
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


@dataclass
class Skeleton:
    """The sampled skeleton V′ with its h-bounded virtual edges.

    Attributes
    ----------
    vertices:
        The skeleton set V′.
    hops:
        The hop bound h (≈ √n).
    edges:
        ``(u, v) → weight`` for ordered skeleton pairs with
        ``d^{(h)}(u, v) < ∞`` (stored canonically, u before v by repr).
    paths:
        Witness G-path per skeleton edge (same key set as ``edges``).
    """

    vertices: Set[Vertex]
    hops: int
    edges: Dict[Tuple[Vertex, Vertex], float] = field(default_factory=dict)
    paths: Dict[Tuple[Vertex, Vertex], List[Vertex]] = field(default_factory=dict)

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Skeleton edge weight, or inf when the pair is not connected."""
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        return self.edges.get(key, INF)

    def path(self, u: Vertex, v: Vertex) -> List[Vertex]:
        """Witness path from u to v (reversed from storage if needed)."""
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        stored = self.paths[key]
        return stored if stored[0] == u else list(reversed(stored))

    def as_graph(self) -> WeightedGraph:
        """The skeleton graph G′ = (V′, E′) as a :class:`WeightedGraph`."""
        g = WeightedGraph(self.vertices)
        for (u, v), w in self.edges.items():
            g.add_edge(u, v, w)
        return g


def build_skeleton(
    graph: WeightedGraph,
    rng: Optional[random.Random] = None,
    roots: Iterable[Vertex] = (),
    size: Optional[int] = None,
    hops: Optional[int] = None,
) -> Skeleton:
    """Sample V′ and compute its h-bounded pairwise distances.

    Parameters
    ----------
    roots:
        Vertices that must belong to V′ (e.g. the SPT root).
    size:
        Target |V′|; default ``ceil(sqrt(n · ln n))``.
    hops:
        Hop bound h; default ``ceil(sqrt(n))``.
    """
    rng = ensure_rng(rng)
    n = graph.n
    if size is None:
        size = max(1, math.ceil(math.sqrt(n * max(math.log(n + 1), 1.0))))
    if hops is None:
        hops = max(1, math.isqrt(max(n - 1, 0)) + 1)

    chosen: Set[Vertex] = set(roots)
    pool = [v for v in sorted(graph.vertices(), key=repr) if v not in chosen]
    need = max(0, size - len(chosen))
    if need >= len(pool):
        chosen.update(pool)
    else:
        chosen.update(rng.sample(pool, need))

    skel = Skeleton(vertices=chosen, hops=hops)
    for u in sorted(chosen, key=repr):
        dist, parent = hop_bounded_distances(graph, u, hops)
        for v in chosen:
            if v == u or v not in dist:
                continue
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in skel.edges and skel.edges[key] <= dist[v]:
                continue
            skel.edges[key] = dist[v]
            path = _extract_path(parent, v)
            skel.paths[key] = path if key[0] == path[0] else list(reversed(path))
    return skel
