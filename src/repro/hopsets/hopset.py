"""Path-reporting hopset for the skeleton graph ([EN16] stand-in).

A (β, ε)-hopset F for G′ is a set of virtual edges (not reducing
distances) such that every pair has a (1+ε)-approximate shortest path with
at most β edges in G′ ∪ F.  [EN16] build one of size O(√n · β²) in
O((√n + D) · β²) rounds, *path-reporting*: each hopset edge carries an
actual G-path of exactly its weight.

Our concrete construction (DESIGN.md substitution 5): sample a pivot set
T ⊆ V′ of size ⌈√|V′|⌉ and add an exact-distance clique on T (weights =
d_{G′}(·,·), witness paths by concatenating skeleton witness paths).  This
is a genuine (β, 0)-hopset with β = O(√|V′| · log |V′|) w.h.p. — every
G′-shortest path of more than β′ hops contains a pivot w.h.p., after which
one clique edge bridges to the last pivot.  It is weaker than [EN16]'s
β = no(1) — the round *charges* use the [EN16] formula per the
substitution — but it is a real, verifiable hopset object with real paths,
which is what §7 needs functionally.
"""

from __future__ import annotations

import math
import random

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.determinism import ensure_rng
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.weighted_graph import Vertex, WeightedGraph
from repro.hopsets.skeleton import Skeleton

INF = float("inf")


def en16_round_cost(n: int, height: int, beta: int) -> int:
    """Charged rounds for building an [EN16] hopset: O((√n + D)·β²)."""
    sqrt_n = math.isqrt(max(n - 1, 0)) + 1
    return (sqrt_n + height) * beta * beta


def bounded_exploration_cost(
    n: int, height: int, beta: int, overlap: int, skeleton_size: int
) -> int:
    """Charged rounds for parallel Δ-bounded multi-source explorations (§7.2).

    One Bellman–Ford iteration = 2√n rounds of edge relaxation plus a
    Lemma-1 broadcast of the √(n ln n) skeleton estimates; β iterations,
    multiplied by the measured source-overlap factor (the max number of
    explorations any vertex participates in — bounded by the packing
    property, Lemma 6).
    """
    sqrt_n = math.isqrt(max(n - 1, 0)) + 1
    per_iteration = 2 * sqrt_n + skeleton_size + height
    return beta * per_iteration * max(1, overlap)


@dataclass
class PathReportingHopset:
    """The hopset F plus witness G-paths.

    Attributes
    ----------
    skeleton:
        The underlying skeleton G′.
    pivots:
        The pivot set T the clique is built on.
    beta:
        The hop bound the object is charged/validated at.
    edges:
        ``(u, v) → weight`` (canonical order), weights = exact d_{G′}.
    paths:
        Witness G-path per hopset edge.
    """

    skeleton: Skeleton
    pivots: Set[Vertex]
    beta: int
    edges: Dict[Tuple[Vertex, Vertex], float] = field(default_factory=dict)
    paths: Dict[Tuple[Vertex, Vertex], List[Vertex]] = field(default_factory=dict)

    def path(self, u: Vertex, v: Vertex) -> List[Vertex]:
        """Witness G-path for hopset edge (u, v)."""
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        stored = self.paths[key]
        return stored if stored[0] == u else list(reversed(stored))

    def augmented_graph(self) -> WeightedGraph:
        """G′ ∪ F (hopset edges never shorten distances, by exactness)."""
        g = self.skeleton.as_graph()
        for (u, v), w in self.edges.items():
            if not g.has_edge(u, v) or g.weight(u, v) > w:
                g.add_edge(u, v, w)
        return g

    def hop_bounded_distance(self, u: Vertex, v: Vertex, beta: Optional[int] = None) -> float:
        """``d^{(β)}_{G′∪F}(u, v)`` — for validating the hopset property."""
        from repro.hopsets.skeleton import hop_bounded_distances

        b = beta if beta is not None else self.beta
        dist, _ = hop_bounded_distances(self.augmented_graph(), u, b)
        return dist.get(v, INF)


def _concat_paths(p1: List[Vertex], p2: List[Vertex]) -> List[Vertex]:
    """Join two vertex paths sharing an endpoint (p1 ends where p2 starts)."""
    assert p1[-1] == p2[0], "paths must share the junction vertex"
    return p1 + p2[1:]


def build_hopset(
    skeleton: Skeleton,
    rng: Optional[random.Random] = None,
    num_pivots: Optional[int] = None,
) -> PathReportingHopset:
    """Build the pivot-clique hopset over ``skeleton``.

    Parameters
    ----------
    num_pivots:
        |T|; default ``ceil(sqrt(|V'|))``.
    """
    rng = ensure_rng(rng)
    skel_graph = skeleton.as_graph()
    vertices = sorted(skeleton.vertices, key=repr)
    n_skel = len(vertices)
    if num_pivots is None:
        num_pivots = max(1, math.ceil(math.sqrt(n_skel)))
    pivots: Set[Vertex] = set(
        rng.sample(vertices, num_pivots) if num_pivots < n_skel else vertices
    )

    # β: with |T| = √n' random pivots, shortest paths have a pivot every
    # O(√n' log n') hops w.h.p.; one clique edge then finishes the job.
    beta = min(n_skel, 2 * math.ceil(math.sqrt(n_skel) * max(1.0, math.log(n_skel + 1)))) + 1

    hopset = PathReportingHopset(skeleton=skeleton, pivots=pivots, beta=beta)
    for t in sorted(pivots, key=repr):
        dist, parent = dijkstra(skel_graph, t)
        for s in pivots:
            if s == t or s not in dist:
                continue
            key = (t, s) if repr(t) <= repr(s) else (s, t)
            if key in hopset.edges:
                continue
            hopset.edges[key] = dist[s]
            # stitch the witness G-path from skeleton witness paths
            chain: List[Vertex] = [s]
            while parent[chain[-1]] is not None:
                chain.append(parent[chain[-1]])
            chain.reverse()  # t ... s in G'
            full: List[Vertex] = [t]
            for a, b in zip(chain, chain[1:]):
                full = _concat_paths(full, skeleton.path(a, b))
            hopset.paths[key] = full if key[0] == full[0] else list(reversed(full))
    return hopset
