"""Graph serialization: weighted edge lists and JSON.

A downstream user adopting the library needs to run the constructions on
their own networks; these helpers read/write :class:`WeightedGraph` in
two interchange formats:

* **edge list** — one ``u v weight`` triple per line, ``#`` comments,
  isolated vertices as single-token lines (the format `networkx` and most
  graph tools speak);
* **JSON** — ``{"vertices": [...], "edges": [[u, v, w], ...]}`` with
  native types preserved for int/str vertex ids.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.graphs.weighted_graph import WeightedGraph

PathLike = Union[str, Path]


def _vertex_token(v) -> str:
    """``str(v)``, validated to survive the edge-list round trip.

    Raises
    ------
    ValueError
        If the rendering is empty, contains whitespace (would split into
        extra tokens), or contains ``#`` (would be truncated as a
        comment) — any of which :func:`read_edge_list` mis-parses.
        Use :func:`write_json` for such vertex ids.
    """
    token = str(v)
    if not token or "#" in token or any(ch.isspace() for ch in token):
        raise ValueError(
            f"vertex id {v!r} cannot be written as an edge list: its string "
            f"form {token!r} is empty or contains whitespace/'#' and would "
            f"not round-trip through read_edge_list; use write_json instead"
        )
    return token


def write_edge_list(graph: WeightedGraph, path: PathLike) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    Raises
    ------
    ValueError
        If any vertex id's string form would not survive the round trip
        (empty, whitespace, or ``#`` — see :func:`_vertex_token`).
    """
    lines = []
    isolated = [v for v in graph.vertices() if graph.degree(v) == 0]
    for v in sorted(isolated, key=repr):
        lines.append(f"{_vertex_token(v)}\n")
    for u, v, w in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        lines.append(f"{_vertex_token(u)} {_vertex_token(v)} {w!r}\n")
    with open(path, "w") as fh:
        fh.write(f"# n={graph.n} m={graph.m}\n")
        fh.writelines(lines)


def _parse_token(token: str):
    """Vertex ids: ints where possible, strings otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike) -> WeightedGraph:
    """Read a graph written by :func:`write_edge_list` (or compatible).

    Raises
    ------
    ValueError
        On malformed lines (wrong token count, non-numeric weight).
    """
    g = WeightedGraph()
    with open(path) as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) == 1:
                g.add_vertex(_parse_token(tokens[0]))
            elif len(tokens) == 3:
                u, v, w = tokens
                try:
                    weight = float(w)
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: bad weight {w!r}"
                    ) from exc
                g.add_edge(_parse_token(u), _parse_token(v), weight)
            else:
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v w' or 'v', got {line!r}"
                )
    return g


def write_json(graph: WeightedGraph, path: PathLike) -> None:
    """Write ``graph`` as JSON (vertices + weighted edge triples)."""
    data = {
        "vertices": sorted(graph.vertices(), key=repr),
        "edges": [
            [u, v, w]
            for u, v, w in sorted(
                graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))
            )
        ],
    }
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)


def read_json(path: PathLike) -> WeightedGraph:
    """Read a graph written by :func:`write_json`.

    Raises
    ------
    ValueError
        If the document lacks the expected keys.
    """
    with open(path) as fh:
        data = json.load(fh)
    if "vertices" not in data or "edges" not in data:
        raise ValueError(f"{path}: not a repro graph JSON document")
    g = WeightedGraph(data["vertices"])
    for u, v, w in data["edges"]:
        g.add_edge(u, v, float(w))
    return g
