"""Seeded-by-default randomness threading.

Every construction in this repo draws randomness through an ``rng``
parameter so identically-seeded runs are bit-identical.  Historically
the fallback for callers that passed nothing was ``random.Random()``
— fresh OS entropy, i.e. the one code path that could never be
reproduced (and exactly what ``repro lint`` rule ``REP102`` forbids).

:func:`ensure_rng` is the sanctioned fallback: explicit ``rng`` wins,
else an explicit ``seed`` is honoured, else the generator is seeded
with :data:`DEFAULT_SEED` so *default* invocations are deterministic
too.  Callers that genuinely want entropy opt in loudly by passing
``random.Random(os.urandom(...))`` themselves.
"""

from __future__ import annotations

import random
from typing import Optional

#: Seed used when a caller supplies neither ``rng`` nor ``seed``.
DEFAULT_SEED: int = 0


def ensure_rng(
    rng: Optional[random.Random], seed: Optional[int] = None
) -> random.Random:
    """Return ``rng`` if given, else a generator seeded deterministically.

    >>> ensure_rng(None).random() == ensure_rng(None).random()
    True
    >>> r = random.Random(7)
    >>> ensure_rng(r) is r
    True
    """
    if rng is not None:
        return rng
    return random.Random(DEFAULT_SEED if seed is None else seed)
