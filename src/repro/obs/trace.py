"""Hierarchical spans with a zero-overhead no-op fast path.

A *span* is one timed region of a run — ``harness.build``,
``certify.pool``, ``congest.run`` — carrying wall time
(:func:`time.perf_counter`), CPU time (:func:`time.process_time`), an
optional :mod:`tracemalloc` allocation delta, and its parent span, so a
trace reconstructs *where the time went* as a tree rather than a flat
total.

Design constraints, in order:

1. **Disabled is the default and must cost nothing.**  Instrumented
   code calls :func:`span` unconditionally; when no tracer is
   installed the call returns a shared no-op singleton — one global
   read, one ``None`` test, no allocation.  Layers with per-round or
   per-query call sites additionally guard on :func:`enabled` so even
   the no-op call is skipped.
2. **Traces must diff cleanly.**  Span ids are sequential integers
   assigned in entry order (no clocks, no randomness in identity), so
   two identically-seeded traced runs produce structurally identical
   trees and a trace can be asserted against byte-by-byte once
   wall-clock fields are masked.
3. **Export is one span per JSONL line** (parent ids, not nesting), so
   a trace streams, greps, and loads without a document parser.

The tracer is process-global and explicitly not thread-safe: the
harness is single-threaded and pool workers run in other processes
(their spans are theirs; metrics cross the boundary instead — see
:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import dataclass, field
from types import TracebackType
from typing import Dict, List, Optional, TextIO, Type, Union

#: keys every exported span line carries, in emission order.
SPAN_FIELDS = (
    "id", "parent", "name", "start_s", "wall_s", "cpu_s", "mem_bytes", "attrs"
)

AttrValue = Union[str, int, float, bool, None]


@dataclass
class SpanRecord:
    """One finished span (the unit of the JSONL trace)."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float  # offset from the tracer's epoch, not an absolute clock
    wall_s: float
    cpu_s: float
    mem_bytes: Optional[int]  # tracemalloc delta; None when not tracked
    attrs: Dict[str, AttrValue] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (one trace-file line)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "mem_bytes": self.mem_bytes,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        """Rebuild a span from its JSON form (inverse of :meth:`to_dict`)."""
        attrs = data.get("attrs") or {}
        if not isinstance(attrs, dict):
            raise ValueError(f"span attrs must be an object, got {attrs!r}")
        return cls(
            span_id=int(data["id"]),  # type: ignore[call-overload]
            parent_id=None if data.get("parent") is None
            else int(data["parent"]),  # type: ignore[call-overload]
            name=str(data["name"]),
            start_s=float(data["start_s"]),  # type: ignore[arg-type]
            wall_s=float(data["wall_s"]),  # type: ignore[arg-type]
            cpu_s=float(data["cpu_s"]),  # type: ignore[arg-type]
            mem_bytes=None if data.get("mem_bytes") is None
            else int(data["mem_bytes"]),  # type: ignore[call-overload]
            attrs=attrs,
        )


class _LiveSpan:
    """Context manager for one active span of an installed tracer."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "start_s", "wall_s", "_cpu0", "cpu_s", "_mem0",
    )

    def __init__(
        self, tracer: "Tracer", name: str, attrs: Dict[str, AttrValue]
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def __enter__(self) -> "_LiveSpan":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        self._mem0 = (
            tracemalloc.get_traced_memory()[0]
            if tracer.memory and tracemalloc.is_tracing() else None
        )
        self._cpu0 = time.process_time()
        self.start_s = time.perf_counter() - tracer.epoch
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        tracer = self.tracer
        self.wall_s = time.perf_counter() - tracer.epoch - self.start_s
        self.cpu_s = time.process_time() - self._cpu0
        mem: Optional[int] = None
        if self._mem0 is not None and tracemalloc.is_tracing():
            mem = tracemalloc.get_traced_memory()[0] - self._mem0
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_s=self.start_s,
                wall_s=self.wall_s,
                cpu_s=self.cpu_s,
                mem_bytes=mem,
                attrs=self.attrs,
            )
        )


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    wall_s = 0.0
    cpu_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Timer:
    """Measure-only context manager: the disabled half of :func:`timed_span`."""

    __slots__ = ("_t0", "wall_s")

    def __init__(self) -> None:
        self.wall_s = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.wall_s = time.perf_counter() - self._t0


class Tracer:
    """Collects spans for one tracing session (see :func:`enable`).

    Span ids are sequential from 1 in entry order; ``epoch`` anchors
    every span's ``start_s``, so offsets — not absolute clocks — are
    what the trace records.
    """

    def __init__(self, memory: bool = False) -> None:
        self.memory = memory
        self.spans: List[SpanRecord] = []
        self.epoch = time.perf_counter()
        self._next_id = 1
        self._stack: List[int] = []
        self._started_tracemalloc = False

    def span(self, name: str, attrs: Dict[str, AttrValue]) -> _LiveSpan:
        """A new live span under the currently open span (if any)."""
        return _LiveSpan(self, name, attrs)

    def span_count(self) -> int:
        """Number of finished spans so far."""
        return len(self.spans)

    def write_jsonl(self, fh: TextIO) -> int:
        """Write one span per line to ``fh``; returns the line count.

        Spans are emitted in *completion* order (children before their
        parents — the order they finished in); consumers rebuild the
        tree from ``parent`` ids, not line order.
        """
        for span_record in self.spans:
            fh.write(json.dumps(span_record.to_dict(), sort_keys=True))
            fh.write("\n")
        return len(self.spans)


#: the installed tracer; ``None`` means tracing is disabled (the default).
_TRACER: Optional[Tracer] = None


def enable(memory: bool = False) -> Tracer:
    """Install a fresh tracer and return it.

    ``memory=True`` additionally records a :mod:`tracemalloc`
    allocation delta per span (starting tracemalloc if needed — note
    tracemalloc instruments every allocation and slows hot loops
    severalfold; wall times in a memory trace measure the *traced*
    program).

    Raises
    ------
    RuntimeError
        If tracing is already enabled (disable first — silently
        replacing a tracer would drop its spans).
    """
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("tracing is already enabled; call disable() first")
    tracer = Tracer(memory=memory)
    if memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        tracer._started_tracemalloc = True
    _TRACER = tracer
    return tracer


def disable() -> Optional[Tracer]:
    """Uninstall the tracer and return it (with its spans), if any."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    if tracer is not None and tracer._started_tracemalloc:
        tracemalloc.stop()
    return tracer


def enabled() -> bool:
    """True while a tracer is installed.

    Hot loops (per query, per round) guard their instrumentation on
    this so the disabled path skips even the no-op span call.
    """
    return _TRACER is not None


def current() -> Optional[Tracer]:
    """The installed tracer, or None."""
    return _TRACER


def span_count() -> int:
    """Finished spans of the installed tracer (0 when disabled)."""
    tracer = _TRACER
    return 0 if tracer is None else len(tracer.spans)


def span(name: str, **attrs: AttrValue) -> Union[_LiveSpan, _NullSpan]:
    """A span context manager — the instrumentation entry point.

    Disabled fast path: one global read, one ``None`` test, and the
    shared no-op singleton; nothing is allocated and nothing is timed.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, attrs)


def timed_span(name: str, **attrs: AttrValue) -> Union[_LiveSpan, _Timer]:
    """A span that *always* measures wall time (``.wall_s`` after exit).

    This is the drop-in replacement for hand-rolled
    ``perf_counter()``-pair timers: when tracing is enabled the region
    becomes a real span; when disabled it degrades to exactly the two
    ``perf_counter`` calls the hand-rolled timer cost, so the caller
    can keep recording wall times with no tracing overhead.
    """
    tracer = _TRACER
    if tracer is None:
        return _Timer()
    return tracer.span(name, attrs)


def read_jsonl(path: str) -> List[SpanRecord]:
    """Load a trace file written via :meth:`Tracer.write_jsonl`.

    Raises
    ------
    ValueError
        On a malformed line (not JSON, or missing span fields).
    """
    spans: List[SpanRecord] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError(f"{path}:{lineno}: span line is not an object")
            try:
                spans.append(SpanRecord.from_dict(data))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad span: {exc}") from exc
    return spans
