"""``repro.obs`` — the observability spine: spans, metrics, summaries.

Every layer reports through this package instead of inventing its own
counters and timers:

- :mod:`repro.obs.trace` — hierarchical spans with wall/CPU time,
  optional tracemalloc deltas, deterministic sequential ids, and a
  zero-overhead no-op fast path while disabled (the default).
- :mod:`repro.obs.metrics` — a process-wide registry of named
  counters, gauges, and fixed-bucket latency histograms, with a
  picklable ``snapshot()``/``merge()`` contract for the certify
  multiprocessing pool.
- :mod:`repro.obs.summary` — span-tree aggregation behind
  ``repro trace summarize``.

Metric names follow ``layer.component.metric``
(``oracle.cache.hits``, ``congest.rounds.executed``); span names
follow ``layer.phase`` (``harness.build``, ``certify.pool``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    counter,
    gauge,
    histogram,
    merge,
    registry,
    reset,
    scalars,
    snapshot,
)
from repro.obs.summary import (
    SpanNode,
    aggregate_spans,
    hot_spans,
    render_tree,
    summarize_trace,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    current,
    disable,
    enable,
    enabled,
    read_jsonl,
    span,
    span_count,
    timed_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshot",
    "SpanNode",
    "SpanRecord",
    "Tracer",
    "aggregate_spans",
    "counter",
    "current",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "hot_spans",
    "merge",
    "read_jsonl",
    "registry",
    "render_tree",
    "reset",
    "scalars",
    "snapshot",
    "span",
    "span_count",
    "summarize_trace",
    "timed_span",
]
