"""Process-wide metrics registry: counters, gauges, latency histograms.

Every layer of the stack used to invent its own accounting — the oracle
kept four bespoke ints, the CONGEST simulator its ``total_*`` fields,
the certify engine a dataclass of pruning counts.  This module is the
single vocabulary they all report into:

* :class:`Counter` — a monotonically increasing event count
  (``oracle.cache.hits``);
* :class:`Gauge` — a last-value-wins level with its observed maximum
  (``congest.network.active_nodes``, set once per round);
* :class:`Histogram` — a fixed-bucket distribution answering p50 / p99 /
  p999 *without storing samples*: an observation only bumps one bucket
  count, so a million queries cost a million integer increments, not a
  million floats of memory.

Names follow the ``layer.component.metric`` convention (lowercase dotted
path, at least two segments) and are validated at registration.

The process-wide default registry (:func:`registry`) is what the
instrumented layers use; :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.reset` give the harness a read-and-clear
contract.  Multiprocessing is handled by *local aggregation*: a
:mod:`multiprocessing` pool worker observes into its own private
:class:`MetricsRegistry` and ships the picklable ``snapshot()`` back
with its result; the parent folds it in with
:meth:`MetricsRegistry.merge` at the chunk boundary (see
:mod:`repro.analysis.certify`).  Counters and histogram buckets add
under merge, so the workers=N totals equal the workers=1 totals exactly.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union, cast

Metric = Union["Counter", "Gauge", "Histogram"]
Snapshot = Dict[str, Dict[str, object]]

#: ``layer.component.metric``: lowercase dotted path, >= 2 segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: default histogram bucket upper bounds for millisecond latencies:
#: geometric from 1 µs to ~67 s (27 buckets + overflow), so p999 of a
#: sub-millisecond query path and a multi-second batch both resolve.
DEFAULT_LATENCY_BOUNDS_MS: Tuple[float, ...] = tuple(
    0.001 * 2.0 ** i for i in range(27)
)

#: default bounds for small-count distributions (targets per source,
#: fan-out sizes): exact up to 8, geometric beyond.
DEFAULT_COUNT_BOUNDS: Tuple[float, ...] = (
    1, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128, 256, 512, 1024,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the layer.component.metric "
            "convention (lowercase dotted path, >= 2 segments)"
        )
    return name


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins level; the observed maximum rides along."""

    __slots__ = ("name", "value", "max_value", "observed")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.max_value: float = 0
        self.observed = False

    def set(self, v: float) -> None:
        """Record the current level (and fold it into the running max)."""
        self.value = v
        if not self.observed or v > self.max_value:
            self.max_value = v
        self.observed = True

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket distribution with sample-free percentile estimates.

    ``bounds`` are the inclusive upper edges of the buckets; one
    overflow bucket catches everything beyond the last edge.  An
    observation bumps exactly one bucket count plus the exact scalar
    accumulators (count / sum / min / max), so memory is O(buckets)
    regardless of traffic.  :meth:`percentile` answers from the bucket
    edges: the estimate is the upper edge of the bucket holding the
    requested rank (the true value is never larger), which is the usual
    fixed-bucket trade — resolution is set by the bucket grid, not the
    data.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_MS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        """Record one observation (one bucket bump + scalar updates)."""
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def percentile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-quantile (``0 < q <= 1``).

        Returns 0.0 on an empty histogram; the exact observed maximum
        when the rank lands in the overflow bucket (the edges above say
        nothing there, the scalar max does).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max  # pragma: no cover - rank <= count always lands

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }


class MetricsRegistry:
    """A named collection of metrics with a snapshot/reset/merge contract.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes the metric's type (and, for histograms, its bucket
    bounds); a later call under a different type raises ``ValueError``
    rather than silently aliasing two meanings onto one name.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _type_error(self, name: str, want: str) -> ValueError:
        have = type(self._metrics[name]).__name__.lower()
        return ValueError(f"metric {name!r} is a {have}, not a {want}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(_check_name(name))
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise self._type_error(name, "counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(_check_name(name))
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise self._type_error(name, "gauge")
        return metric

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` applies only at creation; passing different bounds
        for an existing histogram raises ``ValueError`` (merged bucket
        counts would be meaningless across grids).
        """
        metric = self._metrics.get(name)
        if metric is None:
            hist = Histogram(
                _check_name(name),
                bounds if bounds is not None else DEFAULT_LATENCY_BOUNDS_MS,
            )
            self._metrics[name] = hist
            return hist
        if not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__.lower()}, "
                "not a histogram"
            )
        if bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with different bounds"
            )
        return metric

    def names(self) -> List[str]:
        """Sorted names of every registered metric."""
        return sorted(self._metrics)

    def snapshot(self) -> Snapshot:
        """Picklable plain-dict state of every metric, sorted by name.

        This is the unit a pool worker ships back to the parent (see
        :meth:`merge`) and the raw material of the benchmark report's
        ``observability`` block.
        """
        return {
            name: self._metrics[name].to_dict() for name in sorted(self._metrics)
        }

    def scalars(self) -> Dict[str, float]:
        """Counters and gauge values only (the deterministic subset).

        Histograms are excluded on purpose: their bucket contents are
        wall-clock-shaped for latency metrics, and the benchmark
        report's ``observability`` block must stay seeded-deterministic.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, (Counter, Gauge)):
                out[name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every metric in place (names and types are kept)."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0
            elif isinstance(metric, Gauge):
                metric.value = 0
                metric.max_value = 0
                metric.observed = False
            else:
                metric.counts = [0] * (len(metric.bounds) + 1)
                metric.count = 0
                metric.total = 0.0
                metric.min = float("inf")
                metric.max = float("-inf")

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histogram bucket counts add; gauges keep the
        maximum of the two maxima and the merged value is the larger of
        the two last-values (for level gauges set by concurrent workers,
        "the busiest anyone saw" is the meaningful aggregate).  A
        histogram merge requires identical bucket bounds.

        Raises
        ------
        ValueError
            On a type mismatch with an existing metric or a histogram
            bound mismatch.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(cast(float, data["value"]))
            elif kind == "gauge":
                gauge = self.gauge(name)
                value = cast(float, data["value"])
                peak = cast(float, data["max"])
                gauge.set(max(gauge.value, value) if gauge.observed else value)
                if peak > gauge.max_value:
                    gauge.max_value = peak
            elif kind == "histogram":
                hist = self.histogram(name, cast(List[float], data["bounds"]))
                counts = cast(List[int], data["counts"])
                if len(counts) != len(hist.counts):
                    raise ValueError(
                        f"histogram {name!r}: merge with mismatched buckets"
                    )
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.count += cast(int, data["count"])
                hist.total += cast(float, data["sum"])
                lo = cast(Optional[float], data["min"])
                hi = cast(Optional[float], data["max"])
                if lo is not None and lo < hist.min:
                    hist.min = lo
                if hi is not None and hi > hist.max:
                    hist.max = hi
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


#: the process-wide default registry every instrumented layer reports into.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY


def counter(name: str) -> Counter:
    """Get-or-create ``name`` in the default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create ``name`` in the default registry."""
    return REGISTRY.gauge(name)


def histogram(name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
    """Get-or-create ``name`` in the default registry."""
    return REGISTRY.histogram(name, bounds)


def snapshot() -> Snapshot:
    """Snapshot of the default registry."""
    return REGISTRY.snapshot()


def scalars() -> Dict[str, float]:
    """Counter/gauge values of the default registry."""
    return REGISTRY.scalars()


def reset() -> None:
    """Zero the default registry."""
    REGISTRY.reset()


def merge(snap: Snapshot) -> None:
    """Fold a worker snapshot into the default registry."""
    REGISTRY.merge(snap)
